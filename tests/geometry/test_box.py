"""Unit tests for hyper-rectangles (boxes) over mixed extents."""

import pytest

from repro.errors import DimensionMismatchError, GeometryError
from repro.geometry.box import Box, common_region
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval


def box2(x, y):
    """Two numeric axes."""
    return Box([Interval(*x), Interval(*y)])


def mixed(interval, atoms):
    """One numeric axis + one categorical axis."""
    return Box([Interval(*interval), DiscreteSet(atoms)])


class TestConstruction:
    def test_dimensions(self):
        assert box2((0, 1), (0, 1)).dimensions == 2

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            Box([])

    def test_bad_extent_type_rejected(self):
        with pytest.raises(GeometryError):
            Box([Interval(0, 1), (0, 1)])

    def test_extent_accessor(self):
        box = mixed((0, 5), {"a"})
        assert box.extent(0) == Interval(0, 5)
        assert box.extent(1) == DiscreteSet({"a"})


class TestContainment:
    def test_contains_nested(self):
        assert box2((0, 10), (0, 10)).contains(box2((2, 5), (3, 7)))

    def test_contains_requires_all_axes(self):
        outer = box2((0, 10), (0, 10))
        assert not outer.contains(box2((2, 5), (3, 11)))

    def test_contains_itself(self):
        box = box2((0, 10), (0, 10))
        assert box.contains(box)

    def test_mixed_axes_containment(self):
        outer = mixed((0, 10), {"asia", "europe"})
        inner = mixed((2, 5), {"asia"})
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            box2((0, 1), (0, 1)).contains(Box([Interval(0, 1)]))

    def test_extent_kind_mismatch_raises(self):
        with pytest.raises(DimensionMismatchError):
            mixed((0, 1), {"a"}).contains(box2((0, 1), (0, 1)))


class TestOverlap:
    def test_overlap_on_all_axes(self):
        assert box2((0, 5), (0, 5)).overlaps(box2((4, 9), (4, 9)))

    def test_no_overlap_if_one_axis_disjoint(self):
        # Section 3.2: overlap requires ALL constraint axes to overlap.
        assert not box2((0, 5), (0, 5)).overlaps(box2((4, 9), (6, 9)))

    def test_containment_implies_overlap(self):
        outer, inner = box2((0, 10), (0, 10)), box2((2, 5), (2, 5))
        assert outer.overlaps(inner)

    def test_mixed_overlap(self):
        a = mixed((0, 5), {"asia", "europe"})
        b = mixed((4, 9), {"asia"})
        c = mixed((4, 9), {"america"})
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestOperations:
    def test_intersection(self):
        result = box2((0, 5), (0, 5)).intersection(box2((3, 9), (2, 4)))
        assert result == box2((3, 5), (2, 4))

    def test_intersection_disjoint_is_none(self):
        assert box2((0, 1), (0, 1)).intersection(box2((2, 3), (0, 1))) is None

    def test_union_hull(self):
        result = box2((0, 1), (0, 1)).union_hull(box2((5, 6), (2, 3)))
        assert result == box2((0, 6), (0, 3))

    def test_equality_and_hash(self):
        assert box2((0, 1), (2, 3)) == box2((0, 1), (2, 3))
        assert hash(box2((0, 1), (2, 3))) == hash(box2((0, 1), (2, 3)))


class TestCommonRegion:
    def test_pairwise_overlap_without_common_region(self):
        # Three intervals on a line: (0,4), (3,7), (6,10) -- each adjacent
        # pair overlaps but all three share nothing (Theorem 1's setup).
        boxes = [Box([Interval(0, 4)]), Box([Interval(3, 7)]), Box([Interval(6, 10)])]
        assert boxes[0].overlaps(boxes[1])
        assert boxes[1].overlaps(boxes[2])
        assert common_region(boxes) is None

    def test_common_region_exists(self):
        boxes = [box2((0, 5), (0, 5)), box2((3, 9), (3, 9)), box2((4, 7), (4, 7))]
        region = common_region(boxes)
        assert region == box2((4, 5), (4, 5))

    def test_single_box_is_its_own_region(self):
        box = box2((0, 1), (0, 1))
        assert common_region([box]) == box

    def test_empty_sequence_rejected(self):
        with pytest.raises(GeometryError):
            common_region([])
