"""Property-based tests on the geometric algebra (hypothesis)."""

from hypothesis import given, strategies as st

from repro.geometry.box import Box
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval


@st.composite
def intervals(draw):
    low = draw(st.integers(min_value=-1000, max_value=1000))
    length = draw(st.integers(min_value=0, max_value=500))
    return Interval(low, low + length)


@st.composite
def discrete_sets(draw):
    atoms = draw(st.sets(st.integers(min_value=0, max_value=12), min_size=1))
    return DiscreteSet(atoms)


@st.composite
def boxes(draw, dims=2):
    return Box([draw(intervals()) for _ in range(dims)])


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(intervals(), intervals())
    def test_overlap_iff_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersection(b) is not None)

    @given(intervals(), intervals())
    def test_containment_antisymmetric_up_to_equality(self, a, b):
        if a.contains(b) and b.contains(a):
            assert a == b

    @given(intervals(), intervals(), intervals())
    def test_containment_transitive(self, a, b, c):
        if a.contains(b) and b.contains(c):
            assert a.contains(c)

    @given(intervals(), intervals())
    def test_intersection_contained_in_both(self, a, b):
        common = a.intersection(b)
        if common is not None:
            assert a.contains(common)
            assert b.contains(common)

    @given(intervals(), intervals())
    def test_union_hull_contains_both(self, a, b):
        hull = a.union_hull(b)
        assert hull.contains(a)
        assert hull.contains(b)


class TestDiscreteProperties:
    @given(discrete_sets(), discrete_sets())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(discrete_sets(), discrete_sets())
    def test_overlap_iff_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersection(b) is not None)

    @given(discrete_sets(), discrete_sets())
    def test_containment_matches_subset(self, a, b):
        assert a.contains(b) == (b.atoms <= a.atoms)

    @given(discrete_sets(), discrete_sets())
    def test_union_hull_contains_both(self, a, b):
        hull = a.union_hull(b)
        assert hull.contains(a)
        assert hull.contains(b)


class TestBoxProperties:
    @given(boxes(), boxes())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(boxes(), boxes())
    def test_overlap_iff_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersection(b) is not None)

    @given(boxes(), boxes())
    def test_containment_implies_overlap(self, a, b):
        if a.contains(b):
            assert a.overlaps(b)

    @given(boxes(), boxes(), boxes())
    def test_containment_transitive(self, a, b, c):
        if a.contains(b) and b.contains(c):
            assert a.contains(c)

    @given(boxes(), boxes())
    def test_intersection_is_largest_common_box(self, a, b):
        common = a.intersection(b)
        if common is not None:
            assert a.contains(common)
            assert b.contains(common)

    @given(boxes(), boxes())
    def test_overlap_requires_every_axis(self, a, b):
        per_axis = all(
            mine.overlaps(theirs)
            for mine, theirs in zip(a.extents, b.extents)
        )
        assert a.overlaps(b) == per_axis
