"""Unit tests for discrete (categorical) extents."""

import pytest

from repro.errors import GeometryError
from repro.geometry.discrete import DiscreteSet, as_discrete


class TestConstruction:
    def test_from_list(self):
        assert len(DiscreteSet(["a", "b"])) == 2

    def test_duplicates_collapse(self):
        assert len(DiscreteSet(["a", "a", "b"])) == 2

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            DiscreteSet([])

    def test_atoms_frozen(self):
        atoms = DiscreteSet(["a"]).atoms
        assert isinstance(atoms, frozenset)

    def test_single_atom_is_degenerate(self):
        assert DiscreteSet(["a"]).is_degenerate()
        assert not DiscreteSet(["a", "b"]).is_degenerate()


class TestPredicates:
    def test_contains_subset(self):
        assert DiscreteSet(["a", "b", "c"]).contains(DiscreteSet(["a", "c"]))

    def test_contains_itself(self):
        extent = DiscreteSet(["a", "b"])
        assert extent.contains(extent)

    def test_does_not_contain_superset(self):
        assert not DiscreteSet(["a"]).contains(DiscreteSet(["a", "b"]))

    def test_overlaps_when_sharing_atom(self):
        assert DiscreteSet(["a", "b"]).overlaps(DiscreteSet(["b", "c"]))

    def test_no_overlap_when_disjoint(self):
        assert not DiscreteSet(["a"]).overlaps(DiscreteSet(["b"]))

    def test_overlap_symmetric(self):
        a, b = DiscreteSet(["a", "b"]), DiscreteSet(["b"])
        assert a.overlaps(b) == b.overlaps(a)

    def test_contains_point(self):
        assert DiscreteSet(["a"]).contains_point("a")
        assert "a" in DiscreteSet(["a"])
        assert "z" not in DiscreteSet(["a"])


class TestOperations:
    def test_intersection(self):
        result = DiscreteSet(["a", "b"]).intersection(DiscreteSet(["b", "c"]))
        assert result == DiscreteSet(["b"])

    def test_intersection_disjoint_is_none(self):
        assert DiscreteSet(["a"]).intersection(DiscreteSet(["b"])) is None

    def test_union_hull(self):
        result = DiscreteSet(["a"]).union_hull(DiscreteSet(["b"]))
        assert result == DiscreteSet(["a", "b"])

    def test_length(self):
        assert DiscreteSet(["a", "b", "c"]).length == 3

    def test_equality_and_hash(self):
        assert DiscreteSet(["a", "b"]) == DiscreteSet(["b", "a"])
        assert hash(DiscreteSet(["a"])) == hash(DiscreteSet(["a"]))
        assert DiscreteSet(["a"]) != DiscreteSet(["b"])

    def test_equality_against_other_types(self):
        assert DiscreteSet(["a"]) != {"a"}


class TestCoercion:
    def test_as_discrete_passthrough(self):
        extent = DiscreteSet(["a"])
        assert as_discrete(extent) is extent

    def test_as_discrete_from_set(self):
        assert as_discrete({"a", "b"}) == DiscreteSet(["a", "b"])

    def test_as_discrete_from_list(self):
        assert as_discrete(["a"]) == DiscreteSet(["a"])
