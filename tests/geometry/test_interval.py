"""Unit tests for closed intervals."""

import pytest

from repro.errors import GeometryError
from repro.geometry.interval import Interval


class TestConstruction:
    def test_valid_bounds(self):
        interval = Interval(1, 5)
        assert interval.low == 1
        assert interval.high == 5

    def test_degenerate_point(self):
        assert Interval(3, 3).is_degenerate()

    def test_inverted_bounds_rejected(self):
        with pytest.raises(GeometryError):
            Interval(5, 1)

    def test_incomparable_bounds_rejected(self):
        with pytest.raises(GeometryError):
            Interval(1, "two")

    def test_float_bounds(self):
        interval = Interval(0.5, 2.5)
        assert interval.length == 2.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Interval(1, 2).low = 0


class TestContainment:
    def test_contains_point_inside(self):
        assert Interval(1, 5).contains_point(3)

    def test_contains_point_on_endpoints(self):
        interval = Interval(1, 5)
        assert interval.contains_point(1)
        assert interval.contains_point(5)

    def test_contains_point_outside(self):
        assert not Interval(1, 5).contains_point(6)

    def test_in_operator(self):
        assert 2 in Interval(1, 5)
        assert 0 not in Interval(1, 5)

    def test_contains_interval_strictly_inside(self):
        assert Interval(1, 10).contains(Interval(3, 7))

    def test_contains_itself(self):
        interval = Interval(1, 10)
        assert interval.contains(interval)

    def test_contains_shares_endpoint(self):
        # Closed semantics: paper's [15/03, 19/03] within [10/03, 20/03].
        assert Interval(10, 20).contains(Interval(15, 20))

    def test_does_not_contain_overhanging(self):
        assert not Interval(1, 10).contains(Interval(5, 11))

    def test_does_not_contain_disjoint(self):
        assert not Interval(1, 5).contains(Interval(6, 9))


class TestOverlap:
    def test_overlapping(self):
        assert Interval(1, 5).overlaps(Interval(4, 9))

    def test_touching_endpoints_overlap(self):
        # Closed intervals sharing one point overlap.
        assert Interval(1, 5).overlaps(Interval(5, 9))

    def test_disjoint(self):
        assert not Interval(1, 5).overlaps(Interval(6, 9))

    def test_overlap_is_symmetric(self):
        a, b = Interval(1, 5), Interval(4, 9)
        assert a.overlaps(b) == b.overlaps(a)

    def test_nested_overlap(self):
        assert Interval(1, 10).overlaps(Interval(4, 6))


class TestOperations:
    def test_intersection_of_overlapping(self):
        assert Interval(1, 5).intersection(Interval(3, 9)) == Interval(3, 5)

    def test_intersection_of_disjoint_is_none(self):
        assert Interval(1, 2).intersection(Interval(3, 4)) is None

    def test_intersection_touching_is_point(self):
        result = Interval(1, 5).intersection(Interval(5, 9))
        assert result == Interval(5, 5)

    def test_union_hull(self):
        assert Interval(1, 3).union_hull(Interval(7, 9)) == Interval(1, 9)

    def test_expanded(self):
        assert Interval(2, 4).expanded(1) == Interval(1, 5)

    def test_clamped_inside(self):
        assert Interval(0, 10).clamped(Interval(2, 5)) == Interval(2, 5)

    def test_clamped_disjoint_raises(self):
        with pytest.raises(GeometryError):
            Interval(0, 1).clamped(Interval(5, 9))

    def test_midpoint(self):
        assert Interval(2, 6).midpoint == 4

    def test_iter_unpacks(self):
        low, high = Interval(1, 2)
        assert (low, high) == (1, 2)

    def test_equality_and_hash(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert hash(Interval(1, 2)) == hash(Interval(1, 2))
        assert Interval(1, 2) != Interval(1, 3)
