"""Paper-scale integration: the full Section 5 workload sizes.

The paper's largest experiment uses N = 35 redistribution licenses and
~22,000 log records.  These tests run the complete pipeline at that scale
(the grouped method handles it easily; only the 2^35-equation baseline is
out of reach for any implementation) and check the end-to-end accounting.
"""

import pytest

from repro.analysis.profile import profile_workload
from repro.core.grouped_zeta import GroupedZetaValidator
from repro.core.validator import GroupedValidator
from repro.logstore.compaction import compact
from repro.validation.tree import ValidationTree
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def paper_workload():
    # Full paper parameters: defaults give 630 * 35 = 22050 records.
    config = WorkloadConfig(n_licenses=35, seed=0)
    return WorkloadGenerator(config).generate()


class TestPaperScalePipeline:
    def test_workload_matches_section5_parameters(self, paper_workload):
        assert len(paper_workload.log) == 22050
        for aggregate in paper_workload.aggregates:
            assert 5000 <= aggregate <= 20000
        for record in paper_workload.log:
            assert 10 <= record.count <= 30
        for box in paper_workload.pool.boxes():
            assert box.dimensions == 4

    def test_grouped_validation_runs(self, paper_workload):
        validator = GroupedValidator.from_pool(paper_workload.pool)
        assert validator.equations_baseline == 2**35 - 1
        assert validator.equations_required < 10_000
        report = validator.validate(paper_workload.log)
        # With default aggregates the workload over-issues (22050 records
        # x ~20 counts >> capacity) -- either verdict is fine, but both
        # grouped engines must agree exactly.
        zeta = GroupedZetaValidator.from_pool(paper_workload.pool).validate(
            paper_workload.log
        )
        assert set(report.violations) == set(zeta.violations)

    def test_tree_accounting(self, paper_workload):
        tree = ValidationTree.from_log(paper_workload.log)
        full_mask = (1 << 35) - 1
        assert tree.subset_sum(full_mask) == paper_workload.log.total_count
        assert tree.max_index() <= 35

    def test_compaction_ratio_at_scale(self, paper_workload):
        compacted = compact(paper_workload.log)
        # Tens of thousands of records collapse into few distinct sets.
        assert len(compacted) == paper_workload.log.distinct_sets
        assert len(compacted) < len(paper_workload.log) / 20
        assert compacted.total_count == paper_workload.log.total_count

    def test_profile_consistency(self, paper_workload):
        profile = profile_workload(paper_workload.pool, paper_workload.log)
        assert profile.n_records == 22050
        assert sum(profile.counts_per_group) == paper_workload.log.total_count
        assert sum(profile.group_sizes) == 35
        # The generator must produce genuinely multi-license sets.
        assert profile.multi_license_fraction > 0.05
