"""Service-level dense-kernel seam: parity, fallback, and telemetry.

The dense headroom kernel must be invisible in verdict space: serving
the same stream with ``kernel="dense"`` produces a byte-identical
outcome stream for every batch size, including the vectorized
batch-prefetch path and the cap-exceeded tree fallback.  The only
observable differences are the new ``kernel_fast_path_hits`` /
``kernel_fallback`` counters -- and those stay silent on pure-tree
configs so existing metric surfaces are untouched.
"""

import pytest

from repro.errors import ServiceError
from repro.service import ServiceConfig, ValidationService
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

SEED = 411


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(
        n_licenses=22,
        seed=SEED,
        n_records=0,
        target_groups=6,
        aggregate_range=(200, 700),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    # Skewed traffic piles many same-batch requests onto a few groups,
    # exercising the prefetch-invalidation path hard.
    stream = tuple(generator.issue_stream(pool, 400, skew=0.9))
    return pool, stream


def serve(pool, stream, **config_kwargs):
    with ValidationService(pool, ServiceConfig(**config_kwargs)) as service:
        outcomes = service.process(stream)
    return outcomes, service


@pytest.fixture(scope="module")
def reference(workload):
    pool, stream = workload
    outcomes, _ = serve(pool, stream, kernel="tree", batch_size=1)
    return [(o.accepted, o.rejection_reason) for o in outcomes]


class TestVerdictParity:
    @pytest.mark.parametrize("batch_size", [1, 3, 32, 200])
    def test_dense_matches_tree_across_batch_sizes(
        self, workload, reference, batch_size
    ):
        pool, stream = workload
        outcomes, _ = serve(
            pool, stream, kernel="dense", batch_size=batch_size, shards=3
        )
        assert [
            (o.accepted, o.rejection_reason) for o in outcomes
        ] == reference

    def test_fallback_config_matches_too(self, workload, reference):
        pool, stream = workload
        outcomes, _ = serve(
            pool, stream, kernel="dense", kernel_cap=0, batch_size=16
        )
        assert [
            (o.accepted, o.rejection_reason) for o in outcomes
        ] == reference


class TestKernelTelemetry:
    def test_dense_counts_fast_path_hits(self, workload):
        pool, stream = workload
        _, service = serve(pool, stream, kernel="dense", batch_size=16)
        hits = service.metrics.counter("kernel_fast_path_hits").value()
        # Every shard-routed request was answered by the dense kernel;
        # instance rejections never reach a shard.
        accepted = service.metrics.counter("requests_total").value(
            ("accepted",)
        )
        equation = service.metrics.counter("requests_total").value(
            ("rejected", "equation")
        )
        assert hits == accepted + equation > 0
        assert service.metrics.counter("kernel_fallback").value() == 0

    def test_cap_exceeded_counts_fallback(self, workload):
        pool, stream = workload
        _, service = serve(
            pool, stream, kernel="dense", kernel_cap=0, batch_size=16
        )
        assert service.metrics.counter("kernel_fallback").value() > 0
        assert (
            service.metrics.counter("kernel_fast_path_hits").value() == 0
        )

    def test_tree_config_stays_silent(self, workload):
        pool, stream = workload
        _, service = serve(pool, stream, kernel="tree", batch_size=16)
        assert service.metrics.counter("kernel_fast_path_hits").value() == 0
        assert service.metrics.counter("kernel_fallback").value() == 0


class TestConfigValidation:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(kernel="gpu")

    def test_kernel_cap_bounds(self):
        with pytest.raises(ServiceError):
            ServiceConfig(kernel_cap=-1)
        with pytest.raises(ServiceError):
            ServiceConfig(kernel_cap=99)
