"""Unit tests for the service metrics registry."""

import pytest

from repro.errors import ServiceError
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_unlabelled_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(amount=4)
        assert counter.value() == 5
        assert counter.total() == 5

    def test_labelled_cells_are_independent(self):
        counter = MetricsRegistry().counter("requests_total")
        counter.inc(("accepted",))
        counter.inc(("rejected", "instance"), 2)
        counter.inc(("rejected", "equation"))
        assert counter.value(("accepted",)) == 1
        assert counter.value(("rejected", "instance")) == 2
        assert counter.total() == 4
        assert counter.cells() == {
            ("accepted",): 1,
            ("rejected", "instance"): 2,
            ("rejected", "equation"): 1,
        }

    def test_never_incremented_cell_reads_zero(self):
        counter = MetricsRegistry().counter("overload_total")
        assert counter.value(("shard0",)) == 0
        assert counter.total() == 0

    def test_negative_amount_rejected(self):
        counter = MetricsRegistry().counter("requests_total")
        with pytest.raises(ServiceError):
            counter.inc(amount=-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(7, ("shard0",))
        gauge.set(3, ("shard0",))
        gauge.set(12, ("shard1",))
        assert gauge.value(("shard0",)) == 3
        assert gauge.value(("shard1",)) == 12
        assert gauge.value(("shard9",)) == 0.0


class TestHistogram:
    def test_quantiles_nearest_rank(self):
        hist = MetricsRegistry().histogram("latency_seconds")
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.quantile(0.50) == 50.0
        assert hist.quantile(0.95) == 95.0
        assert hist.quantile(0.99) == 99.0
        assert hist.quantile(0.0) == 1.0
        assert hist.quantile(1.0) == 100.0

    def test_empty_histogram_quantile_is_zero(self):
        hist = MetricsRegistry().histogram("latency_seconds")
        assert hist.quantile(0.5) == 0.0
        assert hist.summary()["p99"] == 0.0

    def test_quantile_outside_unit_interval_rejected(self):
        hist = MetricsRegistry().histogram("latency_seconds")
        with pytest.raises(ServiceError):
            hist.quantile(1.5)

    def test_sliding_window_evicts_oldest(self):
        hist = MetricsRegistry().histogram("small", max_samples=3)
        for value in (10.0, 1.0, 2.0, 3.0):
            hist.observe(value)
        # The window holds the last three samples; 10.0 was evicted, so
        # the max quantile reflects the window, not all time.
        assert hist.quantile(1.0) == 3.0
        # Count and sum stay all-time; the window scope is reported
        # separately so the two can never be confused.
        summary = hist.summary()
        assert summary["count"] == 4.0
        assert summary["sum"] == 16.0
        assert summary["window_count"] == 3.0
        assert summary["window_sum"] == 6.0

    def test_summary_shape(self):
        hist = MetricsRegistry().histogram("latency_seconds")
        hist.observe(0.25)
        summary = hist.summary()
        assert set(summary) == {
            "count", "sum", "mean", "window_count", "window_sum",
            "p50", "p95", "p99", "max",
        }
        assert summary["mean"] == 0.25
        assert summary["max"] == 0.25
        # Window not yet overflowed: the two scopes coincide.
        assert summary["window_count"] == summary["count"]
        assert summary["window_sum"] == summary["sum"]

    def test_summary_scopes_diverge_after_window_overflow(self):
        """Regression: max/quantiles were window-scoped while count/sum
        were all-time, with nothing in the summary saying so.  With
        ``max_samples`` smaller than the sample count the summary must
        report both scopes explicitly and keep them self-consistent."""
        hist = MetricsRegistry().histogram("windowed", max_samples=4)
        for value in range(1, 11):  # 1..10; window ends as {7, 8, 9, 10}
            hist.observe(float(value))
        summary = hist.summary()
        assert summary["count"] == 10.0
        assert summary["sum"] == 55.0
        assert summary["mean"] == 5.5
        assert summary["window_count"] == 4.0
        assert summary["window_sum"] == 34.0
        # Quantiles and max are window-scoped: 10 is the window max, and
        # nothing below 7 can appear in any quantile.
        assert summary["max"] == 10.0
        assert summary["p50"] >= 7.0
        assert hist.quantile(0.0) == 7.0

    def test_max_samples_validated(self):
        with pytest.raises(ServiceError):
            MetricsRegistry().histogram("bad", max_samples=0)

    def test_window_eviction_is_constant_time(self):
        """Regression: eviction must pop from a deque, not a list head.

        ``list.pop(0)`` on the insertion-order buffer made every observe
        beyond the window O(window).  The structural check (the buffer
        really is a deque with O(1) popleft) is what pins the fix; the
        behavioural sweep alongside it proves eviction order survived
        the data-structure swap.
        """
        from collections import deque

        hist = MetricsRegistry().histogram("windowed", max_samples=5)
        assert isinstance(hist._order, deque)
        for value in range(100):
            hist.observe(float(value))
        # Window holds exactly the 5 newest samples, in order.
        assert list(hist._order) == [95.0, 96.0, 97.0, 98.0, 99.0]
        assert hist._sorted == [95.0, 96.0, 97.0, 98.0, 99.0]
        assert hist.quantile(0.0) == 95.0
        assert hist.quantile(1.0) == 99.0
        assert hist.summary()["count"] == 100.0

    def test_window_eviction_with_duplicate_samples(self):
        """Duplicates: evicting one copy must leave the others counted."""
        hist = MetricsRegistry().histogram("dups", max_samples=3)
        for value in (7.0, 7.0, 7.0, 1.0):
            hist.observe(value)
        assert sorted(hist._sorted) == [1.0, 7.0, 7.0]
        assert hist.quantile(0.0) == 1.0


class TestRegistry:
    def test_create_or_lookup_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_hooks_see_every_observation(self):
        registry = MetricsRegistry()
        events = []
        registry.add_hook(lambda name, labels, value: events.append((name, labels, value)))
        registry.counter("requests_total").inc(("accepted",))
        registry.gauge("queue_depth").set(4, ("shard0",))
        registry.histogram("latency_seconds").observe(0.5)
        assert events == [
            ("requests_total", ("accepted",), 1.0),
            ("queue_depth", ("shard0",), 4.0),
            ("latency_seconds", (), 0.5),
        ]

    def test_snapshot_is_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("requests_total").inc(("accepted",), 3)
        registry.gauge("queue_depth").set(2, ("shard0",))
        registry.histogram("latency_seconds").observe(0.125)
        snap = registry.snapshot()
        assert snap["counters"]["requests_total"]["accepted"] == 3
        assert snap["gauges"]["queue_depth"]["shard0"] == 2
        assert snap["histograms"]["latency_seconds"]["count"] == 1.0
        json.dumps(snap)  # must not raise

    def test_render_lists_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc(("accepted",), 3)
        registry.gauge("queue_depth").set(2.0, ("shard1",))
        registry.histogram("latency_seconds").observe(0.5)
        text = registry.render(title="svc")
        assert "svc" in text
        assert "requests_total{accepted} 3" in text
        assert "queue_depth{shard1} 2" in text
        assert "latency_seconds count=1" in text
