"""Integration tests for ValidationService and ServiceSession.

The load-bearing property: the service *is* the exact equation policy
(``IssuanceSession(pool, "equation")``) scaled out -- every verdict,
reason, and log record must agree with the session, for every shard
count, executor backend, batch size, and queue capacity.
"""

import pytest

from repro.errors import ServiceError, ServiceOverloadedError, ValidationError
from repro.licenses.pool import LicensePool
from repro.online.session import IssuanceSession, ServiceSession
from repro.service import ServiceConfig, ValidationService
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    """A deterministic 16-license, 4-group pool plus a 200-request stream."""
    config = WorkloadConfig(
        n_licenses=16,
        seed=3,
        n_records=0,
        target_groups=4,
        aggregate_range=(300, 900),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = tuple(generator.issue_stream(pool, 200))
    return pool, stream


def outcome_signature(outcome):
    return (
        outcome.usage_id,
        outcome.count,
        tuple(outcome.license_set),
        outcome.accepted,
        outcome.rejection_reason,
    )


class _PoisonedShard:
    """A shard whose drain always raises (must be picklable, hence
    module level).  Wraps a real GroupShard so queueing still works."""

    def __init__(self, shard_id, slices, batch_size, queue_capacity):
        from repro.service.shard import GroupShard

        self._inner = GroupShard(shard_id, slices, batch_size, queue_capacity)
        self.shard_id = shard_id

    def enqueue(self, request):
        self._inner.enqueue(request)

    @property
    def depth(self):
        return self._inner.depth

    def process_pending(self):
        raise ServiceError("poisoned shard: simulated worker failure")


class TestEquivalenceWithEquationSession:
    def test_process_matches_session_verdicts(self, workload):
        pool, stream = workload
        session = IssuanceSession(pool, "equation")
        expected = [outcome_signature(session.issue(usage)) for usage in stream]
        with ValidationService(
            pool, ServiceConfig(shards=4, batch_size=16)
        ) as service:
            actual = [
                outcome_signature(outcome) for outcome in service.process(stream)
            ]
        assert actual == expected

    def test_log_matches_session_log(self, workload):
        pool, stream = workload
        session = IssuanceSession(pool, "equation")
        for usage in stream:
            session.issue(usage)
        with ValidationService(pool, ServiceConfig(shards=2)) as service:
            service.process(stream)
            assert len(service.log) == len(session.log)
            assert [
                (tuple(sorted(r.license_set)), r.count) for r in service.log
            ] == [
                (tuple(sorted(r.license_set)), r.count) for r in session.log
            ]

    def test_issue_one_at_a_time_matches_process(self, workload):
        pool, stream = workload
        with ValidationService(pool) as batch_service:
            batched = [
                outcome_signature(o) for o in batch_service.process(stream)
            ]
        with ValidationService(pool) as single_service:
            singles = [
                outcome_signature(single_service.issue(usage))
                for usage in stream
            ]
        assert singles == batched


class TestExecutors:
    @pytest.mark.parametrize(
        "backend",
        ["serial", "thread", "process", "process-roundtrip", "resident"],
    )
    def test_backends_agree(self, workload, backend):
        pool, stream = workload
        reference_config = ServiceConfig(shards=4, batch_size=16)
        with ValidationService(pool, reference_config) as reference:
            expected = [
                outcome_signature(o) for o in reference.process(stream)
            ]
        config = ServiceConfig(shards=4, batch_size=16, executor=backend)
        with ValidationService(pool, config) as service:
            actual = [outcome_signature(o) for o in service.process(stream)]
        assert actual == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(executor="quantum")

    def test_roundtrip_adoption_is_all_or_nothing(self):
        """Regression: a raising shard drain must leave the coordinator's
        whole shard table untouched -- earlier-resolved shards used to be
        adopted before a later future raised, silently mixing pre- and
        post-drain state."""
        from repro.core.grouping import GroupStructure
        from repro.core.incremental import GroupSlice
        from repro.service.executor import ProcessExecutor
        from repro.service.shard import GroupShard, ShardRequest

        structure = GroupStructure(
            (frozenset({1, 2, 4}), frozenset({3, 5})), 5
        )
        aggregates = [100, 50, 60, 50, 25]

        def make_shard(shard_id, group_id):
            slices = {
                group_id: GroupSlice(structure, aggregates, group_id)
            }
            return GroupShard(shard_id, slices, 4, 8)

        good = make_shard(0, 0)
        poisoned = _PoisonedShard(1, {1: GroupSlice(structure, aggregates, 1)}, 4, 8)
        for seq, (shard, members, group_id) in enumerate(
            [(good, (1, 2), 0), (poisoned, (3, 5), 1)]
        ):
            shard.enqueue(
                ShardRequest(
                    seq=seq,
                    usage_id=f"u{seq}",
                    group_id=group_id,
                    members=members,
                    count=5,
                    submitted_at=0.0,
                )
            )
        shards = [good, poisoned]
        executor = ProcessExecutor(max_workers=2)
        try:
            with pytest.raises(ServiceError):
                executor.drain(shards)
        finally:
            executor.close()
        # All-or-nothing: the originals are still in place (no mutated
        # copy adopted) and still hold every pending request.
        assert shards[0] is good and shards[1] is poisoned
        assert good.depth == 1 and poisoned.depth == 1
        assert good.slices()[0].records_inserted == 0


class TestBackpressure:
    def test_submit_raises_and_counts_overload(self, workload):
        pool, stream = workload
        config = ServiceConfig(shards=1, queue_capacity=1)
        with ValidationService(pool, config) as service:
            routable = [u for u in stream if service._matcher.match(u)]
            service.submit(routable[0])
            with pytest.raises(ServiceOverloadedError):
                service.submit(routable[1])
            assert (
                service.metrics.counter("overload_total").value(("shard0",)) == 1
            )
            # The overloaded request was never assigned a sequence number,
            # so draining yields exactly one shard verdict.
            assert len(service.drain()) == 1

    def test_process_absorbs_overload_without_drops(self, workload):
        pool, stream = workload
        with ValidationService(
            pool, ServiceConfig(shards=2, queue_capacity=4)
        ) as tiny:
            constrained = [outcome_signature(o) for o in tiny.process(stream)]
        with ValidationService(pool, ServiceConfig(shards=2)) as roomy:
            unconstrained = [outcome_signature(o) for o in roomy.process(stream)]
        assert constrained == unconstrained


class TestMetrics:
    def test_counters_partition_the_stream(self, workload):
        pool, stream = workload
        with ValidationService(pool, ServiceConfig(shards=4)) as service:
            outcomes = service.process(stream)
            requests = service.metrics.counter("requests_total")
            assert requests.total() == len(stream)
            assert requests.value(("accepted",)) == sum(
                o.accepted for o in outcomes
            )
            by_reason = {}
            for outcome in outcomes:
                if not outcome.accepted:
                    by_reason[outcome.rejection_reason] = (
                        by_reason.get(outcome.rejection_reason, 0) + 1
                    )
            for reason, count in by_reason.items():
                assert requests.value(("rejected", reason)) == count
            assert service.metrics.counter("batches_total").total() > 0
            assert service.metrics.counter("equations_checked_total").total() > 0

    def test_latency_histogram_covers_sharded_requests(self, workload):
        pool, stream = workload
        with ValidationService(pool) as service:
            outcomes = service.process(stream)
            instant = sum(
                1 for o in outcomes if o.rejection_reason == "instance"
            )
            summary = service.metrics.histogram("latency_seconds").summary()
            # Instance rejects never reach a shard, hence no latency sample.
            assert summary["count"] == len(stream) - instant
            assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_report_renders_counters_and_quantiles(self, workload):
        pool, stream = workload
        with ValidationService(pool, ServiceConfig(shards=2)) as service:
            service.process(stream)
            text = service.report()
        assert "requests_total{accepted}" in text
        assert "latency_seconds" in text and "p99=" in text
        assert "match_cache_hits" in text
        assert "2 shard(s)" in text

    def test_hooks_stream_service_events(self, workload):
        pool, stream = workload
        with ValidationService(pool) as service:
            events = []
            service.metrics.add_hook(
                lambda name, labels, value: events.append(name)
            )
            service.process(stream[:20])
        assert "requests_total" in events
        assert "latency_seconds" in events


class TestLifecycle:
    def test_replayed_log_constrains_admission(self, workload):
        pool, stream = workload
        with ValidationService(pool) as first_life:
            expected = [outcome_signature(o) for o in first_life.process(stream)]
            checkpoint = len(stream) // 2
        # Restart: replay the first half's acceptances, then serve the
        # second half -- verdicts must continue exactly where they left off.
        with ValidationService(pool) as warm:
            warm.process(stream[:checkpoint])
            journal = warm.log
        with ValidationService(pool, initial_log=journal) as second_life:
            resumed = [
                outcome_signature(o)
                for o in second_life.process(stream[checkpoint:])
            ]
            # Replayed records are history, not this service's issuances.
            assert len(second_life.log) == sum(sig[3] for sig in resumed)
        assert resumed == expected[checkpoint:]

    def test_shards_clamped_to_group_count(self, workload):
        pool, _stream = workload
        with ValidationService(pool, ServiceConfig(shards=64)) as service:
            assert service.shard_count == service.group_count <= 64

    def test_closed_service_rejects_work(self, workload):
        pool, stream = workload
        service = ValidationService(pool)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(stream[0])
        with pytest.raises(ServiceError):
            service.drain()
        service.close()  # idempotent

    def test_empty_pool_rejected(self):
        with pytest.raises(ValidationError):
            ValidationService(LicensePool())


class TestServiceSession:
    def test_session_surface_matches_equation_session(self, workload):
        pool, stream = workload
        reference = IssuanceSession(pool, "equation")
        expected = [outcome_signature(reference.issue(u)) for u in stream[:60]]
        session = ServiceSession(pool)
        actual = [outcome_signature(session.issue(u)) for u in stream[:60]]
        assert actual == expected
        assert session.policy_name == "service"
        assert session.accepted_counts == reference.accepted_counts
        assert len(session.outcomes) == 60

    def test_issue_many_batches_through_service(self, workload):
        pool, stream = workload
        session = ServiceSession(pool, ServiceConfig(shards=4, batch_size=16))
        outcomes = session.issue_many(stream)
        assert len(outcomes) == len(stream)
        assert session.service.metrics.counter("requests_total").total() == len(
            stream
        )

    def test_config_and_service_are_exclusive(self, workload):
        pool, _stream = workload
        with ValidationService(pool) as service:
            with pytest.raises(ValidationError):
                ServiceSession(pool, ServiceConfig(), service=service)
