"""Unit tests for GroupShard: batching, backpressure, FIFO admission."""

import pytest

from repro.errors import ServiceError, ServiceOverloadedError
from repro.core.grouping import GroupStructure
from repro.core.incremental import GroupSlice
from repro.service.shard import GroupShard, ShardRequest

#: Example 1's group structure over 5 licenses: {1, 2, 4} and {3, 5}.
STRUCTURE = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)
AGGREGATES = [100, 50, 60, 50, 25]


def make_shard(batch_size=4, queue_capacity=8, groups=(0,)):
    slices = {
        group_id: GroupSlice(STRUCTURE, AGGREGATES, group_id)
        for group_id in groups
    }
    return GroupShard(0, slices, batch_size, queue_capacity)


def request(seq, members, count, group_id=0):
    return ShardRequest(
        seq=seq,
        usage_id=f"u{seq}",
        group_id=group_id,
        members=tuple(members),
        count=count,
        submitted_at=0.0,
    )


class TestQueue:
    def test_overload_raises_with_shard_and_depth(self):
        shard = make_shard(queue_capacity=2)
        shard.enqueue(request(0, (1,), 5))
        shard.enqueue(request(1, (1,), 5))
        with pytest.raises(ServiceOverloadedError) as excinfo:
            shard.enqueue(request(2, (1,), 5))
        assert excinfo.value.shard_id == 0
        assert excinfo.value.depth == 2
        assert shard.depth == 2  # the overflowing request was not queued

    def test_misrouted_group_rejected(self):
        shard = make_shard(groups=(0,))
        with pytest.raises(ServiceError):
            shard.enqueue(request(0, (3, 5), 5, group_id=1))

    def test_group_ids_sorted(self):
        assert make_shard(groups=(1, 0)).group_ids == (0, 1)

    def test_config_validated(self):
        with pytest.raises(ServiceError):
            make_shard(batch_size=0)
        with pytest.raises(ServiceError):
            make_shard(queue_capacity=0)


class TestAdmission:
    def test_exact_headroom_admission(self):
        shard = make_shard()
        # Group {1, 2, 4}: headroom of {1, 2} is 150 (doctest of
        # GroupSlice); admit 140, then 11 more must be rejected while 10
        # still fits.
        shard.enqueue(request(0, (1, 2), 140))
        shard.enqueue(request(1, (1, 2), 11))
        shard.enqueue(request(2, (1, 2), 10))
        results, stats = shard.process_pending()
        assert [r.accepted for r in results] == [True, False, True]
        assert results[0].headroom == 150
        assert results[1].headroom == 10
        assert results[1].reason == "equation"
        assert results[2].reason is None
        assert (stats.accepted, stats.rejected, stats.processed) == (2, 1, 3)

    def test_fifo_order_preserved(self):
        shard = make_shard(batch_size=2)
        for seq in range(5):
            shard.enqueue(request(seq, (1,), 1))
        results, _stats = shard.process_pending()
        assert [r.seq for r in results] == [0, 1, 2, 3, 4]

    def test_batch_accounting(self):
        shard = make_shard(batch_size=2)
        for seq in range(5):
            shard.enqueue(request(seq, (1,), 1))
        _results, stats = shard.process_pending()
        assert stats.batches == 3  # ceil(5 / 2)
        # Each batch dirtied group 0 ({1, 2, 4}): one revalidation pass
        # of 2^3 - 1 = 7 equations per batch.
        assert stats.equations_checked == 3 * 7
        assert stats.audit_violations == 0
        assert stats.per_group == {0: 5}
        assert shard.depth == 0

    def test_all_rejected_batch_skips_revalidation(self):
        shard = make_shard()
        shard.enqueue(request(0, (1, 2), 10_000))
        results, stats = shard.process_pending()
        assert not results[0].accepted
        assert stats.equations_checked == 0  # nothing dirtied

    def test_verdicts_independent_of_batch_size(self):
        streams = {}
        for batch_size in (1, 2, 8):
            shard = make_shard(batch_size=batch_size)
            for seq, count in enumerate([60, 60, 60, 60, 60]):
                shard.enqueue(request(seq, (1, 2), count))
            results, _stats = shard.process_pending()
            streams[batch_size] = tuple(r.accepted for r in results)
        assert streams[1] == streams[2] == streams[8]

    def test_preload_consumes_capacity_unchecked(self):
        shard = make_shard()
        # Preload more than the headroom check would ever admit.
        shard.preload(0, (1, 2), 150)
        shard.enqueue(request(0, (1, 2), 1))
        results, _stats = shard.process_pending()
        assert not results[0].accepted
        assert results[0].headroom == 0

    def test_preload_unknown_group_rejected(self):
        shard = make_shard(groups=(0,))
        with pytest.raises(ServiceError):
            shard.preload(1, (3,), 5)
