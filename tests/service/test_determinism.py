"""Sharding must never change verdicts (Theorem 2, serving edition).

Disconnected overlap groups share no validation equations, so a
request's verdict depends only on the submission order *within its own
group* -- which every shard preserves (FIFO queues, ascending sequence
numbers).  Hence the outcome stream of a fixed request stream is
byte-identical no matter how groups are spread over shards, how
admission is batched, how small the bounded queues are, or which
executor backend runs the drain.
"""

import pytest

from repro.service import ServiceConfig, ValidationService
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

SEED = 2026


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(
        n_licenses=20,
        seed=SEED,
        n_records=0,
        target_groups=8,
        aggregate_range=(200, 700),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    # Mild popularity skew concentrates traffic on a few groups, the
    # regime where batching/sharding reorder temptation is highest.
    stream = tuple(generator.issue_stream(pool, 300, skew=0.8))
    return pool, stream


def verdict_stream(pool, stream, **config_kwargs):
    """Serve the stream; return one byte per verdict ('A' or reason initial)."""
    with ValidationService(pool, ServiceConfig(**config_kwargs)) as service:
        outcomes = service.process(stream)
    return "".join(
        "A" if o.accepted else (o.rejection_reason or "?")[0] for o in outcomes
    ).encode("ascii")


@pytest.fixture(scope="module")
def reference(workload):
    pool, stream = workload
    return verdict_stream(pool, stream, shards=1, batch_size=1)


@pytest.mark.parametrize("shards", [1, 2, 4, 8])
def test_shard_count_does_not_change_verdicts(workload, reference, shards):
    pool, stream = workload
    assert verdict_stream(pool, stream, shards=shards) == reference


@pytest.mark.parametrize("batch_size", [1, 3, 32, 512])
def test_batch_size_does_not_change_verdicts(workload, reference, batch_size):
    pool, stream = workload
    assert (
        verdict_stream(pool, stream, shards=4, batch_size=batch_size)
        == reference
    )


@pytest.mark.parametrize("queue_capacity", [2, 16, 4096])
def test_backpressure_does_not_change_verdicts(
    workload, reference, queue_capacity
):
    pool, stream = workload
    assert (
        verdict_stream(pool, stream, shards=4, queue_capacity=queue_capacity)
        == reference
    )


@pytest.mark.parametrize(
    "executor",
    ["serial", "thread", "process", "process-roundtrip", "resident"],
)
def test_executor_backend_does_not_change_verdicts(
    workload, reference, executor
):
    pool, stream = workload
    assert (
        verdict_stream(pool, stream, shards=8, executor=executor) == reference
    )


def test_joint_sweep_is_byte_identical(workload, reference):
    """The cross product: shards x batch x capacity all collapse to one
    verdict stream."""
    pool, stream = workload
    for shards in (2, 8):
        for batch_size in (1, 64):
            for queue_capacity in (3, 1024):
                assert (
                    verdict_stream(
                        pool,
                        stream,
                        shards=shards,
                        batch_size=batch_size,
                        queue_capacity=queue_capacity,
                    )
                    == reference
                ), (shards, batch_size, queue_capacity)
