"""Unit tests for the service cache layer (LRU memo + group tables)."""

import pytest

from repro.errors import ServiceError
from repro.licenses.license import UsageLicense
from repro.matching.index import IndexedMatcher
from repro.service.cache import GroupTables, LRUCache, MatchCache, request_key


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("absent") is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_clear_keeps_accounting(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_maxsize_validated(self):
        with pytest.raises(ServiceError):
            LRUCache(0)


class TestRequestKey:
    def test_same_geometry_same_key(self, scenario):
        usage = scenario.usages[0]
        renamed = UsageLicense(
            license_id="totally-different-id",
            content_id=usage.content_id,
            permission=usage.permission,
            box=usage.box,
            count=usage.count + 41,
        )
        # Identity and count are irrelevant to matching, so the key
        # ignores them.
        assert request_key(usage) == request_key(renamed)

    def test_different_scope_different_key(self, scenario):
        usage = scenario.usages[0]
        other = UsageLicense(
            license_id=usage.license_id,
            content_id="OTHER-CONTENT",
            permission=usage.permission,
            box=usage.box,
            count=usage.count,
        )
        assert request_key(usage) != request_key(other)

    def test_distinct_usages_have_distinct_keys(self, scenario):
        keys = {request_key(usage) for usage in scenario.usages}
        assert len(keys) == len(scenario.usages)


class TestMatchCache:
    def test_memoizes_and_matches_reference(self, scenario):
        matcher = IndexedMatcher(scenario.pool)
        cached = MatchCache(matcher, maxsize=16)
        for usage in scenario.usages:
            assert cached.match(usage) == matcher.match(usage)
        assert cached.misses == len(scenario.usages)
        for usage in scenario.usages:
            assert cached.match(usage) == matcher.match(usage)
        assert cached.hits == len(scenario.usages)

    def test_zero_maxsize_disables_caching(self, scenario):
        matcher = IndexedMatcher(scenario.pool)
        uncached = MatchCache(matcher, maxsize=0)
        usage = scenario.usages[0]
        assert uncached.match(usage) == matcher.match(usage)
        assert uncached.match(usage) == matcher.match(usage)
        assert (uncached.hits, uncached.misses) == (0, 0)

    def test_invalidate_forces_recomputation(self, scenario):
        cached = MatchCache(IndexedMatcher(scenario.pool), maxsize=16)
        usage = scenario.usages[0]
        cached.match(usage)
        cached.invalidate()
        cached.match(usage)
        assert cached.hits == 0
        assert cached.misses == 2


class TestGroupTables:
    def test_tables_agree_with_structure(self, scenario):
        tables = GroupTables(scenario.pool)
        # Example 1: groups {1, 2, 4} and {3, 5}.
        assert tables.group_count == 2
        assert set(tables.members[0]) | set(tables.members[1]) == {1, 2, 3, 4, 5}
        for group_id, members in enumerate(tables.members):
            for index in members:
                assert tables.group_of[index] == group_id
            mask = 0
            for index in members:
                mask |= 1 << (index - 1)  # bit i-1 stands for license i
            assert tables.masks[group_id] == mask

    def test_aggregates_match_pool(self, scenario):
        tables = GroupTables(scenario.pool)
        assert list(tables.aggregates) == [
            lic.aggregate for _idx, lic in scenario.pool.enumerate()
        ]

    def test_refresh_bumps_epoch(self, scenario):
        tables = GroupTables(scenario.pool)
        assert tables.epoch == 0
        assert tables.refresh() == 1
        assert tables.epoch == 1
        assert tables.group_count == 2  # same pool, same structure
