"""Resident worker executor: ownership, wire format, plane lifecycle.

The resident backend's contract (see :mod:`repro.service.resident`):
workers permanently own shard state, drains ship only O(batch) request
tuples and verdicts, the coordinator reads dense-kernel occupancy
zero-copy through shared-memory planes, and shutdown joins workers
before the coordinator unlinks the segments.
"""

import os
import pickle

import pytest
from multiprocessing import shared_memory

from repro.errors import ServiceError
from repro.core.kernel import KernelPlane
from repro.logstore.log import ValidationLog
from repro.service import ServiceConfig, ValidationService
from repro.service.executor import ProcessExecutor, make_executor, resolve_backend
from repro.service.resident import (
    ResidentProcessExecutor,
    decode_request,
    decode_result,
    decode_stats,
    encode_request,
    encode_result,
    encode_stats,
)
from repro.service.shard import (
    BatchTiming,
    RevalidationTiming,
    ShardRequest,
    ShardResult,
    ShardStats,
)
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(
        n_licenses=16,
        seed=424,
        n_records=0,
        target_groups=5,
        aggregate_range=(150, 500),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = tuple(generator.issue_stream(pool, 160, skew=0.6))
    return pool, stream


def signatures(outcomes):
    return [
        (o.usage_id, o.accepted, o.rejection_reason, o.license_set)
        for o in outcomes
    ]


class TestWireFormat:
    def test_request_round_trip(self):
        request = ShardRequest(
            seq=7,
            usage_id="u7",
            group_id=2,
            members=(3, 5),
            count=11,
            submitted_at=1.25,
        )
        assert decode_request(encode_request(request)) == request

    def test_result_round_trip(self):
        result = ShardResult(
            seq=9,
            usage_id="u9",
            group_id=1,
            members=(2,),
            count=4,
            accepted=False,
            reason="equation",
            headroom=3,
            service_time=0.001,
            submitted_at=1.0,
            processed_at=1.5,
        )
        assert decode_result(encode_result(result)) == result

    def test_stats_round_trip_with_timings(self):
        stats = ShardStats(
            processed=5,
            accepted=4,
            rejected=1,
            batches=2,
            equations_checked=12,
            audit_violations=0,
            kernel_fast_path_hits=5,
            kernel_fallback=0,
            per_group={3: 2, 1: 3},
            batch_timings=[
                BatchTiming(
                    shard_id=0,
                    size=3,
                    started=10.0,
                    duration=0.5,
                    revalidations=(
                        RevalidationTiming(
                            group_id=1,
                            equations_checked=7,
                            violations=0,
                            started=10.1,
                            duration=0.2,
                        ),
                    ),
                ),
            ],
        )
        decoded = decode_stats(encode_stats(stats))
        assert decoded == stats

    def test_request_rows_are_compact_tuples(self):
        row = encode_request(
            ShardRequest(
                seq=0,
                usage_id="u0",
                group_id=0,
                members=(1,),
                count=1,
                submitted_at=0.0,
            )
        )
        assert isinstance(row, tuple)
        # No dataclass overhead on the wire: a row pickles far smaller
        # than the dataclass it flattens.
        assert len(pickle.dumps(row)) < 100


class TestResidentService:
    @pytest.mark.parametrize("kernel", ["tree", "dense"])
    def test_verdicts_match_serial(self, workload, kernel):
        pool, stream = workload
        with ValidationService(
            pool, ServiceConfig(shards=4, kernel=kernel)
        ) as serial:
            expected = signatures(serial.process(stream))
        with ValidationService(
            pool,
            ServiceConfig(shards=4, kernel=kernel, executor="resident"),
        ) as resident:
            actual = signatures(resident.process(stream))
        assert actual == expected

    def test_process_alias_resolves_to_resident(self, workload):
        pool, _stream = workload
        assert resolve_backend("process") == "resident"
        with ValidationService(
            pool, ServiceConfig(executor="process")
        ) as service:
            assert service.executor_backend == "resident"
            assert isinstance(service._executor, ResidentProcessExecutor)
        with ValidationService(
            pool, ServiceConfig(executor="process-roundtrip")
        ) as service:
            assert service.executor_backend == "process-roundtrip"
            assert isinstance(service._executor, ProcessExecutor)

    def test_worker_count_clamped_and_configurable(self, workload):
        pool, _stream = workload
        with ValidationService(
            pool,
            ServiceConfig(shards=4, executor="resident", workers=2),
        ) as service:
            assert service._executor.workers == 2
        with ValidationService(
            pool,
            ServiceConfig(shards=2, executor="resident", workers=64),
        ) as service:
            # Never more workers than shards: an idle worker owns nothing.
            assert service._executor.workers == service.shard_count

    def test_occupancy_reads_worker_state_zero_copy(self, workload):
        """The coordinator never processes a request itself under the
        resident backend, yet its occupancy view advances: the workers
        write the shared planes the coordinator's kernels read."""
        pool, stream = workload
        config = ServiceConfig(shards=4, kernel="dense", executor="resident")
        with ValidationService(pool, config) as service:
            before = service.kernel_occupancy()
            assert before, "dense config must expose occupancy"
            assert all(occ["total_count"] == 0 for occ in before.values())
            outcomes = service.process(stream)
            accepted_counts = sum(
                o.count for o in outcomes if o.accepted
            )
            after = service.kernel_occupancy()
            assert (
                sum(occ["total_count"] for occ in after.values())
                == accepted_counts
            )

    def test_replayed_log_reaches_workers(self, workload):
        """Warm restart: state replayed into the coordinator before the
        workers spawn must shape worker verdicts (shipped via specs for
        tree groups, via adopted planes for dense ones)."""
        pool, stream = workload
        head, tail = list(stream[:80]), list(stream[80:])
        for kernel in ("tree", "dense"):
            config = ServiceConfig(shards=3, kernel=kernel)
            with ValidationService(pool, config) as cold:
                cold.process(head)
                log = ValidationLog()
                for record in cold.log:
                    log.record(
                        record.license_set, record.count, record.issued_id
                    )
                expected = signatures(cold.process(tail))
            resident_config = ServiceConfig(
                shards=3, kernel=kernel, executor="resident"
            )
            with ValidationService(
                pool, resident_config, initial_log=log
            ) as warm:
                actual = signatures(warm.process(tail))
            assert actual == expected, kernel

    def test_close_unlinks_planes_and_stops_workers(self, workload):
        pool, stream = workload
        config = ServiceConfig(shards=2, kernel="dense", executor="resident")
        service = ValidationService(pool, config)
        service.process(stream[:40])
        allocator = service._plane_allocator
        assert allocator is not None
        names = [
            name for pair in allocator.names().values() for name in pair
        ]
        assert names, "dense resident service must allocate shared planes"
        procs = list(service._executor._procs)
        assert all(proc.is_alive() for proc in procs)
        service.close()
        assert all(not proc.is_alive() for proc in procs)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_drains_ship_batches_not_state(self, workload):
        """The O(batch) property: per-drain IPC bytes do not grow with
        accumulated kernel state, and are equal -- up to pickle
        integer-width jitter in the stats counters -- whether the group
        engines are dense tables or trees (state never crosses)."""
        pool, stream = workload

        def drain_bytes(kernel):
            sizes = []
            config = ServiceConfig(
                shards=2, batch_size=16, kernel=kernel, executor="resident"
            )
            with ValidationService(pool, config) as service:
                for start in range(0, 120, 40):
                    service.process(stream[start : start + 40])
                    sizes.append(service._executor.last_drain_bytes)
            return sizes

        dense, tree = drain_bytes("dense"), drain_bytes("tree")
        assert all(abs(d - t) <= 64 for d, t in zip(dense, tree))
        # Later drains carry the same-shaped batches while the workers'
        # kernel state keeps growing: bytes must stay flat (within the
        # jitter of variable member tuples), not scale with state.
        assert max(dense) < 2 * min(dense)

    def test_ipc_bytes_counter_exposed(self, workload):
        pool, stream = workload
        config = ServiceConfig(shards=2, executor="resident")
        with ValidationService(pool, config) as service:
            service.process(stream[:30])
            counted = service.metrics.counter(
                "ipc_bytes_shipped_total"
            ).value()
            assert counted == service._executor.bytes_shipped_total
            assert counted > 0

    def test_failed_drain_requeues_and_poisons_executor(self, workload):
        pool, stream = workload
        config = ServiceConfig(shards=2, executor="resident")
        with ValidationService(pool, config) as service:
            executor = service._executor
            routable = [u for u in stream if service._matcher.match(u)]
            for usage in routable[:6]:
                service.submit(usage)
            pending_before = service.pending
            assert pending_before == 6
            # Sabotage the pipes: the drain must fail, requeue every
            # taken request, and refuse further drains.
            for conn in executor._conns:
                conn.close()
            with pytest.raises(ServiceError):
                service.drain()
            assert service.pending == pending_before
            with pytest.raises(ServiceError):
                executor.drain([])

    def test_timings_collected_in_workers(self, workload):
        pool, stream = workload
        config = ServiceConfig(shards=2, executor="resident")
        with ValidationService(pool, config) as service:
            service.enable_request_timings()
            outcomes_with_seq = []
            for usage in stream[:20]:
                seq = service.submit(usage)
                outcomes_with_seq.append(seq)
            service.drain()
            timings = [
                service.pop_request_timing(seq) for seq in outcomes_with_seq
            ]
            assert all(timing is not None for timing in timings)

    def test_executor_requires_specs(self):
        with pytest.raises(ServiceError):
            make_executor("resident", 2)

    def test_startup_failure_surfaces_worker_error(self, workload):
        pool, _stream = workload
        config = ServiceConfig(shards=2, kernel="dense", executor="resident")
        service = ValidationService(pool, config)
        try:
            specs = service._build_specs()
            # Corrupt a plane name: the worker's attach must fail and the
            # constructor must surface the worker traceback, not hang.
            bad = specs[0]
            poisoned = type(bad)(
                shard_id=bad.shard_id,
                group_ids=bad.group_ids,
                batch_size=bad.batch_size,
                queue_capacity=bad.queue_capacity,
                kernel=bad.kernel,
                kernel_cap=bad.kernel_cap,
                structure=bad.structure,
                aggregates=bad.aggregates,
                preloads=bad.preloads,
                plane_names={
                    group_id: (f"repro-missing-{os.getpid()}-c", names[1])
                    for group_id, names in bad.plane_names.items()
                },
                collect_timings=bad.collect_timings,
            )
            if poisoned.plane_names:
                with pytest.raises(ServiceError):
                    ResidentProcessExecutor([poisoned], 1)
        finally:
            service.close()


class TestHeapPlaneFallback:
    def test_non_resident_dense_services_use_heap_tables(self, workload):
        """Workers off -> no shared segments: the plain-heap fallback."""
        pool, stream = workload
        config = ServiceConfig(shards=2, kernel="dense")
        with ValidationService(pool, config) as service:
            assert service._plane_allocator is None
            service.process(stream[:40])
            assert service.kernel_occupancy(), (
                "occupancy must work on heap-backed kernels too"
            )

    def test_heap_allocator_names_empty(self):
        from repro.core.kernel import KernelPlaneAllocator

        allocator = KernelPlaneAllocator(shared=False)
        pair = allocator.pair_for(0, 16)
        assert not pair[0].shared and not pair[1].shared
        assert allocator.names() == {}
        allocator.close()

    def test_attach_close_never_unlinks(self):
        plane = KernelPlane.create(f"repro-test-{os.getpid()}", 8)
        attached = KernelPlane.attach(plane.name, 8)
        attached.ndarray[3] = 42
        assert plane.ndarray[3] == 42
        attached.close()
        # Attacher closed, creator still maps the segment.
        assert plane.ndarray[3] == 42
        plane.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=plane.name)
