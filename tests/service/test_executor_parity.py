"""Executor-parity property suite: four backends, one verdict stream.

Hypothesis drives randomized shard counts, batch sizes, queue
capacities, and kernel configurations through every executor backend --
serial, thread, process-roundtrip, and resident -- asserting that the
verdict stream is **byte-identical** and that ``equations_checked`` is
equal across backends (the audit does the same incremental work no
matter where the shards run).  A dedicated case drives a mid-stream
``ServiceOverloadedError`` burst (tiny queues + forced drains) through
all four.

Process-backed examples are expensive (worker spawn per service), so
the randomized sweeps keep example counts small and workloads compact;
the exhaustive cheap backends (serial/thread) run more examples.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.service import ServiceConfig, ValidationService
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

#: Every real backend (the deprecated ``process`` alias resolves to
#: ``resident`` and is covered by tests/service/test_resident.py).
ALL_BACKENDS = ("serial", "thread", "process-roundtrip", "resident")

#: Workload cache: Hypothesis re-runs examples, pools are deterministic
#: in their config, and generation dominates example cost.
_WORKLOADS = {}


def workload_for(seed, n_licenses, target_groups, stream_len, skew):
    key = (seed, n_licenses, target_groups, stream_len, skew)
    if key not in _WORKLOADS:
        generator = WorkloadGenerator(
            WorkloadConfig(
                n_licenses=n_licenses,
                seed=seed,
                n_records=0,
                target_groups=target_groups,
                aggregate_range=(100, 500),
            )
        )
        pool = generator.generate_pool()
        stream = tuple(generator.issue_stream(pool, stream_len, skew=skew))
        _WORKLOADS[key] = (pool, stream)
    return _WORKLOADS[key]


def serve(pool, stream, **config_kwargs):
    """Serve the stream; return (verdict bytes, equations_checked)."""
    with ValidationService(pool, ServiceConfig(**config_kwargs)) as service:
        outcomes = service.process(stream)
        verdicts = "".join(
            "A" if o.accepted else (o.rejection_reason or "?")[0]
            for o in outcomes
        ).encode("ascii")
        equations = service.metrics.counter("equations_checked_total").value()
    return verdicts, equations


service_configs = st.fixed_dictionaries(
    {
        "shards": st.integers(1, 6),
        "batch_size": st.sampled_from([1, 4, 32]),
        "queue_capacity": st.sampled_from([4, 64, 1024]),
        "kernel": st.sampled_from(["tree", "dense"]),
        "kernel_cap": st.sampled_from([3, 20]),
    }
)

workload_params = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 7),
        "n_licenses": st.sampled_from([6, 12, 18]),
        "target_groups": st.integers(2, 5),
        "stream_len": st.sampled_from([40, 120]),
        "skew": st.sampled_from([0.0, 0.8]),
    }
)


class TestCheapBackendSweep:
    """serial vs thread: wide randomized sweep (no process spawn cost)."""

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(config=service_configs, params=workload_params)
    def test_thread_matches_serial(self, config, params):
        pool, stream = workload_for(**params)
        reference = serve(pool, stream, executor="serial", **config)
        assert serve(pool, stream, executor="thread", **config) == reference


class TestAllBackendParity:
    """All four backends: verdicts byte-identical, equations equal."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(config=service_configs, params=workload_params)
    def test_verdicts_and_equations_identical(self, config, params):
        pool, stream = workload_for(**params)
        results = {
            backend: serve(pool, stream, executor=backend, **config)
            for backend in ALL_BACKENDS
        }
        reference_verdicts, reference_equations = results["serial"]
        for backend, (verdicts, equations) in results.items():
            assert verdicts == reference_verdicts, backend
            assert equations == reference_equations, backend

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        params=workload_params,
        kernel=st.sampled_from(["tree", "dense"]),
    )
    def test_overload_burst_mid_stream(self, params, kernel):
        """A queue_capacity small enough to overflow mid-stream forces
        ServiceOverloadedError-driven early drains; the verdict stream
        must still be identical across backends (overload never drops a
        request in process(), it only reorders *drains*)."""
        pool, stream = workload_for(**params)
        config = dict(
            shards=2, batch_size=4, queue_capacity=2, kernel=kernel
        )
        reference = serve(pool, stream, executor="serial", **config)
        for backend in ALL_BACKENDS[1:]:
            assert serve(pool, stream, executor=backend, **config) == (
                reference
            ), backend
