"""Unit tests for the overlap graph (Section 3.2 / Figure 3)."""

import pytest

from repro.errors import GroupingError
from repro.core.overlap import OverlapGraph, overlap_adjacency
from repro.workloads.scenarios import example1, figure2_pool


class TestFigure3:
    """The paper's Figure 3: graph + adjacency for the Figure 2 licenses."""

    def test_adjacency_matrix(self):
        graph = OverlapGraph.from_pool(figure2_pool())
        # Edges exactly {1-2, 2-4, 3-5}: L1-L4 are NON-overlapping in
        # Figure 2 (they connect only through L2).
        assert graph.adjacency == [
            [0, 1, 0, 0, 0],
            [1, 0, 0, 1, 0],
            [0, 0, 0, 0, 1],
            [0, 1, 0, 0, 0],
            [0, 0, 1, 0, 0],
        ]

    def test_edges(self):
        graph = OverlapGraph.from_pool(figure2_pool())
        assert sorted(graph.edges()) == [(1, 2), (2, 4), (3, 5)]
        assert graph.edge_count() == 3

    def test_neighbors(self):
        graph = OverlapGraph.from_pool(figure2_pool())
        assert sorted(graph.neighbors(2)) == [1, 4]
        assert list(graph.neighbors(3)) == [5]

    def test_are_overlapping(self):
        graph = OverlapGraph.from_pool(figure2_pool())
        assert graph.are_overlapping(1, 2)
        assert not graph.are_overlapping(1, 4)
        assert graph.are_overlapping(2, 1)  # symmetric


class TestExample1Graph:
    def test_example1_edges(self):
        # Example 1 licenses: L1 overlaps L2 (Asia, dates) and L4
        # (Europe, dates); L3 overlaps L5 (America, dates).
        graph = OverlapGraph.from_pool(example1().pool)
        assert sorted(graph.edges()) == [(1, 2), (1, 4), (3, 5)]


class TestConstruction:
    def test_adjacency_helper_zero_diagonal(self):
        boxes = figure2_pool().boxes()
        adjacency = overlap_adjacency(boxes)
        assert all(adjacency[i][i] == 0 for i in range(5))

    def test_non_square_rejected(self):
        with pytest.raises(GroupingError):
            OverlapGraph([[0, 1], [1, 0], [0, 0]])

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(GroupingError):
            OverlapGraph([[1]])

    def test_asymmetric_rejected(self):
        with pytest.raises(GroupingError):
            OverlapGraph([[0, 1], [0, 0]])

    def test_vertex_range_checked(self):
        graph = OverlapGraph([[0]])
        with pytest.raises(GroupingError):
            graph.are_overlapping(0, 1)
        with pytest.raises(GroupingError):
            list(graph.neighbors(2))


class TestNetworkxExport:
    def test_nodes_and_edges(self):
        graph = OverlapGraph.from_pool(figure2_pool())
        nx_graph = graph.to_networkx()
        assert sorted(nx_graph.nodes) == [1, 2, 3, 4, 5]
        assert sorted(tuple(sorted(e)) for e in nx_graph.edges) == [
            (1, 2),
            (2, 4),
            (3, 5),
        ]

    def test_isolated_vertices_kept(self):
        graph = OverlapGraph([[0, 0], [0, 0]])
        assert sorted(graph.to_networkx().nodes) == [1, 2]
