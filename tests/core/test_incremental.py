"""Unit tests for the incremental (dirty-group) validator."""

import pytest

from repro.errors import GroupingError, ValidationError
from repro.core.incremental import IncrementalValidator
from repro.core.validator import GroupedValidator
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import example1, example1_log


@pytest.fixture
def incremental():
    return IncrementalValidator.from_pool(example1().pool)


class TestBasics:
    def test_structure_matches_batch(self, incremental):
        assert incremental.structure.groups == (
            frozenset({1, 2, 4}),
            frozenset({3, 5}),
        )

    def test_empty_is_valid(self, incremental):
        report = incremental.validate()
        assert report.is_valid
        # First call evaluates every group once: 7 + 3 equations.
        assert report.equations_checked == 10

    def test_replay_matches_batch_validator(self, incremental):
        log = example1_log()
        incremental.replay(log)
        incremental_report = incremental.validate()
        batch = GroupedValidator.from_pool(example1().pool).validate(log)
        assert incremental_report.is_valid == batch.is_valid
        assert set(incremental_report.violations) == set(batch.violations)

    def test_records_inserted_counter(self, incremental):
        incremental.replay(example1_log())
        assert incremental.records_inserted == 6


class TestDirtyTracking:
    def test_clean_validate_is_free(self, incremental):
        incremental.replay(example1_log())
        incremental.validate()
        again = incremental.validate()
        assert again.equations_checked == 0
        assert again.is_valid

    def test_only_touched_group_revalidated(self, incremental):
        incremental.replay(example1_log())
        incremental.validate()
        # Group 2 = {3, 5} has 2 licenses -> 3 equations.
        group_id = incremental.record({3, 5}, 10)
        assert group_id == 1
        assert incremental.dirty_groups == (1,)
        report = incremental.validate()
        assert report.equations_checked == 3

    def test_group1_touch_costs_seven(self, incremental):
        incremental.validate()
        incremental.record({1, 2}, 5)
        assert incremental.dirty_groups == (0,)
        assert incremental.validate().equations_checked == 7

    def test_cached_violations_survive(self, incremental):
        incremental.record({5}, 99999)  # violate group 2
        first = incremental.validate()
        assert not first.is_valid
        # Touch group 1 only; group 2's violation must still be reported.
        incremental.record({1}, 1)
        second = incremental.validate()
        assert not second.is_valid
        assert frozenset({5}) in second.violated_sets
        assert second.equations_checked == 7  # only group 1 re-checked


class TestErrors:
    def test_cross_group_record_rejected(self, incremental):
        with pytest.raises(GroupingError):
            incremental.record({1, 3}, 5)

    def test_localize_reports_every_foreign_index(self, incremental):
        """The error names ALL out-of-group indexes, not just the first
        one the lookup tripped over (message pinned)."""
        gslice = incremental.slices()[0]  # group 1 = {1, 2, 4}
        with pytest.raises(GroupingError) as excinfo:
            gslice.localize([5, 1, 3, 2])
        assert str(excinfo.value) == (
            "licenses [3, 5] are not in group 1 ([1, 2, 4])"
        )

    def test_empty_set_rejected(self, incremental):
        with pytest.raises(ValidationError):
            incremental.record(set(), 5)

    def test_mismatched_construction(self):
        pool = example1().pool
        with pytest.raises(ValidationError):
            IncrementalValidator(pool.boxes(), [1, 2])
        with pytest.raises(ValidationError):
            IncrementalValidator([], [])


class TestKernelSeam:
    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValidationError):
            IncrementalValidator.from_pool(example1().pool, kernel="gpu")

    def test_dense_slices_report_engine(self):
        validator = IncrementalValidator.from_pool(
            example1().pool, kernel="dense"
        )
        assert all(
            gslice.kernel_name == "dense" and not gslice.kernel_fallback
            for gslice in validator.slices()
        )

    def test_cap_zero_falls_back_to_tree(self):
        validator = IncrementalValidator.from_pool(
            example1().pool, kernel="dense", kernel_cap=0
        )
        assert all(
            gslice.kernel_name == "tree" and gslice.kernel_fallback
            for gslice in validator.slices()
        )
        # The downgraded validator still validates normally.
        validator.replay(example1_log())
        assert validator.validate().is_valid

    def test_version_counter_tracks_inserts(self):
        validator = IncrementalValidator.from_pool(
            example1().pool, kernel="dense"
        )
        gslice = validator.slices()[0]
        assert gslice.version == 0
        gslice.insert([1, 2], 3)
        gslice.insert([4], 1)
        assert gslice.version == 2

    def test_dense_revalidate_spans_report_kernel_work(self):
        from repro.obs.instrument import TracingInstrumentation
        from repro.obs.trace import Tracer

        validator = IncrementalValidator.from_pool(
            example1().pool, kernel="dense"
        )
        validator.record({1, 2}, 5)
        tracer = Tracer()
        instrumentation = TracingInstrumentation(tracer)
        validator.validate(instrumentation)
        spans = [r for r in tracer.records() if r.name == "revalidate"]
        assert len(spans) == 2  # both groups ran their first validation
        touched = spans[0] if spans[0].attrs["group_id"] == 0 else spans[1]
        assert touched.attrs["kernel"] == "dense"
        # {1, 2} in group {1, 2, 4}: cone 2^(3-2) = 2 masks rewritten.
        assert touched.attrs["masks_touched"] == 2
        assert instrumentation.counters()["kernel_masks_touched"] == 2
        # A clean second pass is a cache hit and resets nothing new.
        validator.validate(instrumentation)
        assert instrumentation.counters()["revalidation_cache_hits"] == 2

    def test_dense_matches_tree_on_workloads(self):
        workload = WorkloadGenerator(
            WorkloadConfig(
                n_licenses=12, seed=5, n_records=150,
                aggregate_range=(200, 900),
            )
        ).generate()
        dense = IncrementalValidator.from_pool(workload.pool, kernel="dense")
        tree = IncrementalValidator.from_pool(workload.pool, kernel="tree")
        dense.replay(workload.log)
        tree.replay(workload.log)
        dense_report = dense.validate()
        tree_report = tree.validate()
        assert dense_report.is_valid == tree_report.is_valid
        assert set(dense_report.violations) == set(tree_report.violations)


class TestAgainstBatchOnWorkloads:
    @pytest.mark.parametrize("seed", range(4))
    def test_streamed_equals_batch(self, seed):
        workload = WorkloadGenerator(
            WorkloadConfig(
                n_licenses=10,
                seed=seed,
                n_records=200,
                aggregate_range=(500, 2000),
            )
        ).generate()
        incremental = IncrementalValidator.from_pool(workload.pool)
        batch = GroupedValidator.from_pool(workload.pool)
        for record in workload.log:
            incremental.append(record)
        assert set(incremental.validate().violations) == set(
            batch.validate(workload.log).violations
        )

    def test_interleaved_validate_consistent(self):
        workload = WorkloadGenerator(
            WorkloadConfig(n_licenses=8, seed=9, n_records=120)
        ).generate()
        incremental = IncrementalValidator.from_pool(workload.pool)
        batch = GroupedValidator.from_pool(workload.pool)
        from repro.logstore.log import ValidationLog

        replayed = ValidationLog()
        for position, record in enumerate(workload.log):
            incremental.append(record)
            replayed.append(record)
            if position % 30 == 0:
                assert (
                    incremental.validate().is_valid
                    == batch.validate(replayed).is_valid
                )
