"""Property tests over the core pipeline's algebraic identities."""

from hypothesis import given, settings, strategies as st

from repro.core.grouped_tree import GroupedValidationTree
from repro.core.grouping import (
    GroupStructure,
    form_groups,
    form_groups_paper_literal,
)
from repro.core.overlap import OverlapGraph
from repro.core.remap import globalize_mask, position_array
from repro.validation.tree import ValidationTree


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    adjacency = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                adjacency[i][j] = adjacency[j][i] = 1
    return OverlapGraph(adjacency)


@st.composite
def structures_with_logs(draw):
    """A random partition plus a partition-respecting random log."""
    n = draw(st.integers(min_value=2, max_value=9))
    # Random partition of 1..n.
    group_count = draw(st.integers(min_value=1, max_value=n))
    assignment = [draw(st.integers(0, group_count - 1)) for _ in range(n)]
    # Ensure no empty group labels by collapsing.
    labels = sorted(set(assignment))
    remap = {label: i for i, label in enumerate(labels)}
    assignment = [remap[a] for a in assignment]
    groups = [
        frozenset(i + 1 for i, a in enumerate(assignment) if a == g)
        for g in range(len(labels))
    ]
    structure = GroupStructure(tuple(sorted(groups, key=min)), n)
    # Log records within single groups only (Corollary 1.1).
    tree = ValidationTree()
    for _ in range(draw(st.integers(min_value=0, max_value=12))):
        group = draw(st.sampled_from(structure.groups))
        members = draw(
            st.sets(st.sampled_from(sorted(group)), min_size=1)
        )
        tree.insert_set(tuple(sorted(members)), draw(st.integers(1, 50)))
    aggregates = [draw(st.integers(0, 200)) for _ in range(n)]
    return structure, tree, aggregates


class TestLiteralAlgorithmProperties:
    @settings(max_examples=80, deadline=None)
    @given(random_graphs())
    def test_literal_refines_true_components(self, graph):
        """The printed j>i scan can over-split but never merge: each of
        its groups lies inside one true connected component."""
        true_lookup = form_groups(graph).group_lookup()
        literal = form_groups_paper_literal(graph)
        for group in literal.groups:
            assert len({true_lookup[v] for v in group}) == 1

    @settings(max_examples=80, deadline=None)
    @given(random_graphs())
    def test_literal_group_count_at_least_true(self, graph):
        assert form_groups_paper_literal(graph).count >= form_groups(graph).count


class TestGlobalizeMaskProperties:
    @settings(max_examples=80, deadline=None)
    @given(structures_with_logs(), st.data())
    def test_globalize_inverts_position_array(self, scenario, data):
        structure, _tree, _aggregates = scenario
        group_id = data.draw(
            st.integers(min_value=0, max_value=structure.count - 1)
        )
        position = position_array(structure, group_id)
        # Build a random local mask and check the round trip.
        members = sorted(structure.groups[group_id])
        chosen = data.draw(st.sets(st.sampled_from(members), min_size=1))
        local_mask = 0
        for index in chosen:
            local_mask |= 1 << (position[index] - 1)
        global_mask = globalize_mask(structure, group_id, local_mask)
        assert global_mask == sum(1 << (index - 1) for index in chosen)


class TestDividedSubsetSumProperties:
    @settings(max_examples=80, deadline=None)
    @given(structures_with_logs())
    def test_divided_subset_sum_equals_original(self, scenario):
        """Theorem 2's identity checked for every mask on random
        partition-respecting trees."""
        structure, tree, aggregates = scenario
        reference = {
            mask: tree.subset_sum(mask)
            for mask in range(1, 1 << structure.n)
        }
        grouped = GroupedValidationTree.from_tree(tree, aggregates, structure)
        for mask, expected in reference.items():
            assert grouped.subset_sum(mask) == expected
