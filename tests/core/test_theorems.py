"""Tests of the paper's Theorem 1, Corollary 1.1 and Theorem 2.

These are the statements that make the grouped validation *correct* (not
just fast); we verify them both on the paper's own examples and on
randomized workloads.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grouping import form_groups
from repro.core.overlap import OverlapGraph
from repro.core.validator import GroupedValidator
from repro.geometry.box import common_region
from repro.matching.index import IndexedMatcher
from repro.validation.bitset import indexes_of, iter_masks
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import example1, figure2_pool


class TestTheorem1:
    """No common region => C[S] is identically 0."""

    def test_figure2_l1_l2_l3_no_common_region(self):
        # The paper's own instance of Theorem 1.
        pool = figure2_pool()
        boxes = [pool[1].box, pool[2].box, pool[3].box]
        assert common_region(boxes) is None

    def test_no_common_region_sets_never_logged(self):
        # Generate many issuances; any set S whose licenses lack a common
        # region must never appear in the log.
        workload = WorkloadGenerator(
            WorkloadConfig(n_licenses=10, seed=3, n_records=400)
        ).generate()
        boxes = workload.pool.boxes()
        for license_set in workload.log.counts_by_set():
            region = common_region([boxes[i - 1] for i in license_set])
            assert region is not None, (
                f"logged set {sorted(license_set)} has no common region"
            )

    def test_match_set_has_common_region(self):
        # Directly: the issued box itself lies in the common region.
        scenario = example1()
        matcher = IndexedMatcher(scenario.pool)
        for usage in scenario.usages:
            matched = matcher.match(usage)
            if matched:
                region = common_region(
                    [scenario.pool[i].box for i in sorted(matched)]
                )
                assert region is not None
                assert region.contains(usage.box)


class TestCorollary11:
    """Sets mixing two disconnected groups can never appear in logs."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_logged_sets_stay_within_one_group(self, seed):
        workload = WorkloadGenerator(
            WorkloadConfig(n_licenses=12, seed=seed, n_records=300)
        ).generate()
        structure = form_groups(OverlapGraph.from_pool(workload.pool))
        lookup = structure.group_lookup()
        for license_set in workload.log.counts_by_set():
            groups = {lookup[index] for index in license_set}
            assert len(groups) == 1


class TestTheorem2:
    """Per-group equations imply all cross-group equations.

    Exhaustive check: for every mask over the full universe, the equation
    decomposes as the sum of its per-group projections, so if all
    within-group equations hold, every equation holds.
    """

    def _decomposition_holds(self, pool, log):
        validator = GroupedValidator.from_pool(pool)
        structure = validator.structure
        aggregates = validator.aggregates
        tree = ValidationTree.from_log(log)
        baseline = TreeValidator(aggregates)
        group_masks = structure.masks()
        for mask in iter_masks(len(aggregates)):
            lhs = tree.subset_sum(mask)
            rhs = baseline.rhs(mask)
            # Project the set onto each group.
            projected_lhs = sum(
                tree.subset_sum(mask & group_mask)
                for group_mask in group_masks
                if mask & group_mask
            )
            projected_rhs = sum(
                baseline.rhs(mask & group_mask)
                for group_mask in group_masks
                if mask & group_mask
            )
            # Equation 2 of the paper: C<S> = Σ C<S_i>, A[S] = Σ A[S_i].
            assert lhs == projected_lhs, f"LHS decomposition fails for {indexes_of(mask)}"
            assert rhs == projected_rhs

    def test_decomposition_on_example1(self):
        from repro.workloads.scenarios import example1_log

        self._decomposition_holds(example1().pool, example1_log())

    @pytest.mark.parametrize("seed", [5, 6])
    def test_decomposition_on_generated_workloads(self, seed):
        workload = WorkloadGenerator(
            WorkloadConfig(n_licenses=9, seed=seed, n_records=200)
        ).generate()
        self._decomposition_holds(workload.pool, workload.log)

    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_grouped_verdict_equals_baseline_verdict(self, seed):
        # The operational consequence: the grouped validator and the
        # full 2^N - 1 equation validator always agree.
        workload = WorkloadGenerator(
            WorkloadConfig(n_licenses=11, seed=seed, n_records=250)
        ).generate()
        grouped = GroupedValidator.from_pool(workload.pool).validate(workload.log)
        baseline = TreeValidator(workload.aggregates).validate(
            ValidationTree.from_log(workload.log)
        )
        assert grouped.is_valid == baseline.is_valid
        # Every grouped violation is also a baseline violation, and every
        # baseline violation restricted to one group appears in grouped.
        assert set(grouped.violations) <= set(baseline.violations)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_baseline_violations_are_implied_by_grouped(self, seed):
        # Any violated cross-group equation decomposes into per-group
        # equations of which at least one must be violated (Theorem 2).
        workload = WorkloadGenerator(
            WorkloadConfig(
                n_licenses=8,
                seed=seed,
                n_records=400,
                aggregate_range=(100, 400),  # force violations
            )
        ).generate()
        validator = GroupedValidator.from_pool(workload.pool)
        grouped = validator.validate(workload.log)
        baseline = TreeValidator(workload.aggregates).validate(
            ValidationTree.from_log(workload.log)
        )
        if baseline.is_valid:
            pytest.skip("workload happened to be valid; no violations to check")
        group_masks = validator.structure.masks()
        grouped_masks = {violation.mask for violation in grouped.violations}
        for violation in baseline.violations:
            projections = [
                violation.mask & group_mask
                for group_mask in group_masks
                if violation.mask & group_mask
            ]
            assert any(mask in grouped_masks for mask in projections), (
                f"baseline violation {indexes_of(violation.mask)} not implied "
                f"by any grouped violation"
            )
