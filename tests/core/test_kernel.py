"""Unit tests for the dense incremental headroom kernel."""

import pytest

from repro.errors import ValidationError
from repro.core.kernel import (
    KERNEL_DENSE,
    KERNEL_NAMES,
    KERNEL_TREE,
    DenseHeadroomKernel,
)
from repro.validation.capacity import headroom as tree_headroom
from repro.validation.limits import (
    DEFAULT_KERNEL_CAP,
    DENSE_TABLE_MAX_N,
    dense_table_bytes,
)
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator


@pytest.fixture
def kernel():
    return DenseHeadroomKernel([100, 50, 60, 25])


class TestConstruction:
    def test_kernel_names(self):
        assert KERNEL_NAMES == (KERNEL_TREE, KERNEL_DENSE)

    def test_empty_aggregates_rejected(self):
        with pytest.raises(ValidationError):
            DenseHeadroomKernel([])

    def test_negative_aggregate_rejected(self):
        with pytest.raises(ValidationError):
            DenseHeadroomKernel([10, -1])

    def test_cap_refusal_names_bytes(self):
        with pytest.raises(ValidationError) as excinfo:
            DenseHeadroomKernel([5] * 6, max_n=5)
        message = str(excinfo.value)
        assert "N=6" in message
        assert str(dense_table_bytes(6, tables=3)) in message

    def test_cap_never_exceeds_shared_ceiling(self):
        # Even an absurd max_n clamps to the shared dense-table ceiling.
        with pytest.raises(ValidationError):
            DenseHeadroomKernel([1] * (DENSE_TABLE_MAX_N + 1), max_n=999)

    def test_default_cap_is_shared_constant(self):
        assert (
            DenseHeadroomKernel.__init__.__kwdefaults__ is None
        )  # positional-or-keyword default, checked via signature below
        import inspect

        signature = inspect.signature(DenseHeadroomKernel.__init__)
        assert signature.parameters["max_n"].default == DEFAULT_KERNEL_CAP

    def test_table_bytes(self, kernel):
        assert kernel.table_bytes == 3 * 8 * 16


class TestQueries:
    def test_fresh_headroom_is_min_aggregate_chain(self, kernel):
        # H[{1}] = min over supersets of A<S> - 0; the singleton itself
        # has the smallest RHS in its cone, so headroom = A[1].
        assert kernel.headroom(0b0001) == 100
        assert kernel.headroom(0b1000) == 25

    def test_headroom_floors_at_zero(self, kernel):
        kernel.insert(0b1000, 30)
        assert kernel.headroom(0b1000) == 0
        assert not kernel.is_valid()

    def test_headroom_many_matches_scalar(self, kernel):
        kernel.insert(0b0011, 40)
        masks = list(range(1, 16))
        assert kernel.headroom_many(masks) == [
            kernel.headroom(mask) for mask in masks
        ]

    def test_headroom_many_empty(self, kernel):
        assert kernel.headroom_many([]) == []

    def test_headroom_many_rejects_out_of_range(self, kernel):
        with pytest.raises(ValidationError):
            kernel.headroom_many([1, 16])
        with pytest.raises(ValidationError):
            kernel.headroom_many([0])

    def test_mask_zero_rejected(self, kernel):
        with pytest.raises(ValidationError):
            kernel.headroom(0)
        with pytest.raises(ValidationError):
            kernel.insert(0, 1)

    def test_negative_count_rejected(self, kernel):
        with pytest.raises(ValidationError):
            kernel.insert(0b0001, -1)

    def test_lhs_rhs_accessors(self, kernel):
        kernel.insert(0b0011, 7)
        assert kernel.lhs(0b0011) == 7
        assert kernel.lhs(0b0111) == 7  # superset sums include the record
        assert kernel.lhs(0b0001) == 0
        assert kernel.rhs(0b0011) == 150


class TestUpdates:
    def test_insert_returns_cone_size(self, kernel):
        assert kernel.insert(0b0001, 1) == 8  # 2^(4-1)
        assert kernel.insert(0b1111, 1) == 1
        assert kernel.masks_touched_total == 9
        assert kernel.last_update_touched == 1
        assert kernel.records_inserted == 2

    def test_invariants_hold_under_interleaving(self, kernel):
        for mask, count in [(0b0011, 30), (0b0100, 5), (0b1010, 9),
                            (0b0001, 60), (0b1111, 2), (0b0110, 11)]:
            kernel.insert(mask, count)
            kernel.check_invariants()

    def test_violations_match_tree_validator(self):
        aggregates = [30, 20, 10]
        kernel = DenseHeadroomKernel(aggregates)
        tree = ValidationTree()
        for members, count in [((1,), 25), ((2, 3), 32), ((1, 2, 3), 5)]:
            mask = 0
            for member in members:
                mask |= 1 << (member - 1)
            kernel.insert(mask, count)
            tree.insert_set(members, count)
        report = TreeValidator(aggregates).validate(tree)
        assert not kernel.is_valid()
        assert kernel.violations() == sorted(
            report.violations, key=lambda violation: violation.mask
        )

    def test_validate_reports_real_work(self, kernel):
        violations, examined = kernel.validate()
        assert violations == [] and examined == 4  # N_k probes
        kernel.insert(0b1000, 999)
        violations, examined = kernel.validate()
        assert violations and examined == 4 + 15  # probes + full sweep

    def test_headroom_matches_tree_after_stream(self):
        aggregates = [80, 40, 60, 30, 50]
        kernel = DenseHeadroomKernel(aggregates)
        tree = ValidationTree()
        stream = [((1, 2), 12), ((3,), 50), ((4, 5), 8), ((2, 3, 4), 6),
                  ((1,), 41), ((5,), 17), ((1, 2, 3, 4, 5), 3)]
        for members, count in stream:
            mask = 0
            for member in members:
                mask |= 1 << (member - 1)
            kernel.insert(mask, count)
            tree.insert_set(members, count)
            for probe in range(1, 32):
                assert kernel.headroom(probe) == tree_headroom(
                    tree, aggregates, probe
                ), f"mask {probe:#b} after {members}"
