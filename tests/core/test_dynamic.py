"""Unit + property tests for dynamic group maintenance (Section 5.A)."""

import pytest

from repro.errors import GroupingError
from repro.core.dynamic import DynamicGrouper
from repro.core.grouping import form_groups
from repro.core.overlap import OverlapGraph
from repro.geometry.box import Box
from repro.geometry.interval import Interval
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import figure2_pool


def box2(x, y):
    return Box([Interval(*x), Interval(*y)])


class TestFigure2:
    def test_incremental_matches_batch(self):
        pool = figure2_pool()
        grouper = DynamicGrouper.from_pool(pool)
        batch = form_groups(OverlapGraph.from_pool(pool))
        assert grouper.structure() == batch

    def test_group_count(self):
        grouper = DynamicGrouper.from_pool(figure2_pool())
        assert grouper.group_count == 2
        assert grouper.n == 5

    def test_same_group_queries(self):
        grouper = DynamicGrouper.from_pool(figure2_pool())
        assert grouper.same_group(1, 4)      # linked through 2
        assert not grouper.same_group(1, 3)

    def test_group_of(self):
        grouper = DynamicGrouper.from_pool(figure2_pool())
        assert grouper.group_of(1) == grouper.group_of(4) == 0
        assert grouper.group_of(5) == 1
        with pytest.raises(GroupingError):
            grouper.group_of(6)


class TestPaperTrichotomy:
    """Section 5.A: adding L_D^6 keeps/raises/lowers the group count."""

    @pytest.fixture
    def grouper(self):
        return DynamicGrouper.from_pool(figure2_pool())

    def test_same_when_connected_to_one_group(self, grouper):
        # Overlaps only L_D^1 (group 1).
        new_box = box2((1, 3), (7, 9))
        assert grouper.classify_addition(new_box) == "same"
        _, count = grouper.add(new_box)
        assert count == 2

    def test_increase_when_isolated(self, grouper):
        new_box = box2((100, 110), (100, 110))
        assert grouper.classify_addition(new_box) == "increase"
        _, count = grouper.add(new_box)
        assert count == 3

    def test_decrease_when_bridging(self, grouper):
        # Spans both groups: overlaps L_D^2 (x 3..7) and L_D^3 (x 13..17).
        new_box = box2((3, 17), (4, 10))
        assert grouper.classify_addition(new_box) == "decrease"
        _, count = grouper.add(new_box)
        assert count == 1

    def test_classify_does_not_mutate(self, grouper):
        grouper.classify_addition(box2((100, 110), (100, 110)))
        assert grouper.n == 5
        assert grouper.group_count == 2


class TestAgainstBatchOnWorkloads:
    @pytest.mark.parametrize("seed", range(6))
    def test_incremental_equals_batch(self, seed):
        workload = WorkloadGenerator(
            WorkloadConfig(n_licenses=15, seed=seed, n_records=0)
        ).generate()
        grouper = DynamicGrouper()
        for lic in workload.pool:
            grouper.add(lic)
        batch = form_groups(OverlapGraph.from_pool(workload.pool))
        assert grouper.structure() == batch

    def test_prefix_consistency(self):
        """After every single addition the partition matches a batch run
        over the licenses added so far."""
        workload = WorkloadGenerator(
            WorkloadConfig(n_licenses=10, seed=3, n_records=0)
        ).generate()
        grouper = DynamicGrouper()
        boxes = []
        for lic in workload.pool:
            grouper.add(lic)
            boxes.append(lic.box)
            batch = form_groups(OverlapGraph.from_boxes(boxes))
            assert grouper.structure() == batch


class TestValidationOnDynamicStructure:
    def test_structure_feeds_grouped_pipeline(self):
        """A DynamicGrouper snapshot drives division/remap like Algorithm 3
        output does."""
        from repro.core.grouped_tree import GroupedValidationTree
        from repro.validation.tree import ValidationTree
        from repro.workloads.scenarios import example1, example1_log

        pool = example1().pool
        grouper = DynamicGrouper.from_pool(pool)
        tree = ValidationTree.from_log(example1_log())
        grouped = GroupedValidationTree.from_tree(
            tree, pool.aggregate_array(), grouper.structure()
        )
        report = grouped.validate()
        assert report.is_valid
        assert report.equations_checked == 10


class TestErrors:
    def test_dimension_mismatch(self):
        grouper = DynamicGrouper()
        grouper.add(box2((0, 1), (0, 1)))
        with pytest.raises(GroupingError):
            grouper.add(Box([Interval(0, 1)]))

    def test_structure_of_empty(self):
        with pytest.raises(GroupingError):
            DynamicGrouper().structure()
