"""Property tests: dense kernel and tree walk are byte-identical.

The headline guarantee of the dense headroom kernel is that switching
``kernel="tree"`` to ``kernel="dense"`` changes *only* the cost model:
every headroom value, every verdict, and every violation triple must be
identical, including under interleaved inserts and revalidation cache
hits.  Hypothesis drives random groups (``N_k <= 12``) and random
record streams through both engines side by side.
"""

from hypothesis import given, settings, strategies as st

from repro.core.grouping import GroupStructure
from repro.core.incremental import GroupSlice
from repro.core.kernel import KERNEL_DENSE, KERNEL_TREE, DenseHeadroomKernel
from repro.validation.capacity import headroom as tree_headroom
from repro.validation.tree import ValidationTree


@st.composite
def group_scenarios(draw):
    """One group's universe, aggregates, and a record/probe stream."""
    n = draw(st.integers(min_value=1, max_value=12))
    aggregates = [draw(st.integers(0, 300)) for _ in range(n)]
    steps = draw(
        st.lists(
            st.tuples(
                st.sets(st.integers(1, n), min_size=1),
                st.integers(0, 200),
                st.booleans(),  # revalidate after this insert?
            ),
            max_size=20,
        )
    )
    probes = draw(
        st.lists(st.sets(st.integers(1, n), min_size=1), max_size=8)
    )
    return n, aggregates, steps, probes


def _mask(members):
    mask = 0
    for member in members:
        mask |= 1 << (member - 1)
    return mask


class TestKernelTreeParity:
    @settings(max_examples=120, deadline=None)
    @given(group_scenarios())
    def test_headroom_and_invariants_match_tree(self, scenario):
        """Raw kernel vs raw tree: identical headroom on every probe,
        resident tables never drift from their definitions."""
        n, aggregates, steps, probes = scenario
        kernel = DenseHeadroomKernel(aggregates)
        tree = ValidationTree()
        for members, count, _ in steps:
            kernel.insert(_mask(members), count)
            tree.insert_set(tuple(sorted(members)), count)
            for probe in probes:
                assert kernel.headroom(_mask(probe)) == tree_headroom(
                    tree, aggregates, _mask(probe)
                )
        kernel.check_invariants()

    @settings(max_examples=120, deadline=None)
    @given(group_scenarios())
    def test_slices_byte_identical(self, scenario):
        """GroupSlice parity: verdicts, violation (mask, lhs, rhs)
        triples, and headroom values agree between the engines under
        interleaved inserts and cache-hit revalidations."""
        n, aggregates, steps, probes = scenario
        structure = GroupStructure((frozenset(range(1, n + 1)),), n)
        dense = GroupSlice(structure, aggregates, 0, kernel=KERNEL_DENSE)
        tree = GroupSlice(structure, aggregates, 0, kernel=KERNEL_TREE)
        assert dense.kernel_name == KERNEL_DENSE
        assert not dense.kernel_fallback
        for members, count, check in steps:
            dense.insert(members, count)
            tree.insert(members, count)
            for probe in probes:
                assert dense.headroom(probe) == tree.headroom(probe)
            if check:
                dense_report, _ = dense.revalidate()
                tree_report, _ = tree.revalidate()
                assert dense_report.is_valid == tree_report.is_valid
                assert sorted(
                    (v.mask, v.lhs, v.rhs) for v in dense_report.violations
                ) == sorted(
                    (v.mask, v.lhs, v.rhs) for v in tree_report.violations
                )
                # Cache hit: a second revalidate does no work on either
                # engine and reproduces the same report.
                dense_again, dense_cost = dense.revalidate()
                tree_again, tree_cost = tree.revalidate()
                assert dense_cost == 0 and tree_cost == 0
                assert dense_again.violations == dense_report.violations
                assert tree_again.violations == tree_report.violations

    @settings(max_examples=60, deadline=None)
    @given(group_scenarios())
    def test_batched_headroom_matches_sequential(self, scenario):
        """headroom_batch answers exactly like one-at-a-time headroom."""
        n, aggregates, steps, probes = scenario
        structure = GroupStructure((frozenset(range(1, n + 1)),), n)
        dense = GroupSlice(structure, aggregates, 0, kernel=KERNEL_DENSE)
        for members, count, _ in steps:
            dense.insert(members, count)
        if probes:
            assert dense.headroom_batch(probes) == [
                dense.headroom(probe) for probe in probes
            ]
