"""Unit tests for validation-tree division (Algorithm 4 / Figure 4)."""

import pytest

from repro.errors import GroupingError
from repro.core.division import divide_tree, verify_partition
from repro.core.grouping import GroupStructure
from repro.validation.tree import ValidationTree
from repro.workloads.scenarios import example1_log

FIG2_STRUCTURE = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)


@pytest.fixture
def table2_tree():
    return ValidationTree.from_log(example1_log())


class TestFigure4:
    """Division of the Figure 1 tree into the two trees of Figure 4."""

    def test_produces_one_tree_per_group(self, table2_tree):
        parts = divide_tree(table2_tree, FIG2_STRUCTURE)
        assert len(parts) == 2

    def test_group1_tree_contents(self, table2_tree):
        part = divide_tree(table2_tree, FIG2_STRUCTURE)[0]
        # Tree 1 holds sets {1,2}, {2}, {1,2,4} (still global indexes).
        assert part.counts_by_mask() == {0b00011: 840, 0b00010: 400, 0b01011: 30}

    def test_group2_tree_contents(self, table2_tree):
        part = divide_tree(table2_tree, FIG2_STRUCTURE)[1]
        # Tree 2 holds sets {3,5} and {5}.
        assert part.counts_by_mask() == {0b10100: 800, 0b10000: 20}

    def test_nodes_are_shared_not_copied(self, table2_tree):
        original_children = list(table2_tree.root.children)
        parts = divide_tree(table2_tree, FIG2_STRUCTURE)
        divided_children = [
            child for part in parts for child in part.root.children
        ]
        # Same node objects, re-parented (the Figure 10 storage claim).
        assert {id(c) for c in divided_children} == {id(c) for c in original_children}

    def test_node_counts_preserved(self, table2_tree):
        before = table2_tree.node_count()
        parts = divide_tree(table2_tree, FIG2_STRUCTURE)
        assert sum(part.node_count() for part in parts) == before

    def test_child_order_preserved(self, table2_tree):
        parts = divide_tree(table2_tree, FIG2_STRUCTURE)
        assert [c.index for c in parts[0].root.children] == [1, 2]
        assert [c.index for c in parts[1].root.children] == [3, 5]

    def test_empty_group_yields_empty_tree(self):
        tree = ValidationTree()
        tree.insert_set((1,), 5)
        structure = GroupStructure((frozenset({1}), frozenset({2})), 2)
        parts = divide_tree(tree, structure)
        assert parts[0].node_count() == 1
        assert parts[1].node_count() == 0

    def test_out_of_structure_index_rejected(self):
        tree = ValidationTree()
        tree.insert_set((7,), 5)
        with pytest.raises(GroupingError):
            divide_tree(tree, FIG2_STRUCTURE)


class TestVerifyPartition:
    def test_table2_tree_satisfies_corollary(self, table2_tree):
        # Instance matching can never produce a cross-group set, so the
        # Table 2 tree partitions cleanly (Corollary 1.1).
        verify_partition(table2_tree, FIG2_STRUCTURE)

    def test_cross_group_branch_detected(self):
        tree = ValidationTree()
        tree.insert_set((1, 3), 5)  # {1, 3} spans both groups
        with pytest.raises(GroupingError, match="mixes groups"):
            verify_partition(tree, FIG2_STRUCTURE)

    def test_out_of_range_index_detected(self):
        tree = ValidationTree()
        tree.insert_set((9,), 5)
        with pytest.raises(GroupingError):
            verify_partition(tree, FIG2_STRUCTURE)

    def test_empty_tree_ok(self):
        verify_partition(ValidationTree(), FIG2_STRUCTURE)
