"""Unit tests for group formation (Algorithm 3)."""

import pytest

from repro.errors import GroupingError
from repro.core.grouping import (
    GroupStructure,
    form_groups,
    form_groups_networkx,
    form_groups_paper_literal,
)
from repro.core.overlap import OverlapGraph
from repro.workloads.scenarios import figure2_pool


@pytest.fixture
def fig2_structure():
    return form_groups(OverlapGraph.from_pool(figure2_pool()))


class TestFigure2Groups:
    def test_two_groups(self, fig2_structure):
        # Paper: group 1 = {L1, L2, L4}, group 2 = {L3, L5}.
        assert fig2_structure.count == 2
        assert fig2_structure.groups == (frozenset({1, 2, 4}), frozenset({3, 5}))

    def test_group_sizes(self, fig2_structure):
        assert fig2_structure.sizes == (3, 2)

    def test_membership_matrix_matches_paper(self, fig2_structure):
        # Algorithm 3's Group array: rows (1,1,0,1,0) and (0,0,1,0,1),
        # remaining rows all zero.
        matrix = fig2_structure.membership_matrix()
        assert matrix[0] == [1, 1, 0, 1, 0]
        assert matrix[1] == [0, 0, 1, 0, 1]
        assert matrix[2] == [0, 0, 0, 0, 0]
        assert matrix[3] == [0, 0, 0, 0, 0]
        assert matrix[4] == [0, 0, 0, 0, 0]

    def test_group_of(self, fig2_structure):
        assert fig2_structure.group_of(1) == 0
        assert fig2_structure.group_of(4) == 0
        assert fig2_structure.group_of(5) == 1
        with pytest.raises(GroupingError):
            fig2_structure.group_of(6)

    def test_masks(self, fig2_structure):
        assert fig2_structure.masks() == (0b01011, 0b10100)

    def test_sorted_members(self, fig2_structure):
        assert fig2_structure.sorted_members(0) == (1, 2, 4)
        assert fig2_structure.sorted_members(1) == (3, 5)

    def test_group_lookup(self, fig2_structure):
        assert fig2_structure.group_lookup() == {1: 0, 2: 0, 4: 0, 3: 1, 5: 1}


class TestDFSCorrectness:
    def test_indirect_connection_through_higher_index(self):
        # Edges {1-3, 2-3}: node 2 is reachable from 1 only through the
        # higher-indexed 3.  The paper's j>i scan would miss it; ours must
        # not (see repro.core.grouping module docstring).
        adjacency = [
            [0, 0, 1],
            [0, 0, 1],
            [1, 1, 0],
        ]
        structure = form_groups(OverlapGraph(adjacency))
        assert structure.count == 1
        assert structure.groups == (frozenset({1, 2, 3}),)

    def test_all_isolated(self):
        structure = form_groups(OverlapGraph([[0] * 4 for _ in range(4)]))
        assert structure.count == 4
        assert structure.sizes == (1, 1, 1, 1)

    def test_fully_connected(self):
        adjacency = [[int(i != j) for j in range(4)] for i in range(4)]
        structure = form_groups(OverlapGraph(adjacency))
        assert structure.count == 1

    def test_chain(self):
        # Path 1-2-3-4-5: one group despite no direct 1-5 edge.
        n = 5
        adjacency = [[0] * n for _ in range(n)]
        for i in range(n - 1):
            adjacency[i][i + 1] = adjacency[i + 1][i] = 1
        structure = form_groups(OverlapGraph(adjacency))
        assert structure.count == 1

    def test_groups_discovered_in_ascending_order(self):
        # Components {2,4} and {1,3}: group 1 must be the one holding
        # license 1 (discovery order of the paper's outer loop).
        adjacency = [
            [0, 0, 1, 0],
            [0, 0, 0, 1],
            [1, 0, 0, 0],
            [0, 1, 0, 0],
        ]
        structure = form_groups(OverlapGraph(adjacency))
        assert structure.groups == (frozenset({1, 3}), frozenset({2, 4}))


class TestPaperLiteralAlgorithm:
    """The pseudocode of Algorithm 3 as printed vs the intended semantics."""

    BACKWARD_EDGE_CASE = [
        # Edges {1-3, 2-3}: 2 is reachable from 1 only via the
        # higher-indexed 3, which the printed j>i scan never revisits.
        [0, 0, 1],
        [0, 0, 1],
        [1, 1, 0],
    ]

    def test_literal_splits_a_connected_component(self):
        graph = OverlapGraph(self.BACKWARD_EDGE_CASE)
        literal = form_groups_paper_literal(graph)
        assert literal.groups == (frozenset({1, 3}), frozenset({2}))

    def test_fixed_version_keeps_it_connected(self):
        graph = OverlapGraph(self.BACKWARD_EDGE_CASE)
        assert form_groups(graph).groups == (frozenset({1, 2, 3}),)

    def test_both_agree_on_paper_figures(self):
        # On the paper's own Figure 2 graph the printed scan happens to
        # be correct, which is presumably why the bug went unnoticed.
        graph = OverlapGraph.from_pool(figure2_pool())
        assert form_groups_paper_literal(graph) == form_groups(graph)

    def test_literal_never_merges_separate_components(self):
        # The literal scan can only OVER-split (it follows real edges),
        # never merge: each of its groups sits inside a true component.
        graph = OverlapGraph(self.BACKWARD_EDGE_CASE)
        true_lookup = form_groups(graph).group_lookup()
        for group in form_groups_paper_literal(graph).groups:
            assert len({true_lookup[v] for v in group}) == 1


class TestNetworkxCrossCheck:
    @pytest.mark.parametrize(
        "adjacency",
        [
            [[0]],
            [[0, 1], [1, 0]],
            [[0, 0, 1], [0, 0, 1], [1, 1, 0]],
            [[0, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 0]],
        ],
    )
    def test_agrees_with_networkx(self, adjacency):
        graph = OverlapGraph(adjacency)
        assert form_groups(graph) == form_groups_networkx(graph)

    def test_agrees_on_figure2(self):
        graph = OverlapGraph.from_pool(figure2_pool())
        assert form_groups(graph) == form_groups_networkx(graph)


class TestGroupStructureValidation:
    def test_empty_group_rejected(self):
        with pytest.raises(GroupingError):
            GroupStructure((frozenset(), frozenset({1})), 1)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(GroupingError):
            GroupStructure((frozenset({1, 2}), frozenset({2, 3})), 3)

    def test_non_covering_partition_rejected(self):
        with pytest.raises(GroupingError):
            GroupStructure((frozenset({1}),), 2)

    def test_out_of_range_member_rejected(self):
        with pytest.raises(GroupingError):
            GroupStructure((frozenset({1, 5}),), 2)
