"""Unit tests for the grouped-zeta validator (grouping x dense DP)."""

import pytest

from repro.errors import GroupingError, ValidationError
from repro.core.grouped_zeta import GroupedZetaValidator
from repro.core.validator import GroupedValidator
from repro.logstore.log import ValidationLog
from repro.workloads.adversarial import blocks_pool, disjoint_pool
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import example1, example1_log


class TestBasics:
    def test_example1_valid(self):
        validator = GroupedZetaValidator.from_pool(example1().pool)
        report = validator.validate(example1_log())
        assert report.is_valid
        assert report.engine == "grouped-zeta"
        assert report.equations_checked == 10

    def test_structure_matches_tree_variant(self):
        pool = example1().pool
        zeta = GroupedZetaValidator.from_pool(pool)
        tree = GroupedValidator.from_pool(pool)
        assert zeta.structure == tree.structure

    def test_violation_translated_to_global(self):
        log = ValidationLog()
        log.record({3, 5}, 5200)  # A_3 + A_5 = 5000
        report = GroupedZetaValidator.from_pool(example1().pool).validate(log)
        assert not report.is_valid
        assert frozenset({3, 5}) in report.violated_sets

    def test_cross_group_counts_rejected(self):
        validator = GroupedZetaValidator.from_pool(example1().pool)
        with pytest.raises(GroupingError):
            validator.validate_counts({frozenset({1, 3}): 5})

    def test_construction_errors(self):
        pool = example1().pool
        with pytest.raises(ValidationError):
            GroupedZetaValidator(pool.boxes(), [1])
        with pytest.raises(ValidationError):
            GroupedZetaValidator([], [])


class TestAgainstGroupedTree:
    @pytest.mark.parametrize("seed", range(4))
    def test_same_violations_on_workloads(self, seed):
        workload = WorkloadGenerator(
            WorkloadConfig(
                n_licenses=12,
                seed=seed,
                n_records=250,
                aggregate_range=(500, 2000),
            )
        ).generate()
        zeta = GroupedZetaValidator.from_pool(workload.pool).validate(workload.log)
        tree = GroupedValidator.from_pool(workload.pool).validate(workload.log)
        assert set(zeta.violations) == set(tree.violations)
        assert zeta.equations_checked == tree.equations_checked


class TestBeyondDenseCap:
    def test_many_licenses_many_groups(self):
        """N = 40 is far beyond the ungrouped zeta cap (2^40 table), but
        ten groups of four need only ten 16-entry tables."""
        pool = blocks_pool([4] * 10, aggregate=100)
        validator = GroupedZetaValidator.from_pool(pool)
        log = ValidationLog()
        log.record({1, 2}, 150)
        log.record({5}, 30)
        report = validator.validate(log)
        assert report.equations_checked == 10 * 15
        assert report.is_valid  # 150 <= 100 + 100 via {1, 2}

    def test_disjoint_sixty(self):
        pool = disjoint_pool(60, aggregate=10)
        validator = GroupedZetaValidator.from_pool(pool)
        log = ValidationLog()
        log.record({60}, 11)
        report = validator.validate(log)
        assert not report.is_valid
        assert report.violated_sets == [frozenset({60})]
        assert report.equations_checked == 60
