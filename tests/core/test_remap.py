"""Unit tests for index remapping (Algorithm 5 / Figure 5)."""

import pytest

from repro.errors import GroupingError
from repro.core.division import divide_tree
from repro.core.grouping import GroupStructure
from repro.core.remap import (
    local_to_global,
    position_array,
    remap_tree_inplace,
    remapped_aggregates,
)
from repro.validation.tree import ValidationTree
from repro.workloads.scenarios import example1_log

FIG2_STRUCTURE = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)
EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


class TestPositionArray:
    def test_paper_position2(self):
        # Algorithm 5's worked example: position_2 = (0,0,1,0,2), i.e.
        # global 3 -> local 1, global 5 -> local 2.
        assert position_array(FIG2_STRUCTURE, 1) == {3: 1, 5: 2}

    def test_position1(self):
        assert position_array(FIG2_STRUCTURE, 0) == {1: 1, 2: 2, 4: 3}

    def test_local_to_global_inverse(self):
        for group_id in (0, 1):
            position = position_array(FIG2_STRUCTURE, group_id)
            inverse = local_to_global(FIG2_STRUCTURE, group_id)
            for global_index, local_index in position.items():
                assert inverse[local_index - 1] == global_index


class TestRemappedAggregates:
    def test_group1(self):
        assert remapped_aggregates(EXAMPLE1_AGGREGATES, FIG2_STRUCTURE, 0) == [
            2000,
            1000,
            4000,
        ]

    def test_group2(self):
        assert remapped_aggregates(EXAMPLE1_AGGREGATES, FIG2_STRUCTURE, 1) == [
            3000,
            2000,
        ]

    def test_short_aggregate_array_rejected(self):
        with pytest.raises(GroupingError):
            remapped_aggregates([1, 2, 3], FIG2_STRUCTURE, 1)


class TestRemapTree:
    def test_figure5_group2(self):
        # Figure 5: indexes 3 and 5 of the second tree become 1 and 2.
        tree = ValidationTree.from_log(example1_log())
        part = divide_tree(tree, FIG2_STRUCTURE)[1]
        remap_tree_inplace(part, FIG2_STRUCTURE, 1)
        assert part.counts_by_mask() == {0b11: 800, 0b10: 20}

    def test_figure5_group1(self):
        # Group 1: 1->1, 2->2, 4->3; {1,2,4} becomes local {1,2,3}.
        tree = ValidationTree.from_log(example1_log())
        part = divide_tree(tree, FIG2_STRUCTURE)[0]
        remap_tree_inplace(part, FIG2_STRUCTURE, 0)
        assert part.counts_by_mask() == {0b011: 840, 0b010: 400, 0b111: 30}

    def test_child_order_still_ascending(self):
        tree = ValidationTree.from_log(example1_log())
        part = divide_tree(tree, FIG2_STRUCTURE)[1]
        remap_tree_inplace(part, FIG2_STRUCTURE, 1)
        for node in [part.root, *part.iter_nodes()]:
            indexes = [child.index for child in node.children]
            assert indexes == sorted(indexes)

    def test_local_indexes_within_group_size(self):
        tree = ValidationTree.from_log(example1_log())
        for group_id, part in enumerate(divide_tree(tree, FIG2_STRUCTURE)):
            remap_tree_inplace(part, FIG2_STRUCTURE, group_id)
            size = FIG2_STRUCTURE.sizes[group_id]
            for node in part.iter_nodes():
                assert 1 <= node.index <= size

    def test_wrong_group_rejected(self):
        tree = ValidationTree.from_log(example1_log())
        parts = divide_tree(tree, FIG2_STRUCTURE)
        with pytest.raises(GroupingError):
            remap_tree_inplace(parts[0], FIG2_STRUCTURE, 1)  # group-2 map
