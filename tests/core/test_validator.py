"""Unit tests for the end-to-end GroupedValidator."""

import pytest

from repro.errors import GroupingError, ValidationError
from repro.core.validator import GroupedValidator
from repro.logstore.log import ValidationLog
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.workloads.scenarios import example1, example1_log


@pytest.fixture
def validator():
    return GroupedValidator.from_pool(example1().pool)


class TestStructure:
    def test_groups_match_paper(self, validator):
        assert validator.structure.groups == (
            frozenset({1, 2, 4}),
            frozenset({3, 5}),
        )

    def test_equation_counts(self, validator):
        assert validator.equations_baseline == 31
        assert validator.equations_required == 10

    def test_theoretical_gain(self, validator):
        assert validator.theoretical_gain == pytest.approx(3.1)

    def test_n_and_aggregates(self, validator):
        assert validator.n == 5
        assert validator.aggregates == [2000, 1000, 3000, 4000, 2000]

    def test_mismatched_inputs_rejected(self):
        scenario = example1()
        with pytest.raises(ValidationError):
            GroupedValidator(scenario.pool.boxes(), [1, 2, 3])

    def test_empty_pool_rejected(self):
        with pytest.raises(ValidationError):
            GroupedValidator([], [])


class TestValidation:
    def test_example1_log_valid(self, validator):
        report = validator.validate(example1_log())
        assert report.is_valid
        assert report.equations_checked == 10

    def test_agrees_with_ungrouped_validator(self, validator):
        # Theorem 2 in action: same verdict, fewer equations.
        log = example1_log()
        grouped = validator.validate(log)
        baseline = TreeValidator(validator.aggregates).validate(
            ValidationTree.from_log(log)
        )
        assert grouped.is_valid == baseline.is_valid

    def test_detects_group_local_violation(self, validator):
        log = ValidationLog()
        log.record({2}, 1500)  # A_2 = 1000
        report = validator.validate(log)
        assert not report.is_valid
        assert frozenset({2}) in report.violated_sets

    def test_build_exposes_grouped_tree(self, validator):
        grouped = validator.build(example1_log())
        assert grouped.equations_required == 10


class TestExplain:
    def test_explain_narrates_the_analysis(self, validator):
        text = validator.explain()
        assert "5 redistribution licenses" in text
        assert "3 edge(s)" in text
        assert "{LD1, LD2, LD4}" in text
        assert "{LD3, LD5}" in text
        assert "2^5 - 1 = 31" in text
        assert "(2^3 - 1) + (2^2 - 1) = 10" in text
        assert "3.1x" in text


class TestHeadroom:
    def test_headroom_for_lu2_scenario(self, validator):
        # After Table 2, a {2}-only license can carry at most 600 more.
        assert validator.headroom(example1_log(), {2}) == 600

    def test_headroom_for_group2(self, validator):
        # {3,5}: C<{3,5}> = 820, A = 5000 -> 4180.
        assert validator.headroom(example1_log(), {3, 5}) == 4180

    def test_cross_group_set_rejected(self, validator):
        with pytest.raises(GroupingError):
            validator.headroom(example1_log(), {1, 3})

    def test_empty_set_rejected(self, validator):
        with pytest.raises(ValidationError):
            validator.headroom(example1_log(), set())

    def test_headroom_shrinks_after_issuance(self, validator):
        log = example1_log()
        before = validator.headroom(log, {2})
        log.record({2}, 100)
        after = validator.headroom(log, {2})
        assert after == before - 100
