"""Unit + property tests for the union-find substrate."""

from hypothesis import given, strategies as st

from repro.core.unionfind import UnionFind


class TestBasics:
    def test_singletons(self):
        dsu = UnionFind()
        assert dsu.add("a")
        assert not dsu.add("a")  # idempotent
        assert dsu.component_count == 1
        assert len(dsu) == 1

    def test_find_creates_lazily(self):
        dsu = UnionFind()
        assert dsu.find(1) == 1
        assert 1 in dsu

    def test_union_merges(self):
        dsu = UnionFind()
        assert dsu.union(1, 2)
        assert dsu.connected(1, 2)
        assert dsu.component_count == 1

    def test_union_idempotent(self):
        dsu = UnionFind()
        dsu.union(1, 2)
        assert not dsu.union(2, 1)
        assert dsu.component_count == 1

    def test_transitivity(self):
        dsu = UnionFind()
        dsu.union(1, 2)
        dsu.union(2, 3)
        assert dsu.connected(1, 3)

    def test_component_size(self):
        dsu = UnionFind()
        dsu.union(1, 2)
        dsu.union(2, 3)
        dsu.add(4)
        assert dsu.component_size(1) == 3
        assert dsu.component_size(4) == 1

    def test_components_enumeration(self):
        dsu = UnionFind()
        dsu.union(1, 3)
        dsu.union(2, 4)
        dsu.add(5)
        components = dsu.sorted_components()
        assert components == [
            frozenset({1, 3}),
            frozenset({2, 4}),
            frozenset({5}),
        ]


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=20),
                st.integers(min_value=1, max_value=20),
            ),
            max_size=40,
        )
    )
    def test_matches_reference_connectivity(self, edges):
        """Union-find connectivity == transitive closure via networkx."""
        import networkx as nx

        dsu = UnionFind()
        graph = nx.Graph()
        for left, right in edges:
            dsu.union(left, right)
            graph.add_edge(left, right)
        for left, right in edges:
            for other in (left, right):
                assert dsu.connected(left, other) == nx.has_path(
                    graph, left, other
                )
        reference = sorted(
            (frozenset(c) for c in nx.connected_components(graph)), key=min
        )
        # Nodes never unioned appear in dsu only if added; edges cover all.
        assert dsu.sorted_components() == reference

    @given(st.lists(st.integers(min_value=1, max_value=30), max_size=30))
    def test_component_count_invariant(self, elements):
        """#components == #elements - #successful unions."""
        dsu = UnionFind()
        successful = 0
        for position, element in enumerate(elements):
            dsu.add(element)
            if position:
                successful += dsu.union(elements[0], element)
        assert dsu.component_count == len(set(elements)) - successful
