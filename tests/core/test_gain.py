"""Unit + property tests for the Equation 3 performance gain."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GroupingError
from repro.core.gain import (
    equations_with_grouping,
    equations_without_grouping,
    gain_bounds,
    theoretical_gain,
)


class TestEquationCounts:
    def test_without_grouping(self):
        assert equations_without_grouping(5) == 31

    def test_with_grouping(self):
        assert equations_with_grouping([3, 2]) == 10

    def test_single_group_equals_baseline(self):
        assert equations_with_grouping([7]) == equations_without_grouping(7)

    def test_all_singletons(self):
        assert equations_with_grouping([1] * 6) == 6

    def test_invalid_inputs(self):
        with pytest.raises(GroupingError):
            equations_without_grouping(0)
        with pytest.raises(GroupingError):
            equations_with_grouping([])
        with pytest.raises(GroupingError):
            equations_with_grouping([3, 0])


class TestGain:
    def test_paper_worked_example(self):
        # (2^5 - 1) / ((2^3 - 1) + (2^2 - 1)) = 3.1x.
        assert theoretical_gain([3, 2]) == pytest.approx(3.1)

    def test_single_group_gain_is_one(self):
        assert theoretical_gain([8]) == 1.0

    def test_max_gain_for_singletons(self):
        # Paper: G reaches (2^N - 1)/N at g = N.
        assert theoretical_gain([1] * 5) == pytest.approx(31 / 5)

    def test_bounds(self):
        low, high = gain_bounds(5)
        assert low == 1.0
        assert high == pytest.approx(31 / 5)


@st.composite
def partitions(draw):
    """Random partitions of small n into group sizes."""
    n = draw(st.integers(min_value=1, max_value=18))
    sizes = []
    remaining = n
    while remaining:
        size = draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(size)
        remaining -= size
    return sizes


class TestGainProperties:
    @given(partitions())
    def test_gain_within_paper_bounds(self, sizes):
        # "The performance gain always remains greater than or equal to 1"
        # and at most (2^N - 1)/N.
        n = sum(sizes)
        gain = theoretical_gain(sizes)
        low, high = gain_bounds(n)
        assert low <= gain <= high + 1e-12

    @given(partitions())
    def test_grouped_equations_never_exceed_baseline(self, sizes):
        n = sum(sizes)
        assert equations_with_grouping(sizes) <= equations_without_grouping(n)

    @given(partitions())
    def test_splitting_a_group_never_hurts(self, sizes):
        # Refining the partition (splitting any group of size >= 2) strictly
        # reduces the equation count.
        for position, size in enumerate(sizes):
            if size >= 2:
                refined = sizes[:position] + [1, size - 1] + sizes[position + 1:]
                assert equations_with_grouping(refined) < equations_with_grouping(
                    sizes
                )
