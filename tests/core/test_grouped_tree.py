"""Unit tests for the grouped validation structure."""

import pytest

from repro.errors import GroupingError
from repro.core.grouped_tree import GroupedValidationTree
from repro.core.grouping import GroupStructure
from repro.validation.tree import ValidationTree
from repro.workloads.scenarios import example1_log

FIG2_STRUCTURE = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)
EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


def build_grouped(log=None, aggregates=None):
    tree = ValidationTree.from_log(log if log is not None else example1_log())
    return GroupedValidationTree.from_tree(
        tree, aggregates or EXAMPLE1_AGGREGATES, FIG2_STRUCTURE
    )


class TestConstruction:
    def test_from_tree(self):
        grouped = build_grouped()
        assert len(grouped.trees) == 2
        assert grouped.group_aggregates == ((2000, 1000, 4000), (3000, 2000))

    def test_equation_count(self):
        grouped = build_grouped()
        # (2^3 - 1) + (2^2 - 1) = 10 instead of 31.
        assert grouped.equations_required == 10

    def test_theoretical_gain_matches_paper(self):
        grouped = build_grouped()
        assert grouped.theoretical_gain == pytest.approx(31 / 10)

    def test_node_count_preserved(self):
        original = ValidationTree.from_log(example1_log())
        before = original.node_count()
        grouped = GroupedValidationTree.from_tree(
            original, EXAMPLE1_AGGREGATES, FIG2_STRUCTURE
        )
        assert grouped.node_count() == before

    def test_aggregate_length_mismatch_rejected(self):
        tree = ValidationTree.from_log(example1_log())
        with pytest.raises(GroupingError):
            GroupedValidationTree.from_tree(tree, [1, 2, 3], FIG2_STRUCTURE)

    def test_constructor_shape_checks(self):
        with pytest.raises(GroupingError):
            GroupedValidationTree(FIG2_STRUCTURE, [ValidationTree()], [[1, 2, 3]])
        with pytest.raises(GroupingError):
            GroupedValidationTree(
                FIG2_STRUCTURE,
                [ValidationTree(), ValidationTree()],
                [[1, 2, 3], [1]],  # group 2 has 2 licenses
            )


class TestGlobalSubsetSum:
    """Theorem 2 executable: divided trees answer global C<S> queries."""

    def test_matches_original_tree_on_every_mask(self):
        original = ValidationTree.from_log(example1_log())
        reference = {
            mask: original.subset_sum(mask) for mask in range(1, 1 << 5)
        }
        grouped = build_grouped()
        for mask, expected in reference.items():
            assert grouped.subset_sum(mask) == expected

    def test_cross_group_mask_sums_projections(self):
        grouped = build_grouped()
        # {2, 3}: C<{2}> from group 1 plus C<{3}> from group 2.
        assert grouped.subset_sum(0b00110) == 400 + 0
        # Full set: all counts.
        assert grouped.subset_sum(0b11111) == 2090

    def test_empty_mask(self):
        assert build_grouped().subset_sum(0) == 0


class TestValidation:
    def test_example1_valid(self):
        report = build_grouped().validate()
        assert report.is_valid
        assert report.engine == "grouped-tree"
        assert report.equations_checked == 10

    def test_violation_translated_to_global_indexes(self):
        from repro.logstore.log import ValidationLog

        log = ValidationLog()
        log.record({3, 5}, 5200)  # A_3 + A_5 = 5000
        report = build_grouped(log).validate()
        assert not report.is_valid
        assert frozenset({3, 5}) in report.violated_sets

    def test_violation_in_single_global_license(self):
        from repro.logstore.log import ValidationLog

        log = ValidationLog()
        log.record({4}, 4500)  # A_4 = 4000; local index of 4 is 3
        report = build_grouped(log).validate()
        violated = set(report.violated_sets)
        assert frozenset({4}) in violated
        # No phantom violations involving other groups.
        for violation_set in violated:
            assert violation_set <= {1, 2, 4}

    def test_stop_at_first(self):
        from repro.logstore.log import ValidationLog

        log = ValidationLog()
        log.record({1}, 99999)
        log.record({3}, 99999)
        report = build_grouped(log).validate(stop_at_first=True)
        assert len(report.violations) == 1
        assert report.equations_checked < 10
