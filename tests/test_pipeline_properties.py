"""End-to-end property tests: hypothesis drives the full pipeline.

Random pools of interval-box licenses and random usage streams exercise
license construction -> instance matching -> logging -> grouping ->
division/remap -> validation, asserting the global invariants that tie
the whole system together.
"""

from hypothesis import given, settings, strategies as st

from repro.core.grouping import form_groups, form_groups_networkx
from repro.core.overlap import OverlapGraph
from repro.core.validator import GroupedValidator
from repro.geometry.box import Box, common_region
from repro.geometry.interval import Interval
from repro.licenses.license import RedistributionLicense, UsageLicense
from repro.licenses.permission import Permission
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.matching.matcher import BruteForceMatcher
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.naive import ScanValidator
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator


@st.composite
def pipelines(draw):
    """A random pool plus a random stream of usage licenses."""
    dims = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=8))

    def random_box():
        extents = []
        for _ in range(dims):
            low = draw(st.integers(min_value=0, max_value=40))
            length = draw(st.integers(min_value=0, max_value=25))
            extents.append(Interval(low, low + length))
        return Box(extents)

    pool = LicensePool(
        [
            RedistributionLicense(
                license_id=f"LD{i}",
                content_id="K",
                permission=Permission.PLAY,
                box=random_box(),
                aggregate=draw(st.integers(min_value=50, max_value=400)),
            )
            for i in range(1, n + 1)
        ]
    )
    usages = [
        UsageLicense(
            license_id=f"LU{i}",
            content_id="K",
            permission=Permission.PLAY,
            box=random_box(),
            count=draw(st.integers(min_value=1, max_value=60)),
        )
        for i in range(draw(st.integers(min_value=0, max_value=12)))
    ]
    return pool, usages


def build_log(pool, usages):
    matcher = BruteForceMatcher(pool)
    log = ValidationLog()
    for usage in usages:
        matched = matcher.match(usage)
        if matched:
            log.record_issuance(usage, matched)
    return log


@settings(max_examples=80, deadline=None)
@given(pipelines())
def test_grouped_equals_baseline_equals_flow(pipeline):
    pool, usages = pipeline
    log = build_log(pool, usages)
    aggregates = pool.aggregate_array()

    grouped = GroupedValidator.from_pool(pool).validate(log)
    baseline = TreeValidator(aggregates).validate(ValidationTree.from_log(log))
    scan = ScanValidator(aggregates).validate_log(log)
    flow = FlowFeasibilityOracle(aggregates).feasible(log.counts_by_mask())

    assert baseline.violations == scan.violations
    assert grouped.is_valid == baseline.is_valid == flow
    # Grouped checks at most as many equations as the baseline.
    assert grouped.equations_checked <= baseline.equations_checked


@settings(max_examples=80, deadline=None)
@given(pipelines())
def test_logged_sets_respect_geometry(pipeline):
    """Every logged set is a clique with a common region containing the
    usage box -- Theorem 1's precondition, established by matching."""
    pool, usages = pipeline
    matcher = BruteForceMatcher(pool)
    for usage in usages:
        matched = sorted(matcher.match(usage))
        if not matched:
            continue
        region = common_region([pool[i].box for i in matched])
        assert region is not None
        assert region.contains(usage.box)
        # Non-matched licenses genuinely fail containment somewhere.
        for index, lic in pool.enumerate():
            if index not in matched:
                assert not lic.box.contains(usage.box)


@settings(max_examples=80, deadline=None)
@given(pipelines())
def test_group_partition_invariants(pipeline):
    pool, usages = pipeline
    graph = OverlapGraph.from_pool(pool)
    structure = form_groups(graph)
    assert structure == form_groups_networkx(graph)
    # Every overlap edge stays within one group; different groups never
    # overlap (the definition of non-overlapping sets, Section 3.2).
    lookup = structure.group_lookup()
    for i, j in graph.edges():
        assert lookup[i] == lookup[j]
    for i in range(1, len(pool) + 1):
        for j in range(i + 1, len(pool) + 1):
            if lookup[i] != lookup[j]:
                assert not pool[i].box.overlaps(pool[j].box)
    # Logged sets stay within one group (Corollary 1.1).
    log = build_log(pool, usages)
    for license_set in log.counts_by_set():
        assert len({lookup[index] for index in license_set}) == 1


@settings(max_examples=50, deadline=None)
@given(pipelines())
def test_division_preserves_total_counts(pipeline):
    pool, usages = pipeline
    log = build_log(pool, usages)
    validator = GroupedValidator.from_pool(pool)
    grouped = validator.build(log)
    per_group_total = sum(
        tree.subset_sum((1 << size) - 1)
        for tree, size in zip(grouped.trees, validator.structure.sizes)
    )
    assert per_group_total == log.total_count
