"""End-to-end observability: tracing + events through ValidationService.

The acceptance properties of the observability layer:

* tracing must never change a verdict (byte-identical streams on/off);
* the span tree covers the full pipeline -- ``request`` (with ``match``,
  ``queue_wait``, ``admission`` children) and ``drain`` (with
  ``shard_batch`` -> ``revalidate`` children);
* the ``equations_checked`` span attributes are *accounting*, not
  decoration: they sum to exactly the run's ``equations_checked_total``;
* the event journal captures every admission/rejection plus the
  operational transitions (backpressure, cache eviction, epoch change).
"""

import pytest

from repro.obs.events import EventLog
from repro.obs.trace import SamplingConfig, Tracer
from repro.service import ServiceConfig, ValidationService
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    """A deterministic 16-license, 4-group pool plus a 200-request stream."""
    config = WorkloadConfig(
        n_licenses=16,
        seed=3,
        n_records=0,
        target_groups=4,
        aggregate_range=(300, 900),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = tuple(generator.issue_stream(pool, 200))
    return pool, stream


def _signature(outcome):
    return (
        outcome.usage_id,
        outcome.count,
        tuple(outcome.license_set),
        outcome.accepted,
        outcome.rejection_reason,
        outcome.rejection_detail,
    )


def _run(pool, stream, *, tracer=None, events=None, executor="serial"):
    with ValidationService(
        pool,
        ServiceConfig(shards=2, batch_size=16, executor=executor),
        tracer=tracer,
        events=events,
    ) as service:
        outcomes = service.process(stream)
        equations = service.metrics.counter("equations_checked_total").total()
    return outcomes, equations


class TestVerdictsUnchanged:
    def test_tracing_on_off_byte_identical(self, workload):
        pool, stream = workload
        plain, _ = _run(pool, stream)
        traced, _ = _run(
            pool, stream, tracer=Tracer(), events=EventLog()
        )
        assert [_signature(o) for o in traced] == [
            _signature(o) for o in plain
        ]

    def test_sampled_tracing_also_identical(self, workload):
        pool, stream = workload
        plain, _ = _run(pool, stream)
        sampled, _ = _run(
            pool, stream, tracer=Tracer(SamplingConfig(rate=0.25))
        )
        assert [_signature(o) for o in sampled] == [
            _signature(o) for o in plain
        ]


class TestSpanTree:
    def test_pipeline_stages_all_covered(self, workload):
        pool, stream = workload
        tracer = Tracer()
        _run(pool, stream, tracer=tracer)
        records = tracer.records()
        by_name = {}
        for record in records:
            by_name.setdefault(record.name, []).append(record)
        assert set(by_name) >= {
            "request", "match", "queue_wait", "admission",
            "drain", "shard_batch", "revalidate",
        }
        # One request root per stream element, each fully populated.
        assert len(by_name["request"]) == len(stream)
        assert len(by_name["match"]) == len(stream)
        by_id = {r.span_id: r for r in records}
        for name in ("match", "queue_wait", "admission"):
            for span in by_name[name]:
                assert by_id[span.parent_id].name == "request"
        for span in by_name["shard_batch"]:
            assert by_id[span.parent_id].name == "drain"
        for span in by_name["revalidate"]:
            assert by_id[span.parent_id].name == "shard_batch"

    def test_equations_attrs_sum_to_counter(self, workload):
        pool, stream = workload
        tracer = Tracer()
        _, equations_total = _run(pool, stream, tracer=tracer)
        span_sum = sum(
            record.attrs.get("equations_checked", 0)
            for record in tracer.records()
            if record.name == "revalidate"
        )
        assert equations_total > 0
        assert span_sum == equations_total

    def test_request_spans_carry_outcome_attrs(self, workload):
        pool, stream = workload
        tracer = Tracer()
        outcomes, _ = _run(pool, stream, tracer=tracer)
        requests = [
            r for r in tracer.records() if r.name == "request"
        ]
        by_seq = {r.attrs["seq"]: r for r in requests}
        for seq, outcome in enumerate(outcomes):
            attrs = by_seq[seq].attrs
            assert attrs["usage_id"] == outcome.usage_id
            if outcome.accepted:
                assert attrs["outcome"] == "accepted"
            else:
                assert attrs["outcome"] == "rejected"
                assert attrs["reason"] == outcome.rejection_reason

    def test_thread_executor_produces_same_tree_shape(self, workload):
        pool, stream = workload
        serial_tracer, thread_tracer = Tracer(), Tracer()
        _run(pool, stream, tracer=serial_tracer)
        _run(pool, stream, tracer=thread_tracer, executor="thread")

        def shape(tracer):
            names = {}
            for record in tracer.records():
                names[record.name] = names.get(record.name, 0) + 1
            return names

        assert shape(serial_tracer) == shape(thread_tracer)

    def test_sampling_halves_request_traces(self, workload):
        pool, stream = workload
        tracer = Tracer(SamplingConfig(rate=0.5))
        _run(pool, stream, tracer=tracer)
        requests = [
            r for r in tracer.records() if r.name == "request"
        ]
        # request and drain roots interleave in the root counter, so the
        # request share is close to half, not exactly half.
        assert 0 < len(requests) < len(stream)
        assert abs(tracer.roots_started - 2 * tracer.roots_sampled) <= 1


class TestEventJournal:
    def test_every_request_gets_admission_or_rejection(self, workload):
        pool, stream = workload
        events = EventLog()
        outcomes, _ = _run(pool, stream, events=events)
        journal = events.tail()
        verdicts = [
            event for event in journal
            if event["kind"] in ("admission", "rejection")
        ]
        assert len(verdicts) == len(stream)
        accepted = sum(e["kind"] == "admission" for e in verdicts)
        assert accepted == sum(o.accepted for o in outcomes)
        for event in verdicts:
            if event["kind"] == "rejection":
                assert event["reason"] in ("instance", "equation", "capacity")

    def test_cache_eviction_event_emitted(self, workload):
        pool, stream = workload
        events = EventLog()
        with ValidationService(
            pool,
            ServiceConfig(shards=1, batch_size=8, match_cache_size=2),
            events=events,
        ) as service:
            service.process(stream)
        evictions = [
            e for e in events.tail() if e["kind"] == "cache_eviction"
        ]
        assert evictions
        assert evictions[0]["cache"] == "match"

    def test_backpressure_event_emitted_on_overload(self, workload):
        pool, stream = workload
        events = EventLog()
        with ValidationService(
            pool,
            ServiceConfig(shards=1, batch_size=64, queue_capacity=8),
            events=events,
        ) as service:
            service.process(stream)
        backpressure = [
            e for e in events.tail() if e["kind"] == "backpressure"
        ]
        assert backpressure
        assert all("shard" in e and "depth" in e for e in backpressure)
