"""MetricStreams: windowed ring buffers over registry hooks."""

import pytest

from repro.errors import ServiceError
from repro.obs.monitor import MetricStreams
from repro.service.metrics import MetricsRegistry


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def streams(clock):
    return MetricStreams(window=10.0, clock=clock)


class TestIngest:
    def test_registry_hooks_feed_the_streams(self, streams, clock):
        registry = MetricsRegistry()
        streams.attach(registry)
        registry.counter("requests_total").inc(("accepted",))
        registry.counter("requests_total").inc(("accepted",))
        registry.gauge("queue_depth").set(7, ("shard0",))
        assert streams.delta("requests_total", ("accepted",)) == 2.0
        assert streams.last("queue_depth", ("shard0",)) == 7.0

    def test_double_attach_raises(self, streams):
        streams.attach(MetricsRegistry())
        with pytest.raises(ServiceError):
            streams.attach(MetricsRegistry())

    def test_old_points_fall_out_of_the_window(self, streams, clock):
        streams.observe("hits", (), 1.0)
        clock.advance(5.0)
        streams.observe("hits", (), 1.0)
        assert streams.delta("hits") == 2.0
        clock.advance(6.0)  # first point is now 11s old, window is 10s
        assert streams.delta("hits") == 1.0
        clock.advance(10.0)
        assert streams.delta("hits") == 0.0

    def test_max_points_bounds_each_cell(self, clock):
        streams = MetricStreams(window=100.0, clock=clock, max_points=3)
        for value in range(5):
            streams.observe("m", (), float(value))
        assert streams.values("m") == [2.0, 3.0, 4.0]

    def test_parameter_validation(self):
        with pytest.raises(ServiceError):
            MetricStreams(window=0.0)
        with pytest.raises(ServiceError):
            MetricStreams(max_points=0)


class TestViews:
    def test_rate_is_delta_over_window(self, streams):
        for _ in range(5):
            streams.observe("overload_total", (), 1.0)
        assert streams.rate("overload_total") == pytest.approx(0.5)

    def test_labels_none_merges_cells_in_time_order(self, streams, clock):
        streams.observe("requests_total", ("accepted",), 1.0)
        clock.advance(1.0)
        streams.observe("requests_total", ("rejected", "equation"), 1.0)
        clock.advance(1.0)
        streams.observe("requests_total", ("accepted",), 1.0)
        assert streams.delta("requests_total") == 3.0
        assert [at for at, _ in streams.points("requests_total")] == [
            0.0, 1.0, 2.0,
        ]
        assert streams.delta("requests_total", ("accepted",)) == 2.0

    def test_last_by_labels_reports_each_cell(self, streams):
        streams.observe("queue_depth", ("shard0",), 3.0)
        streams.observe("queue_depth", ("shard1",), 9.0)
        streams.observe("queue_depth", ("shard0",), 1.0)
        assert streams.last_by_labels("queue_depth") == {
            ("shard0",): 1.0,
            ("shard1",): 9.0,
        }

    def test_last_is_none_when_empty(self, streams):
        assert streams.last("nope") is None

    def test_quantiles_nearest_rank(self, streams):
        for value in range(1, 101):
            streams.observe("latency_seconds", (), value / 100.0)
        assert streams.quantile("latency_seconds", 0.5) == pytest.approx(0.5)
        assert streams.quantile("latency_seconds", 0.99) == pytest.approx(0.99)
        assert streams.quantile("latency_seconds", 1.0) == pytest.approx(1.0)
        assert streams.quantile("latency_seconds", 0.0) == pytest.approx(0.01)

    def test_quantile_empty_and_bad_q(self, streams):
        assert streams.quantile("latency_seconds", 0.99) == 0.0
        with pytest.raises(ServiceError):
            streams.quantile("latency_seconds", 1.5)

    def test_mean(self, streams):
        assert streams.mean("m") == 0.0
        streams.observe("m", (), 2.0)
        streams.observe("m", (), 4.0)
        assert streams.mean("m") == pytest.approx(3.0)
