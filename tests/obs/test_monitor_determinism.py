"""Monitor end-to-end: service wiring, journaled alerts, determinism.

The two acceptance properties of the monitoring layer:

* **out-of-band** -- verdict streams are byte-identical with a monitor
  attached or ``monitor=None``;
* **deterministic** -- replaying the same metric sequence through two
  fresh monitors (injected clocks) produces byte-identical alert
  timelines, EWMA anomaly rules included.
"""

import json

import pytest

from repro.errors import ServiceError
from repro.obs.events import EVENT_ALERT, EventLog
from repro.obs.monitor import (
    EwmaRule,
    Monitor,
    MonitorConfig,
    Slo,
    ThresholdRule,
)
from repro.service import ServiceConfig, ValidationService
from repro.service.metrics import MetricsRegistry
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

from tests.obs.test_streams import FakeClock


@pytest.fixture(scope="module")
def workload():
    config = WorkloadConfig(
        n_licenses=16,
        seed=3,
        n_records=0,
        target_groups=4,
        aggregate_range=(300, 900),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = tuple(generator.issue_stream(pool, 200))
    return pool, stream


def _signature(outcome):
    return (
        outcome.usage_id,
        outcome.count,
        tuple(outcome.license_set),
        outcome.accepted,
        outcome.rejection_reason,
        outcome.rejection_detail,
    )


class TestServiceWiring:
    def test_verdicts_identical_with_and_without_monitor(self, workload):
        pool, stream = workload
        with ValidationService(
            pool, ServiceConfig(shards=2, batch_size=16)
        ) as plain:
            baseline = [_signature(o) for o in plain.process(stream)]
        with ValidationService(
            pool, ServiceConfig(shards=2, batch_size=16), monitor=Monitor()
        ) as monitored:
            observed = [_signature(o) for o in monitored.process(stream)]
        assert observed == baseline

    def test_monitor_ticks_once_per_drain(self, workload):
        pool, stream = workload
        monitor = Monitor()
        with ValidationService(pool, monitor=monitor) as service:
            service.process(stream)
            drained_ticks = monitor.ticks
            assert drained_ticks >= 1
            service.drain()
            assert monitor.ticks == drained_ticks + 1

    def test_monitor_cannot_attach_twice(self, workload):
        pool, _stream = workload
        monitor = Monitor()
        with ValidationService(pool, monitor=monitor):
            with pytest.raises(ServiceError):
                ValidationService(pool, monitor=monitor)

    def test_tick_before_attach_raises(self):
        with pytest.raises(ServiceError):
            Monitor().tick()

    def test_monitor_state_lands_in_registry_gauges(self, workload):
        pool, stream = workload
        monitor = Monitor()
        with ValidationService(pool, monitor=monitor) as service:
            service.process(stream)
            gauge = service.metrics.gauge("alert_state")
            assert ("queue-saturation",) in gauge.cells()
            compliance = service.metrics.gauge("slo_compliance")
            assert compliance.value(("availability",)) == 1.0
            cache_misses = service.metrics.gauge("match_cache_misses")
            assert cache_misses.value() == len(stream)

    def test_service_exposes_group_sizes_and_cache_stats(self, workload):
        pool, stream = workload
        with ValidationService(pool) as service:
            sizes = service.group_sizes
            assert len(sizes) == service.group_count
            assert sum(sizes) == len(pool)
            service.process(stream)
            hits, misses, evictions = service.match_cache_stats()
            assert hits + misses >= len(stream)
            assert evictions >= 0

    def test_snapshot_and_report_cover_all_layers(self, workload):
        pool, stream = workload
        monitor = Monitor()
        with ValidationService(pool, monitor=monitor) as service:
            service.process(stream)
        snapshot = monitor.snapshot()
        assert snapshot["ticks"] == monitor.ticks
        assert {i["name"] for i in snapshot["indicators"]} == {
            "queue_saturation", "backpressure_rate", "cache_hit_ratio",
            "latency_drift", "efficiency_ratio",
        }
        assert snapshot["slos"][0]["name"] == "availability"
        assert set(snapshot["alerts"]) == {
            "queue-saturation", "backpressure", "efficiency-degraded",
            "availability-burn", "latency-anomaly",
        }
        text = monitor.report()
        assert "health:" in text
        assert "slos:" in text
        assert "alerts:" in text


def _scripted_replay(events_path=None):
    """Replay one scripted metric sequence through a fresh monitor.

    The sequence drives every alert kind: queue saturation crosses its
    threshold (threshold rule), latency spikes after a steady baseline
    (EWMA rule), and then everything recovers.  Returns the monitor.
    """
    clock = FakeClock()
    config = MonitorConfig(
        window=30.0,
        rules=(
            ThresholdRule("queue-hot", "queue_saturation", threshold=0.8),
            ThresholdRule(
                "slow-burn", "slo_burn:availability", threshold=1.0,
                for_seconds=2.0,
            ),
            EwmaRule(
                "latency-anomaly", "p99:latency_seconds",
                z_threshold=4.0, warmup=3,
            ),
        ),
        slos=(Slo("availability", objective=0.99),),
    )
    events = EventLog(events_path) if events_path else None
    monitor = Monitor(config, clock=clock, events=events)
    registry = MetricsRegistry()
    monitor.attach_registry(registry, queue_capacity=100, equations_bound=31)

    jitter = [0.010, 0.011, 0.009, 0.010, 0.011, 0.009, 0.010, 0.011]
    for step in range(24):
        registry.counter("requests_total").inc(("accepted",))
        registry.gauge("queue_depth").set(
            90.0 if 8 <= step < 14 else 10.0, ("shard0",)
        )
        if 10 <= step < 16:
            registry.counter("overload_total").inc(("shard0",))
        registry.histogram("latency_seconds").observe(
            0.5 if step == 18 else jitter[step % len(jitter)]
        )
        monitor.tick()
        clock.advance(1.0)
    return monitor


class TestDeterministicTimelines:
    def test_replay_produces_byte_identical_timelines(self):
        first = _scripted_replay()
        second = _scripted_replay()
        encode = lambda monitor: json.dumps(
            [t.to_dict() for t in monitor.timeline()], sort_keys=True
        )
        assert encode(first) == encode(second)
        assert encode(first).encode("utf-8") == encode(second).encode("utf-8")
        assert json.dumps(first.snapshot(), sort_keys=True) == json.dumps(
            second.snapshot(), sort_keys=True
        )

    def test_scripted_sequence_exercises_every_lifecycle_stage(self):
        monitor = _scripted_replay()
        moves = {
            (t.rule, t.from_state, t.to_state) for t in monitor.timeline()
        }
        assert ("queue-hot", "inactive", "pending") in moves
        assert ("queue-hot", "pending", "firing") in moves
        assert ("queue-hot", "firing", "resolved") in moves
        assert ("slow-burn", "pending", "firing") in moves
        assert ("latency-anomaly", "pending", "firing") in moves
        assert ("latency-anomaly", "firing", "resolved") in moves

    def test_alert_transitions_are_journaled(self, tmp_path):
        path = tmp_path / "events.jsonl"
        monitor = _scripted_replay(str(path))
        monitor.events.close()
        journaled = [
            event for event in EventLog.iter_file(str(path))
            if event["kind"] == EVENT_ALERT
        ]
        assert len(journaled) == len(monitor.timeline())
        for event, transition in zip(journaled, monitor.timeline()):
            assert event["rule"] == transition.rule
            assert event["to_state"] == transition.to_state
            assert event["at"] == transition.at

    def test_counter_tracks_transitions(self):
        monitor = _scripted_replay()
        registry = monitor._registry
        total = registry.counter("alert_transitions_total").total()
        assert total == len(monitor.timeline())
