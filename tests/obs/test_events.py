"""EventLog unit tests: schema, rotation, persistence, thread safety."""

import json
import os
import threading

import pytest

from repro.errors import ServiceError
from repro.obs.events import (
    EVENT_ADMISSION,
    EVENT_REJECTION,
    KNOWN_KINDS,
    EventLog,
)


class TestInMemory:
    def test_emit_assigns_monotone_seq(self):
        log = EventLog()
        first = log.emit(EVENT_ADMISSION, group_id=1)
        second = log.emit(EVENT_REJECTION, reason="equation")
        assert (first["seq"], second["seq"]) == (0, 1)
        assert log.emitted == 2

    def test_tail_returns_most_recent(self):
        log = EventLog(buffer_size=4)
        for index in range(10):
            log.emit("k", index=index)
        assert [event["index"] for event in log.tail()] == [6, 7, 8, 9]
        assert [event["index"] for event in log.tail(2)] == [8, 9]

    def test_parameter_validation(self):
        with pytest.raises(ServiceError):
            EventLog(max_bytes=0)
        with pytest.raises(ServiceError):
            EventLog(backups=-1)
        with pytest.raises(ServiceError):
            EventLog(buffer_size=0)

    def test_known_kinds_are_distinct(self):
        assert len(set(KNOWN_KINDS)) == len(KNOWN_KINDS) == 9


class TestPersistence:
    def test_lines_are_sorted_json_objects(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(str(path)) as log:
            log.emit(EVENT_REJECTION, reason="equation", detail="over cap")
        (line,) = path.read_text().splitlines()
        payload = json.loads(line)
        assert payload == {
            "seq": 0, "kind": "rejection",
            "reason": "equation", "detail": "over cap",
        }
        # sort_keys makes the on-disk form deterministic.
        assert line == json.dumps(payload, sort_keys=True)

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(str(path)) as log:
            log.emit("k", run=1)
        with EventLog(str(path)) as log:
            log.emit("k", run=2)
        runs = [event["run"] for event in EventLog.iter_file(str(path))]
        assert runs == [1, 2]

    def test_iter_file_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"seq": 0, "kind": "k"}\n\n{"seq": 1, "kind": "k"}\n')
        assert len(list(EventLog.iter_file(str(path)))) == 2

    def test_iter_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ServiceError):
            list(EventLog.iter_file(str(path)))


class TestRotation:
    def _fill(self, path, events, **kwargs):
        with EventLog(str(path), **kwargs) as log:
            for index in range(events):
                log.emit("k", index=index, pad="x" * 40)

    def test_newest_events_always_in_active_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._fill(path, events=50, max_bytes=600, backups=2)
        active = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert active, "active file must never be empty after a write"
        # The very last event emitted is in the active file, intact.
        assert active[-1]["index"] == 49

    def test_rotation_drops_only_oldest(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._fill(path, events=60, max_bytes=600, backups=2)
        assert os.path.exists(f"{path}.1")
        assert os.path.exists(f"{path}.2")
        assert not os.path.exists(f"{path}.3")
        seqs = [event["seq"] for event in EventLog.iter_file(str(path))]
        # Ascending and contiguous up to the newest event: anything lost
        # to rotation is a prefix, never a middle slice or the tail.
        assert seqs == list(range(seqs[0], 60))

    def test_backups_zero_keeps_only_active_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._fill(path, events=40, max_bytes=400, backups=0)
        assert not os.path.exists(f"{path}.1")
        seqs = [event["seq"] for event in EventLog.iter_file(str(path))]
        assert seqs[-1] == 39

    def test_single_oversized_event_still_written(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(str(path), max_bytes=64, backups=1) as log:
            log.emit("k", blob="y" * 200)
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["blob"] == "y" * 200


class TestThreadSafety:
    def test_concurrent_emit_keeps_every_seq(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(str(path), max_bytes=2048, backups=8)

        def worker():
            for _ in range(50):
                log.emit("k")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        seqs = sorted(
            event["seq"] for event in EventLog.iter_file(str(path))
        )
        assert log.emitted == 200
        # Rotation may shed the oldest file(s), never interleave or dup.
        assert seqs == list(range(seqs[0], 200))
