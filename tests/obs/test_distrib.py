"""Cross-process trace assembly: id validation, namespacing, clock skew."""

import pytest

from repro.errors import ProtocolError
from repro.obs.distrib import (
    AssembledTrace,
    MAX_ID_LENGTH,
    ServerTiming,
    TraceContext,
    assemble,
    estimate_clock_offset,
    validate_trace_id,
)
from repro.obs.trace import SpanRecord


def span(
    trace_id,
    span_id,
    parent_id=None,
    *,
    name="span",
    start=0.0,
    duration=1.0,
    **attrs,
):
    return SpanRecord(
        trace_id=trace_id,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start=start,
        duration=duration,
        attrs=attrs,
    )


class TestIdValidation:
    @pytest.mark.parametrize(
        "value", ["t00000000", "a", "A-Z_0.9:x"[:9], "x" * MAX_ID_LENGTH]
    )
    def test_accepts_well_formed(self, value):
        assert validate_trace_id(value) == value

    @pytest.mark.parametrize(
        "value",
        [None, 7, b"t0", "", "x" * (MAX_ID_LENGTH + 1), "sp an", "t\x00", "t€"],
    )
    def test_rejects_malformed(self, value):
        with pytest.raises(ProtocolError):
            validate_trace_id(value)

    def test_context_validates_both_fields(self):
        context = TraceContext("t00000000", "s00000001")
        assert (context.trace_id, context.span_id) == ("t00000000", "s00000001")
        with pytest.raises(ProtocolError, match="span_id"):
            TraceContext("t00000000", "")
        with pytest.raises(ProtocolError, match="trace_id"):
            TraceContext("t 0", "s00000001")


class TestServerTiming:
    def test_total_and_dict(self):
        timing = ServerTiming(
            queue_us=10,
            match_us=20,
            admission_us=30,
            revalidate_us=5,
            shard_id=2,
            kernel="dense",
        )
        assert timing.total_us == 65
        payload = timing.to_dict()
        assert payload["shard_id"] == 2
        assert payload["kernel"] == "dense"
        assert sum(v for k, v in payload.items() if k.endswith("_us")) == 65


class TestClockOffset:
    def test_midpoint_rule_recovers_known_skew(self):
        # Server clock runs 100s behind the client's; wire delay is
        # symmetric, so the midpoint estimator recovers it exactly.
        skew = -100.0
        client = [
            span("t0", "c0", name="wire_request", start=10.0, duration=2.0)
        ]
        server = [
            span(
                "t0",
                "r0",
                "c0",
                name="request",
                start=10.5 + skew,
                duration=1.0,
                remote_parent=True,
            )
        ]
        offset, matched = estimate_clock_offset(client, server)
        assert matched == 1
        assert offset == pytest.approx(-skew)

    def test_median_over_pairs_resists_outliers(self):
        client = [
            span("t0", f"c{i}", name="wire_request", start=float(i), duration=2.0)
            for i in range(3)
        ]
        server = [
            span(
                "t0",
                f"r{i}",
                f"c{i}",
                start=float(i) + 0.5,
                duration=1.0,
                remote_parent=True,
            )
            for i in range(2)
        ]
        # One wildly-delayed pair must not drag the median.
        server.append(
            span("t0", "r2", "c2", start=40.0, duration=1.0, remote_parent=True)
        )
        offset, matched = estimate_clock_offset(client, server)
        assert matched == 3
        assert offset == pytest.approx(0.0)

    def test_no_pairs_is_zero(self):
        offset, matched = estimate_clock_offset([], [span("t0", "s0")])
        assert (offset, matched) == (0.0, 0)


class TestAssemble:
    def test_cross_process_parenting_and_namespacing(self):
        # Both journals deliberately reuse the SAME ids -- the seeded
        # counters of two processes collide by construction.
        client = [span("t0", "s0", name="wire_request", start=0.0, duration=3.0)]
        server = [
            span(
                "t0",
                "s1",
                "s0",
                name="request",
                start=0.5,
                duration=2.0,
                remote_parent=True,
            ),
            span("t0", "s0", "s1", name="admission", start=0.6, duration=1.0),
            # A server-local root trace whose id collides with the
            # client's trace id: it must NOT merge into the shared one.
            span("t0", "s2", name="drain", start=9.0, duration=0.1),
        ]
        merged = assemble(client, server, align_clocks=False)
        assert isinstance(merged, AssembledTrace)
        assert merged.matched_pairs == 0  # align_clocks=False skips matching
        by_id = {record.span_id: record for record in merged.records}
        assert by_id["s:s1"].parent_id == "c:s0"
        assert by_id["s:s1"].trace_id == "t0"
        assert by_id["s:s0"].parent_id == "s:s1"
        assert by_id["s:s0"].trace_id == "t0"
        assert by_id["s:s2"].trace_id == "s:t0"
        assert merged.cross_traces == 1
        assert merged.client_spans == 1 and merged.server_spans == 3

    def test_alignment_shifts_server_starts(self):
        client = [span("t0", "c0", name="wire_request", start=10.0, duration=2.0)]
        server = [
            span(
                "t0",
                "r0",
                "c0",
                name="request",
                start=110.5,
                duration=1.0,
                remote_parent=True,
            )
        ]
        merged = assemble(client, server)
        assert merged.matched_pairs == 1
        assert merged.clock_offset == pytest.approx(-100.0)
        server_span = next(
            record for record in merged.records if record.span_id == "s:r0"
        )
        assert server_span.start == pytest.approx(10.5)
        # Aligned, the server span nests inside its client parent.
        assert 10.0 <= server_span.start
        assert server_span.start + server_span.duration <= 12.0

    def test_missing_client_journal_keeps_raw_parent(self):
        server = [
            span("t0", "r0", "c0", start=0.0, duration=1.0, remote_parent=True)
        ]
        merged = assemble([], server)
        record = merged.records[0]
        assert record.parent_id == "c0"
        assert merged.cross_traces == 0
        assert merged.matched_pairs == 0

    def test_render_and_json(self):
        client = [span("t0", "c0", name="wire_request", start=0.0, duration=2.0)]
        server = [
            span(
                "t0",
                "r0",
                "c0",
                name="request",
                start=0.5,
                duration=1.0,
                remote_parent=True,
            )
        ]
        merged = assemble(client, server)
        text = merged.render()
        assert "1 cross-process trace(s)" in text
        assert "wire_request" in text and "request" in text
        payload = merged.to_json()
        assert payload["matched_pairs"] == 1
        assert len(payload["spans"]) == 2
