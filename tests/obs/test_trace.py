"""Tracer/Span unit tests: determinism, nesting, sampling, threading."""

import json
import threading

import pytest

from repro.errors import ServiceError
from repro.obs.trace import NULL_SPAN, SamplingConfig, Span, SpanRecord, Tracer


def _fake_clock(step=1.0):
    """Deterministic monotonic clock advancing ``step`` per call."""
    state = {"now": 0.0}

    def clock():
        value = state["now"]
        state["now"] += step
        return value

    return clock


class TestSpanBasics:
    def test_root_span_has_no_parent(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("request") as span:
            assert span.parent_id is None
        (record,) = tracer.records()
        assert record.name == "request"
        assert record.parent_id is None

    def test_nested_spans_parent_implicitly(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        names = [r.name for r in tracer.records()]
        assert names == ["inner", "outer"]  # finish order

    def test_explicit_parent_overrides_context(self):
        tracer = Tracer(clock=_fake_clock())
        root = tracer.start_span("root")
        with tracer.span("other"):
            child = tracer.start_span("child", parent=root)
            assert child.parent_id == root.span_id
            child.end()
        root.end()

    def test_attrs_and_inc_attr(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("s", group_id=3) as span:
            span.set_attr("flag", True)
            span.inc_attr("count", 2)
            span.inc_attr("count")
        (record,) = tracer.records()
        assert record.attrs == {"group_id": 3, "flag": True, "count": 3}

    def test_double_end_is_harmless(self):
        tracer = Tracer(clock=_fake_clock())
        span = tracer.start_span("once")
        span.end()
        span.end()
        assert len(tracer.records()) == 1

    def test_durations_use_injected_clock(self):
        tracer = Tracer(clock=_fake_clock(step=0.5))
        span = tracer.start_span("timed")  # start=0.0
        span.end()  # end=0.5
        (record,) = tracer.records()
        assert record.start == 0.0
        assert record.duration == 0.5


class TestDeterminism:
    def _run(self, seed):
        tracer = Tracer(seed=seed, clock=_fake_clock())
        for _ in range(3):
            with tracer.span("request"):
                with tracer.span("match"):
                    pass
        return tracer

    def test_same_seed_same_ids(self):
        first = [(r.trace_id, r.span_id, r.parent_id, r.name)
                 for r in self._run(0).records()]
        second = [(r.trace_id, r.span_id, r.parent_id, r.name)
                  for r in self._run(0).records()]
        assert first == second

    def test_jsonl_is_byte_deterministic(self, tmp_path):
        paths = []
        for index in range(2):
            path = tmp_path / f"trace{index}.jsonl"
            self._run(7).write_jsonl(str(path))
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_jsonl_round_trips_via_from_dict(self, tmp_path):
        tracer = self._run(0)
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(str(path))
        loaded = [
            SpanRecord.from_dict(json.loads(line))
            for line in path.read_text().splitlines()
        ]
        assert written == len(loaded) == 6
        assert sorted(loaded, key=lambda r: (r.trace_id, r.span_id)) == loaded
        by_key = {(r.trace_id, r.span_id): r for r in tracer.records()}
        for record in loaded:
            assert by_key[(record.trace_id, record.span_id)] == record

    def test_malformed_record_raises_service_error(self):
        with pytest.raises(ServiceError):
            SpanRecord.from_dict({"trace_id": "t0"})


class TestSampling:
    def test_rate_validation(self):
        with pytest.raises(ServiceError):
            SamplingConfig(rate=1.5)
        with pytest.raises(ServiceError):
            SamplingConfig(rate=-0.1)

    @pytest.mark.parametrize("rate,expected", [(1.0, 8), (0.5, 4), (0.25, 2), (0.0, 0)])
    def test_stride_keeps_exact_fraction(self, rate, expected):
        config = SamplingConfig(rate=rate)
        assert sum(config.keep(i) for i in range(8)) == expected

    def test_unsampled_root_suppresses_children(self):
        tracer = Tracer(SamplingConfig(rate=0.5), clock=_fake_clock())
        kept = []
        for index in range(4):
            with tracer.span("request") as span:
                with tracer.span("child") as child:
                    assert bool(child) == bool(span)
                kept.append(bool(span))
        # floor((i+1)r) > floor(ir) keeps the *second* of each pair.
        assert kept == [False, True, False, True]
        assert tracer.roots_started == 4
        assert tracer.roots_sampled == 2
        # Only the sampled half produced records (root + child each).
        assert len(tracer.records()) == 4

    def test_null_span_is_falsy_sink(self):
        assert not NULL_SPAN
        NULL_SPAN.set_attr("k", 1)
        NULL_SPAN.inc_attr("k")
        NULL_SPAN.end()
        with NULL_SPAN as span:
            assert span is NULL_SPAN

    def test_null_parent_propagates_through_start_span(self):
        tracer = Tracer(SamplingConfig(rate=0.0), clock=_fake_clock())
        root = tracer.start_span("request")
        assert root is NULL_SPAN
        assert tracer.start_span("child", parent=root) is NULL_SPAN
        assert tracer.records() == ()


class TestOutOfBand:
    def test_record_parents_to_live_span(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("drain") as drain:
            batch = tracer.record(
                "shard_batch", start=1.0, duration=0.25, parent=drain,
                attrs={"shard": 0},
            )
            reval = tracer.record(
                "revalidate", start=1.1, duration=0.05, parent=batch,
                attrs={"group_id": 2, "equations_checked": 7},
            )
        assert batch.trace_id == drain.trace_id
        assert reval.parent_id == batch.span_id
        assert reval.attrs["equations_checked"] == 7

    def test_record_under_null_parent_returns_none(self):
        tracer = Tracer(clock=_fake_clock())
        assert tracer.record(
            "shard_batch", start=0.0, duration=1.0, parent=NULL_SPAN
        ) is None
        assert tracer.records() == ()

    def test_clear_keeps_id_counter_monotone(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("a"):
            pass
        ids_before = {r.span_id for r in tracer.records()}
        tracer.clear()
        with tracer.span("b"):
            pass
        ids_after = {r.span_id for r in tracer.records()}
        assert not ids_before & ids_after


class TestThreading:
    def test_threads_nest_independently(self):
        tracer = Tracer(clock=_fake_clock())
        errors = []

        def worker(index):
            try:
                with tracer.span(f"root{index}") as root:
                    with tracer.span("child") as child:
                        assert child.trace_id == root.trace_id
                        assert child.parent_id == root.span_id
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        records = tracer.records()
        assert len(records) == 16
        # Every span id is unique even under concurrent allocation.
        assert len({r.span_id for r in records}) == 16
        # Each child parents to its own thread's root, never another's.
        roots = {r.trace_id: r for r in records if r.parent_id is None}
        for child in (r for r in records if r.parent_id is not None):
            assert roots[child.trace_id].span_id == child.parent_id

    def test_activate_carries_span_across_threads(self):
        tracer = Tracer(clock=_fake_clock())
        root = tracer.start_span("request")
        seen = {}

        def worker():
            with tracer.activate(root):
                with tracer.span("remote") as span:
                    seen["parent"] = span.parent_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        root.end()
        assert seen["parent"] == root.span_id
