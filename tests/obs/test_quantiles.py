"""The shared nearest-rank helper is byte-identical to the three
implementations it replaced.

The old code is reproduced verbatim below as reference oracles; the
Hypothesis properties then pin each surviving call site --
``Histogram.quantile``, ``MetricStreams.quantile``, and the loadgen's
``nearest_rank`` -- to the oracle that used to live there.  Floats are
compared with ``==`` (no tolerance): nearest-rank selection returns an
*element* of the sample list, so any drift is an off-by-one rank bug,
not rounding noise.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError, TransportError
from repro.net.loadgen import nearest_rank as loadgen_nearest_rank
from repro.obs.monitor.streams import MetricStreams
from repro.obs.quantiles import (
    METHOD_CEIL,
    METHOD_ROUND,
    nearest_rank,
    nearest_rank_index,
)
from repro.service.metrics import MetricsRegistry


# ----------------------------------------------------------------------
# Reference oracles: the three pre-dedup implementations, verbatim.
# ----------------------------------------------------------------------
def _old_histogram_quantile(sorted_samples, q):
    """service.metrics.Histogram.quantile before the dedup."""
    if not 0.0 <= q <= 1.0:
        raise ServiceError(f"quantile {q} outside [0, 1]")
    if not sorted_samples:
        return 0.0
    rank = min(
        len(sorted_samples) - 1, max(0, round(q * len(sorted_samples)) - 1)
    )
    if q == 0.0:
        rank = 0
    return sorted_samples[rank]


def _old_streams_quantile(values, q):
    """obs.monitor.streams.MetricStreams.quantile before the dedup."""
    if not 0.0 <= q <= 1.0:
        raise ServiceError(f"quantile {q} outside [0, 1]")
    values = sorted(values)
    if not values:
        return 0.0
    if q == 0.0:
        return values[0]
    rank = min(len(values) - 1, max(0, round(q * len(values)) - 1))
    return values[rank]


def _old_loadgen_nearest_rank(samples, q):
    """net.loadgen.nearest_rank before the dedup."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise TransportError(f"quantile {q} outside [0, 1]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


SAMPLES = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    max_size=64,
)
#: Mix of arbitrary quantiles and the exact operating points the stack
#: queries (p0/p50/p95/p99/p100), where the two conventions diverge.
QUANTILES = st.one_of(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.sampled_from([0.0, 0.5, 0.95, 0.99, 1.0]),
)


class TestSharedHelper:
    @given(samples=SAMPLES, q=QUANTILES)
    @settings(max_examples=200)
    def test_round_method_matches_old_histogram(self, samples, q):
        assert nearest_rank(sorted(samples), q, presorted=True) == (
            _old_histogram_quantile(sorted(samples), q)
        )

    @given(samples=SAMPLES, q=QUANTILES)
    @settings(max_examples=200)
    def test_round_method_matches_old_streams(self, samples, q):
        assert nearest_rank(samples, q) == _old_streams_quantile(samples, q)

    @given(samples=SAMPLES, q=QUANTILES)
    @settings(max_examples=200)
    def test_ceil_method_matches_old_loadgen(self, samples, q):
        assert nearest_rank(samples, q, method=METHOD_CEIL) == (
            _old_loadgen_nearest_rank(samples, q)
        )

    def test_conventions_differ_where_documented(self):
        # round(2.5) banker's-rounds to 2 -> index 1; ceil(2.5) = 3 -> 2.
        assert nearest_rank_index(5, 0.5, METHOD_ROUND) == 1
        assert nearest_rank_index(5, 0.5, METHOD_CEIL) == 2

    def test_rejects_bad_method_and_bad_q(self):
        with pytest.raises(ServiceError):
            nearest_rank_index(3, 0.5, "interpolate")
        with pytest.raises(ServiceError):
            nearest_rank([1.0], 1.5)
        with pytest.raises(ServiceError):
            nearest_rank_index(0, 0.5)


class TestCallSitesPinned:
    """Drive the real objects and compare against the oracles."""

    @given(samples=SAMPLES, q=QUANTILES)
    @settings(max_examples=100)
    def test_histogram_quantile(self, samples, q):
        histogram = MetricsRegistry().histogram("latency_seconds")
        for value in samples:
            histogram.observe(value)
        assert histogram.quantile(q) == _old_histogram_quantile(
            sorted(samples), q
        )

    @given(samples=SAMPLES, q=QUANTILES)
    @settings(max_examples=100)
    def test_streams_quantile(self, samples, q):
        ticks = iter(range(100000))
        streams = MetricStreams(
            window=1e9, clock=lambda: float(next(ticks))
        )
        for value in samples:
            streams.observe("latency", (), value)
        assert streams.quantile("latency", q) == _old_streams_quantile(
            samples, q
        )

    @given(samples=SAMPLES, q=QUANTILES)
    @settings(max_examples=100)
    def test_loadgen_nearest_rank(self, samples, q):
        assert loadgen_nearest_rank(samples, q) == _old_loadgen_nearest_rank(
            samples, q
        )

    def test_error_types_preserved(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(ServiceError):
            histogram.quantile(-0.1)
        with pytest.raises(TransportError):
            loadgen_nearest_rank([1.0], 2.0)
        # Loadgen's historical quirk: empty wins over validation.
        assert loadgen_nearest_rank([], 2.0) == 0.0
