"""SLO grading: availability, latency, and error-budget burn rates."""

import pytest

from repro.errors import ServiceError
from repro.obs.monitor import MetricStreams, Slo, SloTracker

from tests.obs.test_streams import FakeClock


@pytest.fixture
def streams():
    return MetricStreams(window=10.0, clock=FakeClock())


def track(streams, *slos):
    (status,) = SloTracker(tuple(slos), streams).evaluate()[:1] or (None,)
    return status


class TestSloValidation:
    def test_objective_must_be_fractional(self):
        with pytest.raises(ServiceError):
            Slo("a", objective=1.0)
        with pytest.raises(ServiceError):
            Slo("a", objective=0.0)

    def test_name_and_kind_validated(self):
        with pytest.raises(ServiceError):
            Slo("", objective=0.99)
        with pytest.raises(ServiceError):
            Slo("a", objective=0.99, kind="durability")

    def test_latency_needs_target(self):
        with pytest.raises(ServiceError):
            Slo("lat", objective=0.99, kind="latency")

    def test_duplicate_names_rejected(self, streams):
        with pytest.raises(ServiceError):
            SloTracker(
                (Slo("a", objective=0.9), Slo("a", objective=0.99)), streams
            )


class TestAvailability:
    def test_idle_service_is_compliant(self, streams):
        status = track(streams, Slo("avail", objective=0.999))
        assert status.compliance == 1.0
        assert status.burn_rate == 0.0
        assert status.met

    def test_overloads_burn_the_budget(self, streams):
        for _ in range(99):
            streams.observe("requests_total", ("accepted",), 1.0)
        streams.observe("overload_total", ("shard0",), 1.0)
        status = track(streams, Slo("avail", objective=0.99))
        assert status.compliance == pytest.approx(0.99)
        assert status.events == 100.0
        # Bad fraction 0.01 over a 0.01 budget: burning exactly 1.0x.
        assert status.burn_rate == pytest.approx(1.0)
        assert status.met

    def test_violation_detected(self, streams):
        for _ in range(9):
            streams.observe("requests_total", ("accepted",), 1.0)
        streams.observe("overload_total", ("shard0",), 1.0)
        status = track(streams, Slo("avail", objective=0.999))
        assert not status.met
        assert status.burn_rate == pytest.approx(100.0)

    def test_business_rejections_do_not_burn(self, streams):
        streams.observe("requests_total", ("accepted",), 1.0)
        for _ in range(50):
            streams.observe("requests_total", ("rejected", "equation"), 1.0)
            streams.observe("requests_total", ("rejected", "instance"), 1.0)
        status = track(streams, Slo("avail", objective=0.999))
        assert status.compliance == 1.0
        assert status.met


class TestLatency:
    def test_fraction_under_target(self, streams):
        for value in (0.001, 0.002, 0.003, 0.050):
            streams.observe("latency_seconds", (), value)
        status = track(
            streams,
            Slo("lat", objective=0.7, kind="latency", latency_target=0.01),
        )
        assert status.compliance == pytest.approx(0.75)
        assert status.events == 4.0
        assert status.met
        assert status.burn_rate == pytest.approx(0.25 / 0.3)

    def test_no_samples_is_compliant(self, streams):
        status = track(
            streams,
            Slo("lat", objective=0.99, kind="latency", latency_target=0.01),
        )
        assert status.compliance == 1.0
        assert status.met

    def test_to_dict_round_trips_fields(self, streams):
        status = track(
            streams,
            Slo("lat", objective=0.99, kind="latency", latency_target=0.01),
        )
        payload = status.to_dict()
        assert payload["name"] == "lat"
        assert payload["kind"] == "latency"
        assert payload["met"] is True
