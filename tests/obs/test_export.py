"""Exporter tests: Prometheus round-trip, JSON, span trees, reports."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.obs.export import (
    load_trace_jsonl,
    parse_prometheus,
    registry_to_json,
    render_prometheus,
    render_span_tree,
    summarize_events,
    top_slowest,
)
from repro.obs.trace import SpanRecord, Tracer
from repro.service.metrics import MetricsRegistry


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("requests_total").inc(("accepted",), amount=7)
    registry.counter("requests_total").inc(("rejected", "equation"), amount=2)
    registry.counter("batches_total").inc(amount=3)
    registry.gauge("queue_depth").set(5, ("shard0",))
    histogram = registry.histogram("latency_seconds")
    for value in (0.001, 0.002, 0.004, 0.008):
        histogram.observe(value)
    return registry


class TestPrometheus:
    def test_render_round_trips_through_parse(self):
        registry = _populated_registry()
        samples = parse_prometheus(render_prometheus(registry))
        assert samples["repro_requests_total"][
            (("label0", "accepted"),)
        ] == 7.0
        assert samples["repro_requests_total"][
            (("label0", "rejected"), ("label1", "equation"))
        ] == 2.0
        assert samples["repro_batches_total"][()] == 3.0
        assert samples["repro_queue_depth"][(("label0", "shard0"),)] == 5.0
        summary = registry.histogram("latency_seconds").summary()
        assert samples["repro_latency_seconds"][
            (("quantile", "0.5"),)
        ] == summary["p50"]
        assert samples["repro_latency_seconds_count"][()] == 4.0
        assert samples["repro_latency_seconds_sum"][()] == pytest.approx(0.015)

    def test_every_rendered_sample_survives_parsing(self):
        text = render_prometheus(_populated_registry())
        sample_lines = [
            line for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        parsed = parse_prometheus(text)
        assert sum(len(cells) for cells in parsed.values()) == len(sample_lines)

    def test_namespace_is_configurable(self):
        text = render_prometheus(_populated_registry(), namespace="drm")
        assert "drm_requests_total" in text
        assert "repro_" not in text

    def test_parse_rejects_malformed_lines(self):
        for bad in (
            "no_value_here",
            "metric{unterminated 1",
            "m{k=v} 1",
            'm{k="trailing",} 1',
            'm{k="bad escape \\x"} 1',
            'm{k="unclosed} 1',
        ):
            with pytest.raises(ServiceError):
                parse_prometheus(bad)

    def test_hostile_label_values_round_trip(self):
        """Regression: label values containing ``"``, ``,``, ``=``, or
        ``\\`` used to render unescaped and shred the parser."""
        hostile = ('he said "hi"', "a,b=c", "back\\slash", "new\nline", "}")
        registry = MetricsRegistry()
        for value in hostile:
            registry.counter("hostile_total").inc((value,), amount=3)
        samples = parse_prometheus(render_prometheus(registry))
        cells = samples["repro_hostile_total"]
        assert len(cells) == len(hostile)
        for value in hostile:
            assert cells[(("label0", value),)] == 3.0

    @given(
        values=st.lists(
            st.text(
                alphabet=st.characters(
                    blacklist_categories=("Cs",),
                    # The sample separator is a space-split; keep label
                    # values printable-ish but include every escape-relevant
                    # character explicitly below.
                ),
                max_size=12,
            ).map(lambda s: s + '",\\=\n'),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_label_round_trip_property(self, values):
        registry = MetricsRegistry()
        for index, value in enumerate(values):
            registry.counter("prop_total").inc((value, f"v{index}"))
        samples = parse_prometheus(render_prometheus(registry))
        cells = samples["repro_prop_total"]
        assert len(cells) == len(values)
        for index, value in enumerate(values):
            labels = tuple(sorted([("label0", value), ("label1", f"v{index}")]))
            assert cells[labels] == 1.0

    def test_histogram_exports_both_scopes(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", max_samples=2)
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        samples = parse_prometheus(render_prometheus(registry))
        assert samples["repro_lat_count"][()] == 3.0
        assert samples["repro_lat_sum"][()] == 6.0
        assert samples["repro_lat_window_count"][()] == 2.0
        assert samples["repro_lat_max"][()] == 3.0

    def test_registry_to_json_is_deterministic(self):
        first = registry_to_json(_populated_registry())
        second = registry_to_json(_populated_registry())
        assert first == second
        assert "requests_total" in json.loads(first)["counters"]


def _span(trace, span, parent, name, start, duration, **attrs):
    return SpanRecord(
        trace_id=trace, span_id=span, parent_id=parent, name=name,
        start=start, duration=duration, attrs=attrs,
    )


class TestTraceReports:
    def test_load_trace_jsonl(self, tmp_path):
        tracer = Tracer(clock=iter(range(100)).__next__)
        with tracer.span("request"):
            with tracer.span("match"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path))
        loaded = load_trace_jsonl(str(path))
        assert sorted(r.name for r in loaded) == ["match", "request"]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("{broken\n")
        with pytest.raises(ServiceError):
            load_trace_jsonl(str(path))

    def test_span_tree_nests_and_orders(self):
        records = [
            _span("t1", "s2", "s1", "match", 1.0, 0.1, cache_hit=True),
            _span("t1", "s1", None, "request", 0.0, 2.0),
            _span("t1", "s3", "s1", "admission", 1.5, 0.2),
            _span("t0", "s0", None, "earlier", -1.0, 0.5),
        ]
        text = render_span_tree(records)
        lines = text.splitlines()
        assert lines[0] == "trace t0"  # ordered by root start time
        assert "trace t1" in lines
        request_at = next(i for i, l in enumerate(lines) if "request" in l)
        match_at = next(i for i, l in enumerate(lines) if "match" in l)
        admission_at = next(i for i, l in enumerate(lines) if "admission" in l)
        assert request_at < match_at < admission_at
        assert "[cache_hit=True]" in lines[match_at]
        # Children are indented beneath their parent.
        assert lines[match_at].startswith("   ")

    def test_orphan_span_promoted_to_root(self):
        records = [_span("t1", "s9", "s_missing", "lonely", 0.0, 1.0)]
        text = render_span_tree(records)
        assert "lonely" in text

    def test_max_traces_limits_output(self):
        records = [
            _span(f"t{i}", f"s{i}", None, "request", float(i), 1.0)
            for i in range(5)
        ]
        text = render_span_tree(records, max_traces=2)
        assert text.count("trace ") == 2

    def test_top_slowest_ranks_by_duration(self):
        records = [
            _span("t0", "s0", None, "request", 0.0, 0.5),
            _span("t0", "s1", "s0", "match", 0.0, 2.0),
            _span("t1", "s2", None, "request", 0.0, 1.0),
        ]
        lines = top_slowest(records, 2).splitlines()
        assert "top 2 slowest" in lines[0]
        assert "match" in lines[3]
        assert "request" in lines[4]

    def test_top_slowest_filters_by_name(self):
        records = [
            _span("t0", "s0", None, "request", 0.0, 0.5),
            _span("t0", "s1", "s0", "match", 0.0, 2.0),
        ]
        text = top_slowest(records, 5, name="request")
        assert "match" not in text
        assert "(name=request)" in text


class TestEventSummary:
    def test_counts_kinds_and_rejection_reasons(self):
        events = [
            {"kind": "admission"},
            {"kind": "admission"},
            {"kind": "rejection", "reason": "equation"},
            {"kind": "rejection", "reason": "instance"},
            {"kind": "rejection", "reason": "equation"},
            {"kind": "backpressure"},
        ]
        text = summarize_events(events)
        assert "6 event(s)" in text
        assert "admission: 2" in text
        assert "rejection: 3" in text
        assert "equation: 2" in text
        assert "instance: 1" in text

    def test_empty_stream(self):
        assert summarize_events([]) == "0 event(s)"
