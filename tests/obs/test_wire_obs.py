"""Wire-layer observability: saturation indicator, event ingest, summaries."""

import pytest

from repro.obs.export import summarize_events
from repro.obs.monitor import (
    HealthEvaluator,
    HealthThresholds,
    MetricStreams,
    STATUS_CRITICAL,
    STATUS_OK,
    STATUS_WARN,
)

from tests.obs.test_streams import FakeClock


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def streams(clock):
    return MetricStreams(window=10.0, clock=clock)


class TestWireSaturationIndicator:
    def test_absent_without_capacity(self, streams):
        report = HealthEvaluator(streams).evaluate()
        assert report.indicator("wire_saturation") is None
        assert len(report.indicators) == 5

    def test_present_with_capacity(self, streams):
        report = HealthEvaluator(streams, wire_inflight_capacity=64).evaluate()
        indicator = report.indicator("wire_saturation")
        assert indicator is not None
        assert len(report.indicators) == 6
        assert indicator.status == STATUS_OK
        assert "no wire data" in indicator.detail

    def test_grading_bands(self, streams):
        evaluator = HealthEvaluator(streams, wire_inflight_capacity=100)
        streams.observe("wire_in_flight", (), 10.0)
        assert (
            evaluator.evaluate().indicator("wire_saturation").status
            == STATUS_OK
        )
        streams.observe("wire_in_flight", (), 60.0)
        assert (
            evaluator.evaluate().indicator("wire_saturation").status
            == STATUS_WARN
        )
        streams.observe("wire_in_flight", (), 95.0)
        indicator = evaluator.evaluate().indicator("wire_saturation")
        assert indicator.status == STATUS_CRITICAL
        assert indicator.value == pytest.approx(0.95)
        assert "95/100" in indicator.detail

    def test_thresholds_configurable(self, streams):
        thresholds = HealthThresholds(
            wire_saturation_warn=0.1, wire_saturation_critical=0.2
        )
        evaluator = HealthEvaluator(
            streams, thresholds=thresholds, wire_inflight_capacity=100
        )
        streams.observe("wire_in_flight", (), 15.0)
        assert (
            evaluator.evaluate().indicator("wire_saturation").status
            == STATUS_WARN
        )

    def test_scripted_timeline_is_deterministic(self, clock):
        """The same scripted gauge timeline yields byte-identical reports."""

        def run():
            timeline_clock = FakeClock()
            timeline_streams = MetricStreams(window=10.0, clock=timeline_clock)
            evaluator = HealthEvaluator(
                timeline_streams, wire_inflight_capacity=32
            )
            snapshots = []
            for step, in_flight in enumerate([0, 8, 20, 31, 4]):
                timeline_clock.advance(1.0)
                timeline_streams.observe("wire_in_flight", (), float(in_flight))
                report = evaluator.evaluate()
                snapshots.append(
                    (step, report.indicator("wire_saturation").to_dict())
                )
            return snapshots

        first, second = run(), run()
        assert first == second
        statuses = [entry["status"] for _step, entry in first]
        assert statuses == ["ok", "ok", "warn", "critical", "ok"]
        # The window makes the indicator *current*: after the last
        # observation ages out, the indicator reports no data, not the
        # stale critical value.
        timeline_clock = FakeClock()
        timeline_streams = MetricStreams(window=10.0, clock=timeline_clock)
        evaluator = HealthEvaluator(timeline_streams, wire_inflight_capacity=32)
        timeline_streams.observe("wire_in_flight", (), 31.0)
        timeline_clock.advance(11.0)
        indicator = evaluator.evaluate().indicator("wire_saturation")
        assert indicator.status == STATUS_OK
        assert "no wire data" in indicator.detail


class TestStreamEventIngest:
    def test_wire_kinds_map_to_cells(self, streams, clock):
        events = [
            {"kind": "conn_open", "peer": "127.0.0.1:1"},
            {"kind": "conn_open", "peer": "127.0.0.1:2"},
            {"kind": "conn_close", "peer": "127.0.0.1:1", "requests": 7},
            {"kind": "drain", "in_flight_flushed": 5},
            {"kind": "admission", "seq": 0},  # not a wire kind
        ]
        assert streams.ingest_events(events) == 4
        assert streams.delta("wire_conn_events", ("conn_open",)) == 2.0
        assert streams.delta("wire_conn_events", ("conn_close",)) == 1.0
        assert streams.delta("wire_drain_flushed") == 5.0

    def test_unknown_kind_is_ignored(self, streams):
        assert streams.ingest_event({"kind": "epoch_change"}) is False
        assert streams.points("wire_conn_events") == []


class TestEventSummaryWireSection:
    def test_wire_section_renders(self):
        events = [
            {"kind": "conn_open", "peer": "p1"},
            {"kind": "conn_open", "peer": "p2"},
            {"kind": "conn_close", "peer": "p1", "requests": 12},
            {"kind": "conn_close", "peer": "p2", "requests": 3},
            {"kind": "drain", "in_flight_flushed": 4},
            {"kind": "rejection", "reason": "aggregate"},
        ]
        text = summarize_events(events)
        assert "wire:" in text
        assert "connections: 2 opened, 2 closed" in text
        assert "requests on closed connections: 15" in text
        assert "drains: 1 (4 in-flight flushed)" in text
        assert "aggregate: 1" in text

    def test_no_wire_events_no_section(self):
        text = summarize_events([{"kind": "admission"}])
        assert "wire:" not in text
