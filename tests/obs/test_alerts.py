"""Alert engine: lifecycle transitions, for_seconds holds, EWMA anomalies."""

import pytest

from repro.errors import ServiceError
from repro.obs.monitor import (
    AlertEngine,
    EwmaRule,
    STATE_FIRING,
    STATE_INACTIVE,
    STATE_PENDING,
    STATE_RESOLVED,
    ThresholdRule,
)


def transitions_of(engine, signals, now):
    return [
        (t.rule, t.from_state, t.to_state)
        for t in engine.evaluate(signals, now)
    ]


class TestRuleValidation:
    def test_threshold_rule_rejects_bad_specs(self):
        with pytest.raises(ServiceError):
            ThresholdRule("", "sig", 1.0)
        with pytest.raises(ServiceError):
            ThresholdRule("r", "sig", 1.0, op="!=")
        with pytest.raises(ServiceError):
            ThresholdRule("r", "sig", 1.0, for_seconds=-1.0)

    def test_ewma_rule_rejects_bad_specs(self):
        with pytest.raises(ServiceError):
            EwmaRule("r", "sig", z_threshold=0.0)
        with pytest.raises(ServiceError):
            EwmaRule("r", "sig", alpha=0.0)
        with pytest.raises(ServiceError):
            EwmaRule("r", "sig", warmup=0)

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ServiceError):
            AlertEngine(
                (ThresholdRule("r", "a", 1.0), ThresholdRule("r", "b", 2.0))
            )

    def test_unknown_rule_state_raises(self):
        engine = AlertEngine((ThresholdRule("r", "sig", 1.0),))
        with pytest.raises(ServiceError):
            engine.state("nope")


class TestThresholdLifecycle:
    def test_breach_goes_pending_then_firing_immediately(self):
        engine = AlertEngine((ThresholdRule("hot", "temp", 10.0),))
        moves = transitions_of(engine, {"temp": 11.0}, now=0.0)
        assert moves == [
            ("hot", STATE_INACTIVE, STATE_PENDING),
            ("hot", STATE_PENDING, STATE_FIRING),
        ]
        assert engine.state("hot") == STATE_FIRING

    def test_for_seconds_holds_pending(self):
        engine = AlertEngine(
            (ThresholdRule("hot", "temp", 10.0, for_seconds=5.0),)
        )
        assert transitions_of(engine, {"temp": 11.0}, now=0.0) == [
            ("hot", STATE_INACTIVE, STATE_PENDING)
        ]
        assert transitions_of(engine, {"temp": 12.0}, now=3.0) == []
        assert engine.state("hot") == STATE_PENDING
        assert transitions_of(engine, {"temp": 12.0}, now=5.0) == [
            ("hot", STATE_PENDING, STATE_FIRING)
        ]

    def test_cleared_pending_goes_inactive_not_resolved(self):
        engine = AlertEngine(
            (ThresholdRule("hot", "temp", 10.0, for_seconds=5.0),)
        )
        engine.evaluate({"temp": 11.0}, 0.0)
        assert transitions_of(engine, {"temp": 1.0}, now=1.0) == [
            ("hot", STATE_PENDING, STATE_INACTIVE)
        ]

    def test_firing_resolves_then_can_re_fire(self):
        engine = AlertEngine((ThresholdRule("hot", "temp", 10.0),))
        engine.evaluate({"temp": 11.0}, 0.0)
        assert transitions_of(engine, {"temp": 1.0}, now=1.0) == [
            ("hot", STATE_FIRING, STATE_RESOLVED)
        ]
        moves = transitions_of(engine, {"temp": 20.0}, now=2.0)
        assert moves[0] == ("hot", STATE_RESOLVED, STATE_PENDING)
        assert engine.state("hot") == STATE_FIRING

    def test_missing_signal_holds_state(self):
        engine = AlertEngine((ThresholdRule("hot", "temp", 10.0),))
        engine.evaluate({"temp": 11.0}, 0.0)
        assert transitions_of(engine, {}, now=1.0) == []
        assert engine.state("hot") == STATE_FIRING

    def test_comparators(self):
        engine = AlertEngine(
            (
                ThresholdRule("low", "sig", 5.0, op="<"),
                ThresholdRule("le", "sig", 5.0, op="<="),
                ThresholdRule("ge", "sig", 5.0, op=">="),
            )
        )
        engine.evaluate({"sig": 5.0}, 0.0)
        assert engine.state("low") == STATE_INACTIVE
        assert engine.state("le") == STATE_FIRING
        assert engine.state("ge") == STATE_FIRING


class TestEwmaLifecycle:
    def test_steady_signal_never_breaches(self):
        engine = AlertEngine((EwmaRule("anom", "lat", warmup=3),))
        for tick in range(20):
            assert engine.evaluate({"lat": 0.01}, float(tick)) == []

    def test_spike_after_warmup_fires(self):
        engine = AlertEngine(
            (EwmaRule("anom", "lat", z_threshold=4.0, warmup=3),)
        )
        # A little jitter gives the EWMA variance a non-zero floor.
        baseline = [0.010, 0.011, 0.009, 0.010, 0.011, 0.009]
        for tick, value in enumerate(baseline):
            assert engine.evaluate({"lat": value}, float(tick)) == []
        moves = transitions_of(engine, {"lat": 0.5}, now=10.0)
        assert ("anom", STATE_PENDING, STATE_FIRING) in moves

    def test_spike_during_warmup_is_ignored(self):
        engine = AlertEngine((EwmaRule("anom", "lat", warmup=10),))
        for tick, value in enumerate((0.01, 0.011, 5.0)):
            assert engine.evaluate({"lat": value}, float(tick)) == []

    def test_transitions_carry_value_and_time(self):
        engine = AlertEngine((ThresholdRule("hot", "temp", 10.0),))
        (pending, firing) = engine.evaluate({"temp": 42.0}, 7.5)
        assert pending.value == 42.0
        assert pending.at == 7.5
        assert firing.to_dict() == {
            "rule": "hot",
            "from_state": STATE_PENDING,
            "to_state": STATE_FIRING,
            "value": 42.0,
            "at": 7.5,
        }
