"""Run registry, regression attribution, and the performance report.

Everything here runs on synthetic fixtures with injected clocks and a
canned git probe -- no wall time, no subprocess -- so the byte-stability
assertions (`render_report` twice over the same registry, id assignment
on a rebuilt registry) are exact, not tolerance-based.
"""

import json

import pytest

from repro.errors import RunRegistryError
from repro.obs.runs import (
    PHASE_KEYS,
    RunRecord,
    RunRegistry,
    attribute,
    build_bench_record,
    build_loadgen_record,
    build_serve_bench_record,
    counter_totals,
    git_metadata,
    render_report,
    render_results,
    results_drift,
)

FAKE_GIT = {
    ("rev-parse", "HEAD"): "deadbeefcafe0123",
    ("rev-parse", "--abbrev-ref", "HEAD"): "main",
    ("status", "--porcelain"): "",
}


def fake_probe(args):
    return FAKE_GIT[tuple(args)]


def make_record(
    run_id,
    kind="loadgen",
    *,
    rps=1000.0,
    p99=0.003,
    revalidate_us=120.0,
    equations=1000.0,
):
    return RunRecord(
        run_id=run_id,
        kind=kind,
        label="test",
        recorded_at=100.0,
        git=git_metadata(fake_probe),
        config={"shards": 4, "kernel": "tree"},
        stats={"rps": rps, "p50": 0.001, "p95": 0.002, "p99": p99},
        phases_us={
            "queue_us": 10.0,
            "match_us": 50.0,
            "admission_us": 5.0,
            "revalidate_us": revalidate_us,
            "wire_us": 40.0,
        },
        counters={"equations_checked_total": equations},
    )


class TestRecord:
    def test_round_trips_through_dict(self):
        record = make_record("run-000001")
        clone = RunRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone.to_dict() == record.to_dict()

    def test_requires_id_and_kind(self):
        with pytest.raises(RunRegistryError):
            RunRecord(run_id="", kind="bench")
        with pytest.raises(RunRegistryError):
            RunRecord(run_id="run-000001", kind="")
        with pytest.raises(RunRegistryError):
            RunRecord.from_dict({"kind": "bench"})

    def test_git_metadata_degrades_on_probe_failure(self):
        def broken(args):
            raise OSError("no git here")

        assert git_metadata(broken) == {
            "commit": None, "branch": None, "dirty": None
        }
        assert git_metadata(fake_probe)["commit"] == "deadbeefcafe0123"
        assert git_metadata(fake_probe)["dirty"] is False


class TestRegistry:
    def test_append_load_round_trip(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "runs"))
        assert registry.load() == []
        first = registry.append(make_record(registry.next_run_id()))
        second = registry.append(
            make_record(registry.next_run_id(), kind="bench")
        )
        loaded = registry.load()
        assert [r.run_id for r in loaded] == ["run-000001", "run-000002"]
        assert loaded[0].to_dict() == first.to_dict()
        assert loaded[1].to_dict() == second.to_dict()

    def test_ids_come_from_seeded_counter_not_clock(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        for expected in ("run-000001", "run-000002", "run-000003"):
            assert registry.next_run_id() == expected
            registry.append(make_record(expected))
        # A rebuilt registry over the same file continues the sequence.
        assert RunRegistry(str(tmp_path)).next_run_id() == "run-000004"

    def test_latest_baseline_and_kind_filters(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_record("run-000001", kind="loadgen"))
        registry.append(make_record("run-000002", kind="bench"))
        registry.append(make_record("run-000003", kind="loadgen"))
        assert registry.latest().run_id == "run-000003"
        assert registry.latest("bench").run_id == "run-000002"
        assert registry.baseline("loadgen").run_id == "run-000001"
        assert registry.baseline("bench") is None
        assert registry.kinds() == ["loadgen", "bench"]
        assert registry.get("run-000002").kind == "bench"
        with pytest.raises(RunRegistryError):
            registry.get("run-999999")

    def test_duplicate_ids_rejected(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_record("run-000001"))
        with pytest.raises(RunRegistryError):
            registry.append(make_record("run-000001"))

    def test_malformed_line_names_line_number(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_record("run-000001"))
        with open(registry.path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "run-000002", "kind": trunc\n')
        with pytest.raises(RunRegistryError, match=":2"):
            registry.load()


class TestAttribution:
    def test_revalidate_slowdown_named_as_top_phase(self, tmp_path):
        """Acceptance: an artificial revalidate slowdown is attributed
        to the revalidate phase."""
        registry = RunRegistry(str(tmp_path))
        registry.append(make_record(registry.next_run_id()))
        registry.append(
            make_record(
                registry.next_run_id(),
                rps=600.0,
                p99=0.012,
                revalidate_us=2300.0,
                equations=4100.0,
            )
        )
        comparison = attribute(
            registry.baseline("loadgen"), registry.latest("loadgen")
        )
        top = comparison.top_phase()
        assert top.phase == "revalidate_us"
        assert top.share > 0.9
        rendered = comparison.render()
        assert "revalidate is the top regressing phase" in rendered
        assert "equations_checked_total" in rendered
        assert comparison.render() == rendered  # deterministic

    def test_no_regression_verdict(self):
        comparison = attribute(
            make_record("run-000001"), make_record("run-000002")
        )
        assert comparison.top_phase() is None
        assert comparison.regressed_stats() == []
        assert "no headline regression" in comparison.render()

    def test_rejects_cross_kind_and_incomparable_runs(self):
        with pytest.raises(RunRegistryError, match="kinds"):
            attribute(
                make_record("run-000001", kind="bench"),
                make_record("run-000002", kind="loadgen"),
            )
        bare = RunRecord(run_id="run-000001", kind="serve")
        with pytest.raises(RunRegistryError, match="comparable"):
            attribute(bare, RunRecord(run_id="run-000002", kind="serve"))

    def test_phase_shares_sum_to_one_when_phases_move(self):
        comparison = attribute(
            make_record("run-000001"),
            make_record("run-000002", revalidate_us=240.0),
        )
        assert sum(p.share for p in comparison.phases) == pytest.approx(1.0)
        assert comparison.to_dict()["phases"][0]["phase"] == "revalidate_us"


class TestReport:
    def test_byte_stable_across_invocations(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_record(registry.next_run_id()))
        registry.append(
            make_record(registry.next_run_id(), rps=900.0, p99=0.004)
        )
        first = render_report(registry)
        second = render_report(RunRegistry(str(tmp_path)))
        assert first == second
        assert "## Regression attribution — loadgen" in first
        assert "run-000002" in first

    def test_empty_registry_renders_no_data_report(self, tmp_path):
        text = render_report(RunRegistry(str(tmp_path / "missing")))
        assert text.startswith("# Performance report")
        assert "No runs recorded" in text

    def test_single_run_skips_attribution_gracefully(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        registry.append(make_record(registry.next_run_id()))
        text = render_report(registry)
        assert "no baseline to attribute against" in text

    def test_kernel_crossover_section_from_bench_data(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        record = RunRecord(
            run_id="run-000001",
            kind="bench",
            bench={
                "kernel_crossover": {
                    "sizes": {
                        "4": {
                            "tree_s": 0.008, "dense_s": 0.008,
                            "speedup": 1.0, "identical": True,
                        },
                        "12": {
                            "tree_s": 4.2, "dense_s": 0.022,
                            "speedup": 191.8, "identical": True,
                        },
                    },
                },
            },
        )
        registry.append(record)
        text = render_report(registry)
        assert "## Kernel crossover" in text
        assert "191.8x" in text


class TestResultsRegeneration:
    def seed(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        record = RunRecord(
            run_id="run-000001",
            kind="bench",
            artifacts={
                "kernel_crossover": "crossover table\n",
                "wire_end_to_end": "wire table\n",
            },
        )
        registry.append(record)
        return registry

    def test_render_results_returns_artifacts(self, tmp_path):
        registry = self.seed(tmp_path)
        assert render_results(registry) == {
            "kernel_crossover": "crossover table\n",
            "wire_end_to_end": "wire table\n",
        }
        assert render_results(RunRegistry(str(tmp_path / "empty"))) == {}

    def test_drift_detection(self, tmp_path):
        registry = self.seed(tmp_path)
        results = tmp_path / "results"
        results.mkdir()
        (results / "kernel_crossover.txt").write_text(
            "crossover table\n", encoding="utf-8"
        )
        drift = results_drift(registry, str(results))
        assert drift == ["wire_end_to_end.txt: missing (expected from registry)"]
        (results / "wire_end_to_end.txt").write_text(
            "stale\n", encoding="utf-8"
        )
        drift = results_drift(registry, str(results))
        assert len(drift) == 1 and "wire_end_to_end.txt" in drift[0]
        (results / "wire_end_to_end.txt").write_text(
            "wire table\n", encoding="utf-8"
        )
        assert results_drift(registry, str(results)) == []


class TestCaptureBuilders:
    def test_loadgen_builder_normalises_wire_phase(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        payload = {
            "rps": 1200.0, "p50": 0.001, "p95": 0.002, "p99": 0.003,
            "elapsed": 1.0, "requests": 1200, "measured": 1100,
            "accepted": 900, "retries": 3,
            "rejected": {"rejected": 200, "invalid": 100},
            "phases_us": {
                "queue_us": 10.0, "match_us": 40.0, "admission_us": 4.0,
                "revalidate_us": 100.0, "wire": 55.0,
            },
            "overloaded_failures": 2,
        }
        record = build_loadgen_record(
            registry, payload, config={"mode": "closed"},
            label="t", git_probe=fake_probe, clock=lambda: 7.0,
        )
        assert record.kind == "loadgen"
        assert record.run_id == "run-000001"
        assert record.recorded_at == 7.0
        assert record.stats["rejected"] == 300.0
        assert record.phases_us["wire_us"] == 55.0
        assert set(record.phases_us) == set(PHASE_KEYS)
        assert record.counters["overloaded_failures"] == 2.0

    def test_serve_bench_builder_reads_live_service(self, tmp_path):
        from repro.service import ServiceConfig, ValidationService
        from repro.workloads.config import WorkloadConfig
        from repro.workloads.generator import WorkloadGenerator

        generator = WorkloadGenerator(
            WorkloadConfig(n_licenses=8, seed=0, n_records=0)
        )
        pool = generator.generate_pool()
        stream = list(generator.issue_stream(pool, 50))
        service = ValidationService(pool, ServiceConfig(shards=2))
        outcomes = service.process(stream)
        service.close()
        registry = RunRegistry(str(tmp_path))
        record = build_serve_bench_record(
            registry,
            service,
            elapsed=2.0,
            requests=len(stream),
            accepted=sum(o.accepted for o in outcomes),
            config={"shards": 2},
            git_probe=fake_probe,
        )
        assert record.kind == "serve-bench"
        assert record.stats["rps"] == pytest.approx(25.0)
        assert record.counters["requests_total"] == 50.0
        assert "equations_checked_total" in record.counters
        assert record.metrics["counters"]

    def test_bench_builder_extracts_headline_from_sections(self, tmp_path):
        registry = RunRegistry(str(tmp_path))
        sections = {
            "throughput_vs_shards": {
                "runs": {
                    "1": {"rps": 2000.0, "p99": 0.4, "equations": 145000},
                    "8": {"rps": 2800.0, "p99": 0.8, "equations": 19000},
                },
            },
            "kernel_crossover": {"sizes": {}},
        }
        record = build_bench_record(
            registry, sections, {"kernel_crossover": "table\n"},
            config={"smoke": True}, label="smoke", git_probe=fake_probe,
        )
        assert record.kind == "bench"
        assert record.stats["rps"] == 2800.0
        assert record.counters["equations_checked_total"] == 19000.0
        assert record.bench["throughput_vs_shards"]["runs"]["8"]["rps"] == 2800.0
        assert record.artifacts == {"kernel_crossover": "table\n"}

    def test_counter_totals_sums_label_cells(self):
        snapshot = {
            "counters": {
                "requests_total": {"accepted": 40.0, "rejected": 10.0},
                "batches_total": {"_": 5.0},
            },
            "gauges": {},
        }
        assert counter_totals(snapshot) == {
            "requests_total": 50.0, "batches_total": 5.0,
        }
        assert counter_totals({}) == {}
