"""Health indicators: grading, floors, and the Equation-3 efficiency signal."""

import pytest

from repro.obs.monitor import (
    HealthEvaluator,
    HealthThresholds,
    MetricStreams,
    STATUS_CRITICAL,
    STATUS_OK,
    STATUS_WARN,
)

from tests.obs.test_streams import FakeClock


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def streams(clock):
    return MetricStreams(window=10.0, clock=clock)


def evaluator(streams, **kwargs):
    return HealthEvaluator(streams, **kwargs)


class TestQueueSaturation:
    def test_no_data_is_ok(self, streams):
        report = evaluator(streams, queue_capacity=100).evaluate()
        indicator = report.indicator("queue_saturation")
        assert indicator.status == STATUS_OK
        assert "no queue data" in indicator.detail

    def test_worst_shard_wins(self, streams):
        streams.observe("queue_depth", ("shard0",), 10.0)
        streams.observe("queue_depth", ("shard1",), 95.0)
        indicator = (
            evaluator(streams, queue_capacity=100)
            .evaluate()
            .indicator("queue_saturation")
        )
        assert indicator.value == pytest.approx(0.95)
        assert indicator.status == STATUS_CRITICAL
        assert "shard1" in indicator.detail

    def test_warn_band(self, streams):
        streams.observe("queue_depth", ("shard0",), 60.0)
        indicator = (
            evaluator(streams, queue_capacity=100)
            .evaluate()
            .indicator("queue_saturation")
        )
        assert indicator.status == STATUS_WARN


class TestBackpressureRate:
    def test_rate_grading(self, streams):
        for _ in range(10):  # 10 overloads / 10s window = 1.0/s
            streams.observe("overload_total", ("shard0",), 1.0)
        indicator = (
            evaluator(streams).evaluate().indicator("backpressure_rate")
        )
        assert indicator.value == pytest.approx(1.0)
        assert indicator.status == STATUS_WARN

    def test_quiet_is_ok(self, streams):
        indicator = (
            evaluator(streams).evaluate().indicator("backpressure_rate")
        )
        assert indicator.status == STATUS_OK
        assert indicator.value == 0.0


class TestCacheHitRatio:
    def test_low_ratio_critical_once_past_floor(self, streams):
        streams.observe("match_cache_hits", (), 1.0)
        streams.observe("match_cache_misses", (), 99.0)
        indicator = (
            evaluator(streams).evaluate().indicator("cache_hit_ratio")
        )
        assert indicator.status == STATUS_CRITICAL
        assert indicator.value == pytest.approx(0.01)

    def test_below_floor_is_warming_up(self, streams):
        streams.observe("match_cache_hits", (), 0.0)
        streams.observe("match_cache_misses", (), 5.0)
        indicator = (
            evaluator(streams).evaluate().indicator("cache_hit_ratio")
        )
        assert indicator.status == STATUS_OK
        assert "warming up" in indicator.detail

    def test_healthy_ratio(self, streams):
        streams.observe("match_cache_hits", (), 90.0)
        streams.observe("match_cache_misses", (), 10.0)
        indicator = (
            evaluator(streams).evaluate().indicator("cache_hit_ratio")
        )
        assert indicator.status == STATUS_OK
        assert indicator.value == pytest.approx(0.9)


class TestLatencyDrift:
    def test_first_sample_establishes_baseline(self, streams):
        streams.observe("latency_seconds", (), 0.01)
        indicator = (
            evaluator(streams).evaluate().indicator("latency_drift")
        )
        assert indicator.status == STATUS_OK
        assert indicator.value == pytest.approx(1.0)

    def test_spike_is_judged_against_history(self, streams, clock):
        health = evaluator(streams)
        streams.observe("latency_seconds", (), 0.01)
        health.evaluate()
        # p99 jumps 10x; the slow EWMA baseline barely moved.
        for _ in range(5):
            streams.observe("latency_seconds", (), 0.1)
        indicator = health.evaluate().indicator("latency_drift")
        assert indicator.value > 5.0
        assert indicator.status == STATUS_CRITICAL

    def test_no_samples_is_ok(self, streams):
        indicator = (
            evaluator(streams).evaluate().indicator("latency_drift")
        )
        assert indicator.status == STATUS_OK
        assert "no latency samples" in indicator.detail


class TestEfficiencyRatio:
    def _admissions(self, streams, n):
        for _ in range(n):
            streams.observe("requests_total", ("accepted",), 1.0)

    def test_batched_traffic_is_ok(self, streams):
        self._admissions(streams, 100)
        streams.observe("equations_checked_total", (), 300.0)
        indicator = (
            evaluator(streams, equations_bound=31)
            .evaluate()
            .indicator("efficiency_ratio")
        )
        # 3 equations/admission over a 31-equation bound.
        assert indicator.value == pytest.approx(3 / 31)
        assert indicator.status == STATUS_OK
        assert "Eq. 3" in indicator.detail

    def test_full_pass_per_admission_is_critical(self, streams):
        self._admissions(streams, 50)
        streams.observe("equations_checked_total", (), 50 * 31.0)
        indicator = (
            evaluator(streams, equations_bound=31)
            .evaluate()
            .indicator("efficiency_ratio")
        )
        assert indicator.value == pytest.approx(1.0)
        assert indicator.status == STATUS_CRITICAL

    def test_equation_rejections_count_as_admission_decisions(self, streams):
        self._admissions(streams, 30)
        for _ in range(30):
            streams.observe("requests_total", ("rejected", "equation"), 1.0)
        streams.observe("equations_checked_total", (), 60.0)
        indicator = (
            evaluator(streams, equations_bound=10)
            .evaluate()
            .indicator("efficiency_ratio")
        )
        assert indicator.value == pytest.approx(0.1)

    def test_below_floor_is_warming_up(self, streams):
        self._admissions(streams, 2)
        streams.observe("equations_checked_total", (), 62.0)
        indicator = (
            evaluator(streams, equations_bound=31)
            .evaluate()
            .indicator("efficiency_ratio")
        )
        assert indicator.status == STATUS_OK
        assert "warming up" in indicator.detail

    def test_unknown_bound_is_ok(self, streams):
        self._admissions(streams, 100)
        indicator = (
            evaluator(streams).evaluate().indicator("efficiency_ratio")
        )
        assert indicator.status == STATUS_OK


class TestReport:
    def test_worst_status_wins(self, streams):
        streams.observe("queue_depth", ("shard0",), 95.0)
        report = evaluator(streams, queue_capacity=100).evaluate()
        assert report.status == STATUS_CRITICAL

    def test_all_quiet_is_ok(self, streams):
        report = evaluator(streams).evaluate()
        assert report.status == STATUS_OK
        assert len(report.indicators) == 5

    def test_render_and_to_dict(self, streams):
        report = evaluator(streams).evaluate()
        text = report.render()
        assert text.startswith("health: ok")
        payload = report.to_dict()
        assert payload["status"] == "ok"
        assert len(payload["indicators"]) == 5
        assert report.indicator("no_such_indicator") is None

    def test_thresholds_are_configurable(self, streams):
        streams.observe("queue_depth", ("shard0",), 30.0)
        thresholds = HealthThresholds(
            queue_saturation_warn=0.2, queue_saturation_critical=0.25
        )
        report = HealthEvaluator(
            streams, thresholds, queue_capacity=100
        ).evaluate()
        assert report.indicator("queue_saturation").status == STATUS_CRITICAL
