"""Whole-program analysis tests: cross-file chains, mutation flips,
call-graph determinism, the pickle cache, and the analysis budget.

Each ``fixtures/analysis/<case>/`` directory holds a violation that is
*only* reachable through a cross-file call chain -- linting the marked
file alone would stay clean.  The mutation tests then edit the one
lock/await/raise/entropy line the finding hinges on and assert the
finding disappears, pinning the dataflow (not just the pattern match).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
import time
from pathlib import Path
from typing import Set, Tuple

import pytest

from repro.lint.analysis.project import Project
from repro.lint.config import LintConfig
from repro.lint.engine import _load_context, lint_file, lint_paths
from repro.lint.registry import get_rule

from .conftest import FIXTURES, open_scope_config

REPO_ROOT = Path(__file__).resolve().parents[2]
ANALYSIS = FIXTURES / "analysis"

_EXPECT = re.compile(r"#\s*expect:\s*(?P<rule>REP\d{3})")

#: rule id -> (fixture dir, file to mutate, old text, new text).  The
#: mutation flips exactly the line the finding hinges on: add the lock,
#: drop the blocking call, drop the raise, drop the entropy read.
CASES = {
    "REP008": (
        "lockchain",
        "impl.py",
        "        for row in rows:\n"
        "            self._insert_locked(row)  # expect: REP008\n",
        "        with self._lock:\n"
        "            for row in rows:\n"
        "                self._insert_locked(row)\n",
    ),
    "REP009": (
        "asyncchain",
        "helpers.py",
        "    time.sleep(0.05)  # expect: REP009\n",
        "",
    ),
    "REP010": (
        "excchain",
        "logic.py",
        '        raise QuotaError("no quota")\n',
        '        return b""\n',
    ),
    "REP011": (
        "taintchain",
        "clocksource.py",
        "    return int(time.time() * 1000)\n",
        "    return 0\n",
    ),
}


def _lint_dir(directory: Path, rule_id: str):
    return lint_paths(
        [directory], open_scope_config(rule_id), rules=[get_rule(rule_id)]
    )


def _expected_in_dir(directory: Path, rule_id: str) -> Set[Tuple[str, int]]:
    out: Set[Tuple[str, int]] = set()
    for path in sorted(directory.rglob("*.py")):
        lines = path.read_text(encoding="utf-8").splitlines()
        for lineno, line in enumerate(lines, start=1):
            match = _EXPECT.search(line)
            if match and match.group("rule") == rule_id:
                out.add((path.as_posix(), lineno))
    return out


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_cross_file_chain_is_found(rule_id):
    """The violation is reported even though cause and symptom live in
    different modules."""
    directory = ANALYSIS / CASES[rule_id][0]
    result = _lint_dir(directory, rule_id)
    assert not result.errors
    expected = _expected_in_dir(directory, rule_id)
    assert expected, f"{directory.name} carries no # expect markers"
    found = {(f.path, f.line) for f in result.findings}
    assert found == expected


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_marked_file_alone_is_clean(rule_id):
    """Without the rest of the project the chain cannot be resolved, so
    the same file lints clean -- the finding is genuinely whole-program
    (confident-or-silent: unresolved calls contribute nothing)."""
    directory = ANALYSIS / CASES[rule_id][0]
    expected = _expected_in_dir(directory, rule_id)
    marked = {Path(path) for path, _ in expected}
    for path in sorted(marked):
        findings, _ = lint_file(
            path, open_scope_config(rule_id), rules=[get_rule(rule_id)]
        )
        assert findings == [], f"{path.name} should need cross-file context"


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_mutating_the_pivotal_line_flips_the_finding(rule_id, tmp_path):
    """Editing the one lock/await/raise/entropy line the dataflow hinges
    on makes the finding disappear."""
    case_dir, mutate_file, old, new = CASES[rule_id]
    work = tmp_path / case_dir
    shutil.copytree(ANALYSIS / case_dir, work)

    before = _lint_dir(work, rule_id)
    assert before.findings, "fixture must be dirty before the mutation"

    target = work / mutate_file
    source = target.read_text(encoding="utf-8")
    assert old in source, f"mutation anchor missing from {mutate_file}"
    target.write_text(source.replace(old, new), encoding="utf-8")

    after = _lint_dir(work, rule_id)
    assert not after.errors
    assert after.findings == []


def test_bare_suppression_of_analysis_rule_suppresses_nothing(tmp_path):
    """A ``disable=REP008`` comment without a ``-- reason`` keeps the
    original finding *and* earns a finding of its own."""
    target = tmp_path / "box.py"
    target.write_text(
        "import threading\n"
        "\n"
        "\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.items = []\n"
        "\n"
        "    def _push_locked(self, item):\n"
        "        self.items.append(item)\n"
        "\n"
        "    def add(self, item):\n"
        "        self._push_locked(item)  # reprolint: disable=REP008\n",
        encoding="utf-8",
    )
    findings, suppressed = lint_file(
        target, open_scope_config("REP008"), rules=[get_rule("REP008")]
    )
    assert suppressed == 0
    assert [f.rule_id for f in findings] == ["REP008", "REP008"]
    messages = sorted(f.message for f in findings)
    assert any("bare suppression" in m for m in messages)
    assert any("_push_locked" in m for m in messages)


def test_disable_all_does_not_cover_analysis_rules(tmp_path):
    """``disable=all`` silences syntactic rules only; whole-program
    findings survive it."""
    target = tmp_path / "box.py"
    target.write_text(
        "import threading\n"
        "\n"
        "\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.items = []\n"
        "\n"
        "    def _push_locked(self, item):\n"
        "        self.items.append(item)\n"
        "\n"
        "    def add(self, item):\n"
        "        self._push_locked(item)  # reprolint: disable=all\n",
        encoding="utf-8",
    )
    findings, _ = lint_file(
        target, open_scope_config("REP008"), rules=[get_rule("REP008")]
    )
    assert [f.rule_id for f in findings] == ["REP008"]
    assert "_push_locked" in findings[0].message


def test_call_graph_dump_is_byte_identical_across_processes(tmp_path):
    """Two CLI runs in separate interpreters (different hash seeds)
    write byte-identical call-graph JSON."""
    config = tmp_path / "pyproject.toml"
    config.write_text("[tool.reprolint]\n", encoding="utf-8")
    dumps = []
    for run, seed in (("a", "101"), ("b", "202")):
        out = tmp_path / f"graph-{run}.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.lint.cli",
                str(ANALYSIS),
                "--config",
                str(config),
                "--call-graph-out",
                str(out),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={
                **os.environ,
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PYTHONHASHSEED": seed,
            },
        )
        assert proc.returncode in (0, 1), proc.stdout + proc.stderr
        dumps.append(out.read_bytes())
    assert dumps[0] == dumps[1]
    payload = json.loads(dumps[0])
    assert payload["version"] == 1
    assert payload["functions"], "dump should index the fixture functions"


def _analysis_contexts(root: Path):
    return [
        _load_context(path, path.as_posix())
        for path in sorted(root.rglob("*.py"))
    ]


def test_call_graph_cache_round_trip(tmp_path):
    """Second build with the same tree revives the pickled graph; any
    source edit invalidates it."""
    work = tmp_path / "tree"
    shutil.copytree(ANALYSIS / "asyncchain", work)
    cache = tmp_path / "cache" / "graph.pickle"
    config = LintConfig()

    first = Project(_analysis_contexts(work), config, cache_path=cache)
    assert not first.graph_from_cache
    assert cache.exists()

    second = Project(_analysis_contexts(work), config, cache_path=cache)
    assert second.graph_from_cache
    assert second.graph.to_payload() == first.graph.to_payload()

    edited = work / "app.py"
    edited.write_text(
        edited.read_text(encoding="utf-8") + "\nMARKER = 1\n",
        encoding="utf-8",
    )
    third = Project(_analysis_contexts(work), config, cache_path=cache)
    assert not third.graph_from_cache


def test_corrupt_cache_is_ignored(tmp_path):
    """A truncated/garbage cache file falls back to a fresh build."""
    work = ANALYSIS / "taintchain"
    cache = tmp_path / "graph.pickle"
    cache.write_bytes(b"not a pickle")
    project = Project(_analysis_contexts(work), LintConfig(), cache_path=cache)
    assert not project.graph_from_cache
    assert project.graph.to_payload()["functions"]


def test_full_repo_analysis_stays_under_budget():
    """Whole-program analysis over src/ completes inside the wall-clock
    ceiling (generous enough for slow CI, tight enough to catch a
    complexity regression in the graph build or the walkers)."""
    src = REPO_ROOT / "src"
    config_path = REPO_ROOT / "pyproject.toml"
    config = LintConfig.from_pyproject(config_path)
    started = time.perf_counter()
    result = lint_paths([src], config)
    elapsed = time.perf_counter() - started
    assert not result.errors
    assert result.files_checked > 50
    assert elapsed < 20.0, f"analysis took {elapsed:.1f}s (budget 20s)"
