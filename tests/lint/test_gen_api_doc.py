"""The API-reference generator: determinism and drift detection."""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def gen():
    spec = importlib.util.spec_from_file_location(
        "gen_api_doc", REPO_ROOT / "scripts" / "gen_api_doc.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_rendering_is_deterministic_and_address_free(gen):
    first = gen.build_api_markdown()
    second = gen.build_api_markdown()
    assert first == second
    assert " at 0x" not in first


def test_rendered_doc_covers_key_modules_with_signatures(gen):
    doc = gen.build_api_markdown()
    assert "## `repro.lint`" in doc
    assert "## `repro.core.incremental`" in doc
    # Signatures come from inspect.signature, so drift is detectable.
    assert "lint_paths(" in doc


def test_check_mode_passes_on_committed_doc(gen, capsys):
    """Acceptance: docs/API.md in this tree matches the modules."""
    assert gen.main(["--check"]) == 0
    assert "up to date" in capsys.readouterr().out


def test_check_mode_fails_on_drift_with_diff(gen, tmp_path, monkeypatch, capsys):
    stale = tmp_path / "API.md"
    stale.write_text("# API Reference\n\nstale\n", encoding="utf-8")
    monkeypatch.setattr(gen, "TARGET", stale)
    assert gen.main(["--check"]) == 1
    captured = capsys.readouterr()
    assert "--- docs/API.md (committed)" in captured.out
    assert "stale" in captured.err
    # --check must never rewrite the file.
    assert stale.read_text(encoding="utf-8") == "# API Reference\n\nstale\n"


def test_default_mode_writes_target(gen, tmp_path, monkeypatch, capsys):
    target = tmp_path / "API.md"
    monkeypatch.setattr(gen, "TARGET", target)
    assert gen.main([]) == 0
    assert target.read_text(encoding="utf-8") == gen.build_api_markdown()
