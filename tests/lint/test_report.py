"""Reporter determinism: byte-identical output across runs, stable
schema, no run-dependent noise."""

from __future__ import annotations

import json

from repro.lint.config import LintConfig
from repro.lint.engine import lint_paths
from repro.lint.report import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)

from tests.lint.conftest import FIXTURES, open_scope_config


def _result():
    return lint_paths([FIXTURES / "rep001_bad.py"], open_scope_config("REP001"))


def test_json_is_byte_identical_across_runs():
    assert render_json(_result()) == render_json(_result())


def test_json_schema_and_counts():
    payload = json.loads(render_json(_result()))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert payload["errors"] == []
    assert payload["counts"] == {"REP001": len(payload["findings"])}
    assert payload["counts"]["REP001"] >= 5
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        # Paths render exactly as the caller spelled them (no resolution).
        assert finding["path"].endswith("rep001_bad.py")


def test_json_findings_sorted_by_location():
    payload = json.loads(render_json(_result()))
    keys = [(f["path"], f["line"], f["col"], f["rule"]) for f in payload["findings"]]
    assert keys == sorted(keys)


def test_text_report_lines_and_summary():
    result = _result()
    text = render_text(result)
    lines = text.splitlines()
    assert lines[-1].startswith(f"{len(result.findings)} findings in 1 file(s)")
    for line, finding in zip(lines, sorted(result.findings)):
        assert line == finding.render()
        assert f": REP001 " in line


def test_suppressed_count_surfaces_in_both_formats():
    result = lint_paths(
        [FIXTURES / "rep001_suppressed.py"], open_scope_config("REP001")
    )
    assert result.findings == []
    assert result.suppressed == 2
    assert ", 2 suppressed" in render_text(result)
    assert json.loads(render_json(result))["suppressed"] == 2


def test_sarif_is_byte_identical_across_runs():
    assert render_sarif(_result()) == render_sarif(_result())


def test_sarif_schema_rule_catalog_and_regions():
    result = _result()
    log = json.loads(render_sarif(result))
    assert log["version"] == SARIF_VERSION
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert "REP001" in rule_ids and "REP011" in rule_ids
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
    assert len(run["results"]) == len(result.findings)
    for entry, finding in zip(run["results"], sorted(result.findings)):
        assert entry["ruleId"] == finding.rule_id
        assert rule_ids[entry["ruleIndex"]] == finding.rule_id
        region = entry["locations"][0]["physicalLocation"]["region"]
        # SARIF columns are 1-based; internal cols are 0-based offsets.
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1
    (invocation,) = run["invocations"]
    assert invocation["executionSuccessful"] is True


def test_sarif_errors_become_notifications(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    log = json.loads(render_sarif(lint_paths([bad], LintConfig())))
    (invocation,) = log["runs"][0]["invocations"]
    assert invocation["executionSuccessful"] is False
    notes = invocation["toolExecutionNotifications"]
    assert notes and "cannot parse" in notes[0]["message"]["text"]


def test_parse_error_becomes_result_error_not_crash(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    result = lint_paths([bad], LintConfig())
    assert result.exit_code == 2
    assert any("cannot parse" in err for err in result.errors)
