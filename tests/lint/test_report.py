"""Reporter determinism: byte-identical output across runs, stable
schema, no run-dependent noise."""

from __future__ import annotations

import json

from repro.lint.config import LintConfig
from repro.lint.engine import lint_paths
from repro.lint.report import JSON_SCHEMA_VERSION, render_json, render_text

from tests.lint.conftest import FIXTURES, open_scope_config


def _result():
    return lint_paths([FIXTURES / "rep001_bad.py"], open_scope_config("REP001"))


def test_json_is_byte_identical_across_runs():
    assert render_json(_result()) == render_json(_result())


def test_json_schema_and_counts():
    payload = json.loads(render_json(_result()))
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_checked"] == 1
    assert payload["errors"] == []
    assert payload["counts"] == {"REP001": len(payload["findings"])}
    assert payload["counts"]["REP001"] >= 5
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        # Paths render exactly as the caller spelled them (no resolution).
        assert finding["path"].endswith("rep001_bad.py")


def test_json_findings_sorted_by_location():
    payload = json.loads(render_json(_result()))
    keys = [(f["path"], f["line"], f["col"], f["rule"]) for f in payload["findings"]]
    assert keys == sorted(keys)


def test_text_report_lines_and_summary():
    result = _result()
    text = render_text(result)
    lines = text.splitlines()
    assert lines[-1].startswith(f"{len(result.findings)} findings in 1 file(s)")
    for line, finding in zip(lines, sorted(result.findings)):
        assert line == finding.render()
        assert f": REP001 " in line


def test_suppressed_count_surfaces_in_both_formats():
    result = lint_paths(
        [FIXTURES / "rep001_suppressed.py"], open_scope_config("REP001")
    )
    assert result.findings == []
    assert result.suppressed == 2
    assert ", 2 suppressed" in render_text(result)
    assert json.loads(render_json(result))["suppressed"] == 2


def test_parse_error_becomes_result_error_not_crash(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    result = lint_paths([bad], LintConfig())
    assert result.exit_code == 2
    assert any("cannot parse" in err for err in result.errors)
