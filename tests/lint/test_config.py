"""[tool.reprolint] parsing and scope/allow override semantics."""

from __future__ import annotations

import pytest

from repro.errors import LintError
from repro.lint.config import LintConfig, find_pyproject
from repro.lint.registry import get_rule


def test_unknown_keys_rejected():
    with pytest.raises(LintError, match="unknown \\[tool.reprolint\\] keys"):
        LintConfig.from_mapping({"scope": {}})


def test_non_list_patterns_rejected():
    with pytest.raises(LintError, match="list of strings"):
        LintConfig.from_mapping({"select": "REP001"})
    with pytest.raises(LintError, match="list of strings"):
        LintConfig.from_mapping({"scopes": {"REP001": "repro/*"}})


def test_select_disables_other_rules():
    config = LintConfig.from_mapping({"select": ["REP001"]})
    assert config.selected(get_rule("REP001"))
    assert not config.selected(get_rule("REP004"))


def test_scope_override_reopens_rule_everywhere():
    rep002 = get_rule("REP002")
    assert not LintConfig().rule_applies(rep002, "foo.py", "foo.py")
    opened = LintConfig(scopes={"REP002": ()})
    assert opened.rule_applies(rep002, "foo.py", "foo.py")


def test_allow_override_replaces_rule_default():
    rep001 = get_rule("REP001")
    default = LintConfig()
    assert not default.rule_applies(
        rep001,
        "repro/workloads/generator.py",
        "src/repro/workloads/generator.py",
    )
    # An explicit empty allowlist revokes the built-in seam exemption.
    closed = LintConfig(allow={"REP001": ()})
    assert closed.rule_applies(
        rep001,
        "repro/workloads/generator.py",
        "src/repro/workloads/generator.py",
    )


def test_exclude_skips_files_entirely():
    config = LintConfig.from_mapping({"exclude": ["*/generated/*"]})
    assert config.file_excluded("pkg/generated/x.py", "src/pkg/generated/x.py")
    assert not config.file_excluded("pkg/x.py", "src/pkg/x.py")


def test_from_pyproject_roundtrip(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        '[tool.reprolint]\nselect = ["REP003"]\n'
        '[tool.reprolint.scopes]\nREP003 = ["pkg/*"]\n',
        encoding="utf-8",
    )
    config = LintConfig.from_pyproject(pyproject)
    assert config.select == ("REP003",)
    assert config.scopes["REP003"] == ("pkg/*",)


def test_from_pyproject_missing_table_gives_defaults(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text('[project]\nname = "x"\n', encoding="utf-8")
    assert LintConfig.from_pyproject(pyproject) == LintConfig()


def test_from_pyproject_malformed_toml(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.reprolint\n", encoding="utf-8")
    with pytest.raises(LintError, match="malformed TOML"):
        LintConfig.from_pyproject(pyproject)


def test_find_pyproject_walks_up(tmp_path):
    (tmp_path / "pyproject.toml").write_text("", encoding="utf-8")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_pyproject(nested) == tmp_path / "pyproject.toml"


def test_repo_pyproject_parses_and_mirrors_rule_defaults():
    from pathlib import Path

    repo_pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    config = LintConfig.from_pyproject(repo_pyproject)
    # The committed table mirrors the built-in defaults so the policy is
    # reviewable in one place; keep them in sync.
    assert tuple(config.scopes["REP002"]) == get_rule("REP002").default_scope
    assert tuple(config.allow["REP001"]) == get_rule("REP001").default_allow
    assert tuple(config.allow["REP007"]) == get_rule("REP007").default_allow
