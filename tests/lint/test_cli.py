"""CLI exit codes (0 clean / 1 findings / 2 errors) and the self-lint
acceptance check: ``repro lint src`` is clean on this tree."""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"


def _fixture_pyproject(tmp_path: Path, body: str = "") -> Path:
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(f"[tool.reprolint]\n{body}", encoding="utf-8")
    return pyproject


def test_exit_zero_on_clean_file(tmp_path, capsys):
    target = tmp_path / "ok.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert lint_main([str(target), "--config", str(_fixture_pyproject(tmp_path))]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    config = _fixture_pyproject(tmp_path)
    code = lint_main(
        [str(FIXTURES / "rep005_bad.py"), "--config", str(config)]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "REP005" in out and "mutable default" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    code = lint_main(
        [str(tmp_path / "nope.py"), "--config", str(_fixture_pyproject(tmp_path))]
    )
    assert code == 2


def test_exit_two_on_bad_select():
    assert lint_main(["--select", "REP999"]) == 2


def test_json_format_is_machine_readable(tmp_path):
    stream = io.StringIO()
    from argparse import Namespace

    from repro.lint.cli import run

    args = Namespace(
        paths=[str(FIXTURES / "rep005_bad.py")],
        format="json",
        config=str(_fixture_pyproject(tmp_path)),
        select="REP005",
        list_rules=False,
    )
    assert run(args, stream) == 1
    payload = json.loads(stream.getvalue())
    assert payload["counts"] == {"REP005": 4}


def test_list_rules_catalog(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP001", "REP004", "REP007"):
        assert rule_id in out


def test_self_lint_src_is_clean():
    """Acceptance: the merged tree lints clean with the repo config."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_seeded_fixture_exits_one_via_script():
    """Acceptance: scripts/run_lint.py exits 1 on a seeded violation."""
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "scripts" / "run_lint.py"),
            str(FIXTURES / "rep005_bad.py"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "REP005" in proc.stdout
