"""Unit tests for the mypy baseline ratchet (pure logic; no mypy run)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def ratchet():
    spec = importlib.util.spec_from_file_location(
        "mypy_ratchet", REPO_ROOT / "scripts" / "mypy_ratchet.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_package_of_buckets(ratchet):
    assert ratchet.package_of("src/repro/core/incremental.py") == "repro.core"
    assert ratchet.package_of("src/repro/cli.py") == "repro.cli"
    assert ratchet.package_of("src/repro/obs/monitor/monitor.py") == "repro.obs"
    assert ratchet.package_of("setup.py") == "setup"


def test_bucket_errors_parses_mypy_output(ratchet):
    output = (
        "src/repro/cli.py:10: error: Incompatible return value  [return-value]\n"
        "src/repro/cli.py:20:5: error: Missing annotation  [no-untyped-def]\n"
        "src/repro/obs/trace.py:3: error: X  [misc]\n"
        "src/repro/obs/trace.py:3: note: See docs\n"
        "Found 3 errors in 2 files (checked 109 source files)\n"
    )
    assert ratchet.bucket_errors(output) == {"repro.cli": 2, "repro.obs": 1}


def test_compare_flags_strict_packages_regardless_of_baseline(ratchet):
    baseline = {
        "mode": "enforce",
        "strict_packages": list(ratchet.STRICT_PACKAGES),
        "counts": {"repro.core": 5},
    }
    failures, _ = ratchet.compare({"repro.core": 1}, baseline)
    assert failures == ["repro.core: 1 error(s) in a strict package (must be 0)"]


def test_compare_enforces_ceiling_and_reports_improvements(ratchet):
    baseline = {
        "mode": "enforce",
        "strict_packages": list(ratchet.STRICT_PACKAGES),
        "counts": {"repro.obs": 3, "repro.cli": 2},
    }
    failures, improvements = ratchet.compare(
        {"repro.obs": 4, "repro.cli": 1}, baseline
    )
    assert failures == ["repro.obs: 4 error(s) > baseline 3"]
    assert improvements == ["repro.cli: 1 error(s) < baseline 2"]


def test_compare_new_package_has_zero_ceiling(ratchet):
    baseline = {"mode": "enforce", "strict_packages": [], "counts": {}}
    failures, _ = ratchet.compare({"repro.workloads": 1}, baseline)
    assert failures == ["repro.workloads: 1 error(s) > baseline 0"]


def test_write_and_load_baseline_roundtrip(ratchet, tmp_path):
    target = tmp_path / "baseline.json"
    ratchet.write_baseline(target, {"repro.obs": 2, "repro.cli": 1})
    loaded = ratchet.load_baseline(target)
    assert loaded["mode"] == "enforce"
    assert loaded["counts"] == {"repro.cli": 1, "repro.obs": 2}


def test_missing_baseline_defaults_to_bootstrap(ratchet, tmp_path):
    loaded = ratchet.load_baseline(tmp_path / "absent.json")
    assert loaded["mode"] == "bootstrap"
    assert loaded["counts"] == {}


def test_main_skips_without_mypy(ratchet, monkeypatch, capsys):
    monkeypatch.setattr(ratchet, "mypy_available", lambda: False)
    assert ratchet.main([]) == 0
    assert "skipping" in capsys.readouterr().out
    assert ratchet.main(["--require-mypy"]) == 2


def test_main_enforce_flow_with_stubbed_runner(ratchet, monkeypatch, tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "mode": "enforce",
                "strict_packages": list(ratchet.STRICT_PACKAGES),
                "counts": {"repro.cli": 1},
            }
        ),
        encoding="utf-8",
    )
    monkeypatch.setattr(ratchet, "mypy_available", lambda: True)
    output = "src/repro/cli.py:1: error: A  [misc]\nsrc/repro/cli.py:2: error: B  [misc]\n"
    monkeypatch.setattr(ratchet, "run_mypy", lambda target: (1, output))
    assert ratchet.main(["--baseline", str(baseline)]) == 1

    clean = "src/repro/cli.py:1: error: A  [misc]\n"
    monkeypatch.setattr(ratchet, "run_mypy", lambda target: (1, clean))
    assert ratchet.main(["--baseline", str(baseline)]) == 0


def test_write_baseline_refuses_to_grow(ratchet, monkeypatch, tmp_path):
    baseline = tmp_path / "baseline.json"
    ratchet.write_baseline(baseline, {"repro.cli": 1})
    monkeypatch.setattr(ratchet, "mypy_available", lambda: True)
    grown = "src/repro/cli.py:1: error: A  [misc]\nsrc/repro/cli.py:2: error: B  [misc]\n"
    monkeypatch.setattr(ratchet, "run_mypy", lambda target: (1, grown))
    code = ratchet.main(["--baseline", str(baseline), "--write-baseline"])
    assert code == 1
    assert ratchet.load_baseline(baseline)["counts"] == {"repro.cli": 1}

    shrunk = ""
    monkeypatch.setattr(ratchet, "run_mypy", lambda target: (0, shrunk))
    assert ratchet.main(["--baseline", str(baseline), "--write-baseline"]) == 0
    assert ratchet.load_baseline(baseline)["counts"] == {}


def test_committed_baseline_is_valid(ratchet):
    committed = ratchet.load_baseline(REPO_ROOT / "mypy-baseline.json")
    assert committed["mode"] in {"bootstrap", "enforce"}
    assert committed["strict_packages"] == list(ratchet.STRICT_PACKAGES)
