"""Golden-fixture tests: one positive + suppressed + allowlisted case
per rule, with exact ``(line, rule)`` matching against ``# expect``
markers."""

from __future__ import annotations

import pytest

from repro.lint.config import LintConfig
from repro.lint.registry import all_rules, rule_ids

from tests.lint.conftest import FIXTURES, expected_findings, lint_fixture

ALL_RULE_IDS = (
    "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
    "REP008", "REP009", "REP010", "REP011",
)


def test_registry_catalog_complete():
    assert rule_ids() == ALL_RULE_IDS
    for rule in all_rules():
        assert rule.title and rule.rationale


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_flags_exactly_the_marked_lines(rule_id):
    fixture = f"{rule_id.lower()}_bad.py"
    findings, suppressed = lint_fixture(fixture, rule_id)
    actual = {(finding.line, finding.rule_id) for finding in findings}
    assert actual == expected_findings(FIXTURES / fixture, rule_id)
    assert suppressed == 0


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_inline_suppression_drops_every_finding(rule_id):
    fixture = f"{rule_id.lower()}_suppressed.py"
    findings, suppressed = lint_fixture(fixture, rule_id)
    assert findings == []
    assert suppressed >= 1


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_allowlisted_file_is_exempt(rule_id):
    fixture = f"{rule_id.lower()}_bad.py"
    config = LintConfig(scopes={rule_id: ()}, allow={rule_id: (fixture,)})
    findings, suppressed = lint_fixture(fixture, rule_id, config)
    assert findings == []
    assert suppressed == 0


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_clean_fixture_stays_clean(rule_id):
    findings, suppressed = lint_fixture("clean.py", rule_id)
    assert findings == []
    assert suppressed == 0


def test_rep007_kernel_allowlist_is_surgical(tmp_path):
    """Under the COMMITTED config, the dense kernel's module path is
    exempt from REP007 -- but the identical 2^N loop at any other path
    still fires.  Guards against the allowlist entry silently widening."""
    from pathlib import Path

    from repro.lint.config import find_pyproject
    from repro.lint.engine import lint_file
    from repro.lint.registry import get_rule

    config = LintConfig.from_pyproject(
        find_pyproject(Path(__file__).resolve())
    )
    source = (
        "def sweep(n):\n"
        "    return sum(range(1, 1 << n))\n"
    )
    allowed = tmp_path / "repro" / "core" / "kernel.py"
    flagged = tmp_path / "repro" / "service" / "hotpath.py"
    for target in (allowed, flagged):
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")

    kernel_findings, _ = lint_file(
        allowed, config, rules=[get_rule("REP007")]
    )
    assert kernel_findings == []

    other_findings, _ = lint_file(
        flagged, config, rules=[get_rule("REP007")]
    )
    assert [finding.rule_id for finding in other_findings] == ["REP007"]


def test_default_scope_skips_out_of_scope_files():
    # With rule defaults (no config override), the hot-path-scoped REP002
    # does not apply to a fixture outside the repro package at all.
    findings, _ = lint_fixture("rep002_bad.py", "REP002", LintConfig())
    assert findings == []


def test_findings_are_sorted_and_stable():
    findings, _ = lint_fixture("rep001_bad.py", "REP001")
    assert findings == sorted(findings)
    again, _ = lint_fixture("rep001_bad.py", "REP001")
    assert findings == again
