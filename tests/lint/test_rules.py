"""Golden-fixture tests: one positive + suppressed + allowlisted case
per rule, with exact ``(line, rule)`` matching against ``# expect``
markers."""

from __future__ import annotations

import pytest

from repro.lint.config import LintConfig
from repro.lint.registry import all_rules, rule_ids

from tests.lint.conftest import FIXTURES, expected_findings, lint_fixture

ALL_RULE_IDS = (
    "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
)


def test_registry_catalog_complete():
    assert rule_ids() == ALL_RULE_IDS
    for rule in all_rules():
        assert rule.title and rule.rationale


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_rule_flags_exactly_the_marked_lines(rule_id):
    fixture = f"{rule_id.lower()}_bad.py"
    findings, suppressed = lint_fixture(fixture, rule_id)
    actual = {(finding.line, finding.rule_id) for finding in findings}
    assert actual == expected_findings(FIXTURES / fixture, rule_id)
    assert suppressed == 0


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_inline_suppression_drops_every_finding(rule_id):
    fixture = f"{rule_id.lower()}_suppressed.py"
    findings, suppressed = lint_fixture(fixture, rule_id)
    assert findings == []
    assert suppressed >= 1


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_allowlisted_file_is_exempt(rule_id):
    fixture = f"{rule_id.lower()}_bad.py"
    config = LintConfig(scopes={rule_id: ()}, allow={rule_id: (fixture,)})
    findings, suppressed = lint_fixture(fixture, rule_id, config)
    assert findings == []
    assert suppressed == 0


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_clean_fixture_stays_clean(rule_id):
    findings, suppressed = lint_fixture("clean.py", rule_id)
    assert findings == []
    assert suppressed == 0


def test_default_scope_skips_out_of_scope_files():
    # With rule defaults (no config override), the hot-path-scoped REP002
    # does not apply to a fixture outside the repro package at all.
    findings, _ = lint_fixture("rep002_bad.py", "REP002", LintConfig())
    assert findings == []


def test_findings_are_sorted_and_stable():
    findings, _ = lint_fixture("rep001_bad.py", "REP001")
    assert findings == sorted(findings)
    again, _ = lint_fixture("rep001_bad.py", "REP001")
    assert findings == again
