"""REP006 fixture: unlocked write, suppressed inline."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def unlocked_add(self, n):
        self.total = self.total + n  # reprolint: disable=REP006
