"""REP002 fixture: unguarded call, suppressed inline."""


class Engine:
    def __init__(self, tracer=None):
        self.tracer = tracer

    def unguarded(self):
        self.tracer.record("step")  # reprolint: disable=REP002
        return 1
