"""REP009 fixture: blocking call suppressed with a recorded reason."""

import time


async def warmup():
    time.sleep(0.01)  # reprolint: disable=REP009 -- startup-only coroutine, runs before the loop serves connections
