"""REP001 fixture: same calls, every finding suppressed inline."""

import time


def stamp():
    return time.time()  # reprolint: disable=REP001


def stamp_all():
    return time.time()  # reprolint: disable=all
