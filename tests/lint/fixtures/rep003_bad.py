"""REP003 fixture: float equality and approximate comparisons."""

import math
import numpy as np


def literal_eq(x):
    return x == 1.0  # expect: REP003


def literal_ne(x):
    return 0.5 != x  # expect: REP003


def isclose(x):
    return math.isclose(x, 1.0)  # expect: REP003


def np_isclose(x):
    return np.isclose(x, 1.0)  # expect: REP003


def integer_eq_is_fine(x):
    # Coordinates are integers in this codebase; int compares are exact.
    return x == 1
