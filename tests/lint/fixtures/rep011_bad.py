"""REP011 fixture: ambient entropy laundered through call chains."""

import time


def stamp():
    # The direct use is REP001's finding, not REP011's.
    return time.time()


def fresh_id():
    return int(stamp() * 1e6)  # expect: REP011


def verdict_tag(verdict):
    return f"{verdict}-{fresh_id()}"  # expect: REP011


def pure_tag(verdict, seq):
    return f"{verdict}-{seq}"
