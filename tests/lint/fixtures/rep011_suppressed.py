"""REP011 fixture: entropy flow suppressed with a recorded reason."""

import time


def stamp():
    return time.time()


def fresh_id():
    return int(stamp() * 1e6)  # reprolint: disable=REP011 -- operator-facing log tag only; never reaches a verdict or id
