"""REP006 fixture: lock-owning class writing state outside the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def unlocked_add(self, n):
        self.total = self.total + n  # expect: REP006

    def unlocked_aug(self, n):
        self.total += n  # expect: REP006

    def locked_add(self, n):
        with self._lock:
            self.total = self.total + n

    def rotate_locked(self, n):
        # *_locked methods run with the lock already held by the caller.
        self.total = n


class NoLock:
    def __init__(self):
        self.total = 0

    def add(self, n):
        # No lock attribute: single-writer by construction, exempt.
        self.total += n
