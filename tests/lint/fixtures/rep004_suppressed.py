"""REP004 fixture: builtin raise, suppressed inline."""


def bad_value():
    raise ValueError("builtin")  # reprolint: disable=REP004
