"""REP010 fixture: escaping exception suppressed with a recorded reason."""

import asyncio


class Server:
    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )

    async def _handle(self, reader, writer):  # reprolint: disable=REP010 -- prototype harness; task exception handler logs and closes
        self._process(await reader.read(1024))

    def _process(self, payload):
        if not payload:
            raise ValueError("empty payload")
