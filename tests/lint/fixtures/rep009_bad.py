"""REP009 fixture: blocking calls reachable from coroutines."""

import asyncio
import time


async def tick():
    time.sleep(0.01)  # expect: REP009
    await asyncio.sleep(0)


async def pump():
    relay()


def relay():
    settle()


def settle():
    time.sleep(0.1)  # expect: REP009


async def sanctioned():
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, lambda: time.sleep(0.1))
