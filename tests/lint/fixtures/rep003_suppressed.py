"""REP003 fixture: float equality, suppressed inline."""


def literal_eq(x):
    return x == 1.0  # reprolint: disable=REP003
