"""REP008 fixture: contract break suppressed with a recorded reason."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = []

    def _append_locked(self, item):
        self.entries.append(item)

    def add(self, item):
        self._append_locked(item)  # reprolint: disable=REP008 -- single-threaded test double; no concurrent callers exist
