"""REP008 fixture: lock-state contract broken across self-call chains."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = []

    def _append_locked(self, item):
        self.entries.append(item)

    def add_direct(self, item):
        self._append_locked(item)  # expect: REP008

    def add_via_relay(self, item):
        self._relay(item)

    def _relay(self, item):
        self._append_locked(item)  # expect: REP008

    def add_properly(self, item):
        with self._lock:
            self._append_locked(item)

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:  # expect: REP008
            return len(self.entries)


class ReentrantRegistry:
    """RLock: nested acquires are legal; nothing here fires."""

    def __init__(self):
        self._lock = threading.RLock()
        self.entries = []

    def outer(self):
        with self._lock:
            self.inner()

    def inner(self):
        with self._lock:
            return len(self.entries)
