"""REP005 fixture: mutable default arguments."""

import collections


def list_default(items=[]):  # expect: REP005
    return items


def dict_default(table={}):  # expect: REP005
    return table


def ctor_default(bag=collections.defaultdict(int)):  # expect: REP005
    return bag


def kwonly_default(*, seen=set()):  # expect: REP005
    return seen


def none_default(items=None):
    return items if items is not None else []
