"""REP007 fixture: 2^N subset enumeration shapes."""

from itertools import chain, combinations


def sweep_shift(n):
    total = 0
    for mask in range(1, 1 << n):  # expect: REP007
        total += mask
    return total


def sweep_pow(n):
    return sum(range(2 ** n))  # expect: REP007


def powerset(items):
    return list(
        chain.from_iterable(  # expect: REP007
            combinations(items, r) for r in range(len(items) + 1)
        )
    )


def constant_bound_is_fine():
    return sum(range(1 << 8))


def linear_is_fine(n):
    return sum(range(n))
