"""REP007 fixture: exponential sweep, suppressed inline."""


def sweep_shift(n):
    total = 0
    for mask in range(1, 1 << n):  # reprolint: disable=REP007
        total += mask
    return total
