"""REP001 fixture: ambient time/entropy calls (all flagged)."""

import datetime as _dt
import os
import random
import secrets
import time
from random import randint


def stamp():
    return time.time()  # expect: REP001


def when():
    return _dt.datetime.now()  # expect: REP001


def roll():
    return randint(1, 6)  # expect: REP001


def jitter():
    return random.random()  # expect: REP001


def token():
    return os.urandom(8)  # expect: REP001


def csprng():
    return secrets.token_bytes(8)  # expect: REP001


def fine():
    # Monotonic clocks measure, they don't decide -- always legal.
    return time.perf_counter()
