"""A file every rule accepts (with scopes opened to all files)."""

import time

from repro.errors import ValidationError


def measure(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def checked_add(a: int, b: int, limit: int) -> int:
    total = a + b
    if total > limit:
        raise ValidationError(f"{total} exceeds {limit}")
    return total
