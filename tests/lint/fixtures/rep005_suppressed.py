"""REP005 fixture: mutable default, suppressed inline."""


def list_default(items=[]):  # reprolint: disable=REP005
    return items
