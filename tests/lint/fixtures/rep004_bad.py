"""REP004 fixture: builtin exceptions raised from library code."""

from repro.errors import ValidationError


def bad_value():
    raise ValueError("builtin")  # expect: REP004


def bad_runtime():
    raise RuntimeError("builtin")  # expect: REP004


def good_domain():
    raise ValidationError("domain error")


def good_reraise():
    try:
        good_domain()
    except ValidationError:
        raise


def good_not_implemented():
    raise NotImplementedError
