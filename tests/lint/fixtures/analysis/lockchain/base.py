"""Cross-module REP008 fixture: the lock-owning base class."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.rows = []

    def _insert_locked(self, row):
        self.rows.append(row)

    def insert(self, row):
        with self._lock:
            self._insert_locked(row)
