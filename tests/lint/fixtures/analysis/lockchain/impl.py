"""Cross-module REP008 fixture: subclass breaks the inherited contract.

``_insert_locked`` is defined in base.py; the violation only exists
because method resolution walks the project class hierarchy across
files.
"""

from base import Store


class AuditedStore(Store):
    def bulk_insert(self, rows):
        for row in rows:
            self._insert_locked(row)  # expect: REP008
