"""Cross-module REP009 fixture: the coroutine that reaches it.

The blocking call lives in helpers.py; the finding only exists because
the call graph follows ``app.pump -> helpers.relay -> helpers.settle``
across files.
"""

import helpers


async def pump(batch):
    return helpers.relay(batch)
