"""Cross-module REP009 fixture: the blocking helper."""

import time


def relay(batch):
    return settle(batch)


def settle(batch):
    time.sleep(0.05)  # expect: REP009
    return batch
