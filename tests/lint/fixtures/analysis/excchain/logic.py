"""Cross-module REP010 fixture: the raising business logic."""


class QuotaError(Exception):
    pass


def admit(payload):
    if not payload:
        raise QuotaError("no quota")
    return payload
