"""Cross-module REP010 fixture: handler leaks an exception raised in
logic.py -- the finding only exists because escape analysis crosses the
file boundary (and knows QuotaError derives from Exception)."""

import asyncio

import logic


class WireServer:
    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )

    async def _handle(self, reader, writer):  # expect: REP010
        payload = await reader.read(1024)
        logic.admit(payload)
