"""Cross-module REP011 fixture: the ambient-entropy helper."""

import time


def now_ms():
    return int(time.time() * 1000)
