"""Cross-module REP011 fixture: id production consumes laundered time.

The banned call sits in clocksource.py; the finding only exists because
taint propagates over the cross-file call edge.
"""

import clocksource


def next_request_id(prefix):
    return f"{prefix}-{clocksource.now_ms()}"  # expect: REP011
