"""REP002 fixture: unguarded vs guarded telemetry calls."""


class Engine:
    def __init__(self, tracer=None, instrumentation=None):
        self.tracer = tracer
        self.instrumentation = instrumentation

    def unguarded(self):
        self.tracer.record("step")  # expect: REP002
        return 1

    def wrong_branch(self):
        if self.tracer is None:
            self.tracer.record("dead")  # expect: REP002
        return 2

    def guarded_is_not_none(self):
        if self.tracer is not None:
            self.tracer.record("ok")
        return 3

    def guarded_truthiness(self, instr=None):
        if instr:
            instr.count("ok")
        return 4

    def guarded_else(self):
        if self.tracer is None:
            pass
        else:
            self.tracer.record("ok")
        return 5

    def guarded_bailout(self):
        tracer = self.tracer
        if tracer is None:
            return 0
        tracer.record("ok")
        return 6

    def guard_does_not_cross_function(self):
        if self.tracer is not None:
            def inner():
                return self.tracer.record("x")  # expect: REP002

            return inner()
        return 7

    def span_calls_are_exempt(self, span):
        # NULL_SPAN no-ops by construction; span receivers need no guard.
        span.set_attr("k", 1)
        return 8
