"""REP010 fixture: exceptions escaping a wire connection handler."""

import asyncio


class LeakyServer:
    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, "127.0.0.1", 0
        )

    async def _handle_connection(self, reader, writer):  # expect: REP010
        payload = await reader.read(1024)
        self._process(payload)

    def _process(self, payload):
        if not payload:
            raise ValueError("empty payload")


class SealedServer:
    """Catches everything it can raise; nothing here fires."""

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle_connection, "127.0.0.1", 0
        )

    async def _handle_connection(self, reader, writer):
        try:
            payload = await reader.read(1024)
            self._process(payload)
        except ValueError:
            writer.close()

    def _process(self, payload):
        if not payload:
            raise ValueError("empty payload")
