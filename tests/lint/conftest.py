"""Harness for the golden lint fixtures.

Each ``fixtures/repNNN_bad.py`` file marks every line the rule must flag
with a trailing ``# expect: REPNNN`` comment; the harness lints the file
with only that rule (scope opened, allowlist cleared) and compares the
``(line, rule_id)`` sets exactly -- missing findings and extra findings
both fail.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Set, Tuple

import pytest

from repro.lint.config import LintConfig
from repro.lint.engine import lint_file
from repro.lint.findings import Finding
from repro.lint.registry import get_rule

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT = re.compile(r"#\s*expect:\s*(?P<rule>REP\d{3})")


def open_scope_config(rule_id: str) -> LintConfig:
    """A config that applies ``rule_id`` to *every* file (fixtures live
    outside the repro package, so default scopes would skip them)."""
    return LintConfig(scopes={rule_id: ()}, allow={rule_id: ()})


def expected_findings(fixture: Path, rule_id: str) -> Set[Tuple[int, str]]:
    """Parse ``# expect: REPNNN`` markers into ``{(line, rule_id)}``."""
    out: Set[Tuple[int, str]] = set()
    for lineno, line in enumerate(
        fixture.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _EXPECT.search(line)
        if match:
            out.add((lineno, match.group("rule")))
    assert out, f"{fixture.name} carries no # expect markers"
    return {pair for pair in out if pair[1] == rule_id}


def lint_fixture(
    name: str, rule_id: str, config: Optional[LintConfig] = None
) -> Tuple[List[Finding], int]:
    """Lint one fixture with one rule; return ``(findings, suppressed)``."""
    if config is None:
        config = open_scope_config(rule_id)
    return lint_file(FIXTURES / name, config, rules=[get_rule(rule_id)])


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES
