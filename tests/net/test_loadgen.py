"""LoadGenerator: config validation, quantiles, and clock injection."""

import asyncio
import itertools

import pytest

from repro.errors import TransportError
from repro.net.loadgen import (
    LoadGenerator,
    LoadgenConfig,
    LoadReport,
    nearest_rank,
)
from repro.net.server import AdmissionServer, WireServerConfig
from repro.service import ServiceConfig, ValidationService


class TestNearestRank:
    def test_empty_is_zero(self):
        assert nearest_rank([], 0.99) == 0.0

    def test_exact_nearest_rank_semantics(self):
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert nearest_rank(samples, 0.0) == 1.0
        assert nearest_rank(samples, 0.5) == 3.0
        assert nearest_rank(samples, 0.9) == 5.0
        assert nearest_rank(samples, 1.0) == 5.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(TransportError):
            nearest_rank([1.0], 1.5)

    def test_matches_histogram_quantile(self):
        from repro.service.metrics import Histogram

        histogram = Histogram("h", lambda *_: None)
        samples = [float(value) for value in range(1, 101)]
        for sample in samples:
            histogram.observe(sample)
        for q in (0.5, 0.9, 0.95, 0.99):
            assert nearest_rank(samples, q) == histogram.quantile(q)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "half-open"},
            {"concurrency": 0},
            {"rate": 0},
            {"warmup": -1},
            {"window": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(TransportError):
            LoadgenConfig(**kwargs)


class TestMeasurement:
    def test_injected_clock_drives_all_latency_math(self, workload):
        """With a scripted clock the report's numbers are exact."""
        pool, stream = workload
        # Monotone fake time: every clock() call advances 10ms.
        ticker = itertools.count()
        clock = lambda: next(ticker) * 0.010  # noqa: E731

        async def scenario():
            service = ValidationService(pool, ServiceConfig())
            server = AdmissionServer(service, WireServerConfig())
            host, port = await server.start()
            try:
                generator = LoadGenerator(
                    LoadgenConfig(mode="closed", concurrency=1, warmup=2),
                    clock=clock,
                )
                return await generator.run(host, port, list(stream[:10]))
            finally:
                await server.shutdown()
                service.close()

        report = asyncio.run(scenario())
        assert report.requests == 10
        assert report.warmup == 2
        assert report.measured == 8
        # One worker: clock() is called exactly twice per request
        # (start, end), so every latency is exactly one 10ms tick.
        assert report.latencies == pytest.approx([0.010] * 8)
        assert report.quantile(0.5) == pytest.approx(0.010)
        assert report.quantile(0.99) == pytest.approx(0.010)

    def test_report_render_and_json_are_consistent(self):
        report = LoadReport(
            mode="open",
            concurrency=2,
            requests=10,
            measured=8,
            warmup=2,
            accepted=6,
            rejected_by_reason={"equation": 2},
            overloaded_failures=0,
            retries=1,
            elapsed=2.0,
            rps=4.0,
            latencies=[0.001, 0.002, 0.003, 0.004],
        )
        blob = report.to_json()
        assert blob["p50"] == report.quantile(0.50)
        assert blob["p99"] == report.quantile(0.99)
        assert blob["rejected"] == {"equation": 2}
        text = report.render()
        assert "open-loop" in text
        assert "equation=2" in text
