"""AdmissionClient behaviour against scripted (misbehaving) servers.

A tiny hand-rolled asyncio server speaks just enough of the protocol to
script exact failure sequences -- N ``OVERLOADED`` answers before a
success, or total silence -- so the client's retry ladder and deadline
handling are tested deterministically, with an injected no-op sleeper
recording every backoff delay.
"""

import asyncio

import pytest

from repro.errors import (
    ProtocolError,
    RequestTimeoutError,
    TransportError,
    WireOverloadedError,
)
from repro.net import protocol
from repro.net.client import AdmissionClient
from repro.net.protocol import FrameDecoder, encode_frame
from repro.online.session import IssuanceOutcome


def run(coro):
    return asyncio.run(coro)


class ScriptedServer:
    """Protocol-speaking server whose REQUEST behaviour is scripted.

    ``script`` is a list consumed one entry per REQUEST frame:
    ``"overloaded"`` answers a wire OVERLOADED error, ``"accept"``
    answers a canned acceptance verdict, ``"silence"`` answers nothing.
    An exhausted script keeps answering ``"accept"``.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests_seen = 0
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def stop(self):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                for frame in decoder.feed(chunk):
                    await self._answer(frame, writer)
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _answer(self, frame, writer):
        if frame.msg_type == protocol.MSG_HELLO:
            writer.write(
                encode_frame(
                    protocol.MSG_HELLO_OK,
                    frame.request_id,
                    {"version": protocol.PROTOCOL_VERSION},
                )
            )
            await writer.drain()
            return
        if frame.msg_type != protocol.MSG_REQUEST:
            return
        self.requests_seen += 1
        action = self.script.pop(0) if self.script else "accept"
        if action == "silence":
            return
        if action == "overloaded":
            writer.write(
                encode_frame(
                    protocol.MSG_ERROR,
                    frame.request_id,
                    protocol.error_payload(
                        protocol.ERR_OVERLOADED, "scripted backpressure"
                    ),
                )
            )
        elif action == "internal":
            writer.write(
                encode_frame(
                    protocol.MSG_ERROR,
                    frame.request_id,
                    protocol.error_payload(
                        protocol.ERR_INTERNAL, "scripted failure"
                    ),
                )
            )
        else:
            writer.write(
                encode_frame(
                    protocol.MSG_RESPONSE,
                    frame.request_id,
                    protocol.outcome_to_payload(
                        IssuanceOutcome(
                            frame.payload["usage_id"],
                            frame.payload["count"],
                            (1,),
                            True,
                        )
                    ),
                )
            )
        await writer.drain()


class RecordingSleeper:
    """No-op async sleeper that records every requested delay."""

    def __init__(self):
        self.delays = []

    async def __call__(self, delay):
        self.delays.append(delay)


async def _client(host, port, **kwargs):
    client = AdmissionClient(host, port, **kwargs)
    await client.connect()
    return client


class TestRetry:
    def test_retries_through_scripted_overload_then_succeeds(self, workload):
        _pool, stream = workload

        async def scenario():
            server = ScriptedServer(["overloaded", "overloaded", "accept"])
            host, port = await server.start()
            sleeper = RecordingSleeper()
            try:
                client = await _client(
                    host, port, retries=4, sleep=sleeper, jitter_seed=7
                )
                outcome = await client.request(stream[0])
                assert outcome.accepted
                assert outcome.usage_id == stream[0].license_id
                assert server.requests_seen == 3
                assert client.stats.retries == 2
                assert client.stats.overloaded == 2
                await client.close()
            finally:
                await server.stop()
            return sleeper.delays

        delays = run(scenario())
        assert len(delays) == 2
        # Exponential ladder: attempt 1's ceiling is base*2, attempt 2's
        # is base*4; jitter keeps each in [0.5, 1.5) of its ceiling.
        assert 0.5 * 0.02 <= delays[0] <= 1.5 * 0.02
        assert 0.5 * 0.04 <= delays[1] <= 1.5 * 0.04

    def test_retry_budget_exhaustion_raises_wire_overloaded(self, workload):
        _pool, stream = workload

        async def scenario():
            server = ScriptedServer(["overloaded"] * 10)
            host, port = await server.start()
            sleeper = RecordingSleeper()
            try:
                client = await _client(host, port, retries=2, sleep=sleeper)
                with pytest.raises(WireOverloadedError) as excinfo:
                    await client.request(stream[0])
                assert excinfo.value.attempts == 3
                assert server.requests_seen == 3
                assert len(sleeper.delays) == 2
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_jitter_is_deterministic_per_seed(self, workload):
        _pool, stream = workload

        async def ladder(seed):
            server = ScriptedServer(["overloaded"] * 3 + ["accept"])
            host, port = await server.start()
            sleeper = RecordingSleeper()
            try:
                client = await _client(
                    host, port, retries=5, sleep=sleeper, jitter_seed=seed
                )
                await client.request(stream[0])
                await client.close()
            finally:
                await server.stop()
            return sleeper.delays

        assert run(ladder(3)) == run(ladder(3))
        assert run(ladder(3)) != run(ladder(4))


class TestDeadlines:
    def test_silent_server_raises_timeout(self, workload):
        _pool, stream = workload

        async def scenario():
            server = ScriptedServer(["silence"])
            host, port = await server.start()
            try:
                client = await _client(host, port, timeout=0.1, retries=0)
                with pytest.raises(RequestTimeoutError) as excinfo:
                    await client.request(stream[0])
                assert excinfo.value.timeout == pytest.approx(0.1)
                assert client.stats.timeouts == 1
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_request_many_times_out_on_silence(self, workload):
        _pool, stream = workload

        async def scenario():
            server = ScriptedServer(["accept", "silence", "accept"])
            host, port = await server.start()
            try:
                client = await _client(host, port, timeout=0.1, retries=0)
                with pytest.raises(RequestTimeoutError):
                    await client.request_many(list(stream[:3]), window=1)
                await client.close()
            finally:
                await server.stop()

        run(scenario())


class TestErrors:
    def test_internal_error_is_not_retried(self, workload):
        _pool, stream = workload

        async def scenario():
            server = ScriptedServer(["internal"])
            host, port = await server.start()
            try:
                client = await _client(host, port, retries=3)
                with pytest.raises(TransportError, match="internal"):
                    await client.request(stream[0])
                assert server.requests_seen == 1
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_double_connect_rejected(self, workload):
        async def scenario():
            server = ScriptedServer([])
            host, port = await server.start()
            try:
                client = await _client(host, port)
                with pytest.raises(TransportError, match="already connected"):
                    await client.connect()
                await client.close()
            finally:
                await server.stop()

        run(scenario())

    def test_send_after_close_rejected(self, workload):
        _pool, stream = workload

        async def scenario():
            server = ScriptedServer([])
            host, port = await server.start()
            try:
                client = await _client(host, port)
                await client.close()
                with pytest.raises(TransportError, match="not connected"):
                    await client.request(stream[0])
            finally:
                await server.stop()

        run(scenario())

    def test_bad_config_rejected(self):
        with pytest.raises(TransportError, match="timeout"):
            AdmissionClient("h", 1, timeout=0)
        with pytest.raises(TransportError, match="retries"):
            AdmissionClient("h", 1, retries=-1)

    def test_handshake_against_unsupported_server(self, workload):
        async def scenario():
            # A scripted server that negotiates a version the client
            # cannot use must fail the handshake loudly.
            class BadVersionServer(ScriptedServer):
                async def _answer(self, frame, writer):
                    if frame.msg_type == protocol.MSG_HELLO:
                        writer.write(
                            encode_frame(
                                protocol.MSG_HELLO_OK,
                                frame.request_id,
                                {"version": 99},
                            )
                        )
                        await writer.drain()

            server = BadVersionServer([])
            host, port = await server.start()
            try:
                client = AdmissionClient(host, port)
                with pytest.raises(ProtocolError, match="version"):
                    await client.connect()
                await client.close()
            finally:
                await server.stop()

        run(scenario())


class TestPipelining:
    def test_request_many_preserves_stream_order_with_retries(self, workload):
        _pool, stream = workload

        async def scenario():
            # Every third request is overloaded once before success: the
            # retry sweep must still return verdicts in stream order.
            script = []
            for index in range(12):
                if index % 3 == 0:
                    script.append("overloaded")
                script.append("accept")
            server = ScriptedServer(script)
            host, port = await server.start()
            try:
                client = await _client(host, port, sleep=RecordingSleeper())
                outcomes = await client.request_many(
                    list(stream[:12]), window=4
                )
                assert [outcome.usage_id for outcome in outcomes] == [
                    usage.license_id for usage in stream[:12]
                ]
                await client.close()
            finally:
                await server.stop()

        run(scenario())
