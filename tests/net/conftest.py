"""Shared fixtures for the wire-layer tests.

Everything here runs on plain ``asyncio.run`` (the repository has no
async test plugin); each test owns one short-lived event loop in which
it starts a real localhost server, drives it, and shuts it down.
"""

import pytest

from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    """A small pool plus a stream tight enough to include rejections."""
    config = WorkloadConfig(
        n_licenses=12,
        seed=5,
        n_records=0,
        target_groups=3,
        aggregate_range=(60, 150),
        count_range=(10, 30),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = tuple(generator.issue_stream(pool, 120))
    return pool, stream
