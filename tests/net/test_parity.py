"""Socket-vs-in-process verdict parity: the wire layer is pure transport.

The repository's core serving guarantee is that verdicts depend only on
per-group submission order.  These tests pin down that putting a TCP
socket, JSON codec, and framing between the client and the service
changes *nothing*: byte-identical verdict streams, identical logs, and
a clean :func:`repro.matching.audit.cross_check` over the same queries.
"""

import asyncio
import json

from repro.matching.audit import cross_check
from repro.net import protocol
from repro.net.client import AdmissionClient
from repro.net.loadgen import LoadGenerator, LoadgenConfig
from repro.net.server import AdmissionServer, WireServerConfig
from repro.network.node import DistributorNode
from repro.service import ServiceConfig, ValidationService


def run(coro):
    return asyncio.run(coro)


def signature(outcomes):
    """Byte-level verdict signature (the wire payload, canonical JSON)."""
    return [
        json.dumps(protocol.outcome_to_payload(outcome), sort_keys=True)
        for outcome in outcomes
    ]


def serve_in_process(pool, stream, **config_kwargs):
    service = ValidationService(pool, ServiceConfig(**config_kwargs))
    outcomes = service.process(stream)
    log = list(service.log)
    service.close()
    return outcomes, log


def serve_over_wire(pool, stream, *, pipelined, **config_kwargs):
    async def scenario():
        service = ValidationService(pool, ServiceConfig(**config_kwargs))
        server = AdmissionServer(service, WireServerConfig())
        host, port = await server.start()
        try:
            async with AdmissionClient(host, port) as client:
                if pipelined:
                    outcomes = await client.request_many(list(stream))
                else:
                    outcomes = [
                        await client.request(usage) for usage in stream
                    ]
        finally:
            await server.shutdown()
        log = list(service.log)
        service.close()
        return outcomes, log

    return run(scenario())


class TestVerdictParity:
    def test_sequential_wire_matches_in_process(self, workload):
        pool, stream = workload
        local, local_log = serve_in_process(pool, stream)
        wire, wire_log = serve_over_wire(pool, stream, pipelined=False)
        assert signature(wire) == signature(local)
        assert wire_log == local_log
        # The tight workload must actually exercise both verdicts.
        accepted = sum(outcome.accepted for outcome in local)
        assert 0 < accepted < len(stream)

    def test_pipelined_wire_matches_in_process(self, workload):
        pool, stream = workload
        local, local_log = serve_in_process(pool, stream)
        wire, wire_log = serve_over_wire(pool, stream, pipelined=True)
        assert signature(wire) == signature(local)
        assert wire_log == local_log

    def test_parity_across_shard_counts_and_kernels(self, workload):
        pool, stream = workload
        reference = signature(serve_in_process(pool, stream)[0])
        for kwargs in (
            {"shards": 1},
            {"shards": 4},
            {"kernel": "dense"},
        ):
            wire, _ = serve_over_wire(
                pool, stream, pipelined=True, **kwargs
            )
            assert signature(wire) == reference, f"diverged for {kwargs}"

    def test_loadgen_verdicts_match_in_process_totals(self, workload):
        pool, stream = workload
        local, _ = serve_in_process(pool, stream)

        async def scenario():
            service = ValidationService(pool, ServiceConfig())
            server = AdmissionServer(service, WireServerConfig())
            host, port = await server.start()
            try:
                generator = LoadGenerator(
                    # One worker so per-group arrival order is exactly
                    # the stream order the in-process run used.
                    LoadgenConfig(mode="closed", concurrency=1)
                )
                report = await generator.run(host, port, list(stream))
            finally:
                await server.shutdown()
                service.close()
            return report

        report = run(scenario())
        assert report.accepted == sum(o.accepted for o in local)
        assert report.measured == len(stream)
        rejected = {
            reason: sum(
                1
                for outcome in local
                if not outcome.accepted
                and (outcome.rejection_reason or "unknown") == reason
            )
            for reason in report.rejected_by_reason
        }
        assert report.rejected_by_reason == rejected


class TestRoundTripAudit:
    def test_wire_round_tripped_queries_pass_matcher_audit(self, workload):
        """Decoded wire requests match exactly like the originals."""
        pool, stream = workload
        round_tripped = [
            protocol.usage_from_payload(
                json.loads(
                    json.dumps(protocol.usage_to_payload(usage))
                )
            )
            for usage in stream
        ]
        checked, disagreements = cross_check(pool, round_tripped)
        assert checked == len(stream)
        assert disagreements == []


class TestNodeTransport:
    def test_tcp_transport_matches_local(self, workload):
        pool, stream = workload

        node_local = DistributorNode("local")
        for lic in pool:
            node_local.receive(lic)
        local_out, local_service = node_local.serve_stream(list(stream))
        assert local_service is not None

        async def scenario():
            service = ValidationService(pool, ServiceConfig())
            server = AdmissionServer(service, WireServerConfig())
            host, port = await server.start()

            node_tcp = DistributorNode("tcp")
            for lic in pool:
                node_tcp.receive(lic)

            # serve_stream(transport="tcp") calls asyncio.run itself, so
            # hop it onto a worker thread from this loop.
            def drive():
                return node_tcp.serve_stream(
                    list(stream), transport="tcp", address=(host, port)
                )

            outcomes, returned_service = await asyncio.to_thread(drive)
            await server.shutdown()
            service.close()
            return node_tcp, outcomes, returned_service

        node_tcp, tcp_out, returned_service = run(scenario())
        assert returned_service is None
        assert signature(tcp_out) == signature(local_out)
        assert len(node_tcp.log) == sum(o.accepted for o in tcp_out)
        assert list(node_tcp.log) == list(node_local.log)

    def test_unknown_transport_rejected(self, workload):
        import pytest

        from repro.errors import ValidationError

        pool, stream = workload
        node = DistributorNode("n")
        for lic in pool:
            node.receive(lic)
        with pytest.raises(ValidationError, match="transport"):
            node.serve_stream(list(stream), transport="carrier-pigeon")
        with pytest.raises(ValidationError, match="address"):
            node.serve_stream(list(stream), transport="tcp")
