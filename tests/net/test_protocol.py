"""Unit and property tests for the pure wire-protocol codec layer."""

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.geometry.box import Box
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.license import UsageLicense
from repro.licenses.permission import Permission
from repro.net import protocol
from repro.net.protocol import (
    Frame,
    FrameDecoder,
    decode_frame,
    encode_frame,
    outcome_from_payload,
    outcome_to_payload,
    usage_from_payload,
    usage_to_payload,
)
from repro.online.session import IssuanceOutcome

ALL_TYPES = (
    protocol.MSG_HELLO,
    protocol.MSG_HELLO_OK,
    protocol.MSG_REQUEST,
    protocol.MSG_RESPONSE,
    protocol.MSG_ERROR,
    protocol.MSG_PING,
    protocol.MSG_PONG,
)


class TestFraming:
    def test_round_trip_every_message_type(self):
        for msg_type in ALL_TYPES:
            wire = encode_frame(msg_type, 42, {"k": [1, 2.5, "x"]})
            frame, consumed = decode_frame(wire)
            assert consumed == len(wire)
            assert frame == Frame(
                protocol.PROTOCOL_VERSION, msg_type, 42, {"k": [1, 2.5, "x"]}
            )

    def test_empty_payload_defaults_to_object(self):
        frame, _ = decode_frame(encode_frame(protocol.MSG_PING, 1))
        assert frame.payload == {}

    def test_request_id_bounds(self):
        wire = encode_frame(protocol.MSG_PING, 0xFFFFFFFF)
        frame, _ = decode_frame(wire)
        assert frame.request_id == 0xFFFFFFFF
        with pytest.raises(ProtocolError):
            encode_frame(protocol.MSG_PING, 0xFFFFFFFF + 1)
        with pytest.raises(ProtocolError):
            encode_frame(protocol.MSG_PING, -1)

    def test_unknown_type_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            encode_frame(0x7F, 1)
        wire = bytearray(encode_frame(protocol.MSG_PING, 1))
        wire[3] = 0x7F
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_frame(bytes(wire))

    def test_incomplete_frame_is_not_an_error(self):
        wire = encode_frame(protocol.MSG_REQUEST, 9, {"a": 1})
        for cut in range(len(wire)):
            frame, consumed = decode_frame(wire[:cut])
            assert frame is None and consumed == 0

    def test_bad_magic_raises(self):
        wire = b"XX" + encode_frame(protocol.MSG_PING, 1)[2:]
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(wire)

    def test_unsupported_version_raises(self):
        wire = bytearray(encode_frame(protocol.MSG_PING, 1))
        wire[2] = 99
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(wire))
        with pytest.raises(ProtocolError):
            encode_frame(protocol.MSG_PING, 1, version=99)

    def test_oversized_length_field_is_corruption(self):
        header = struct.Struct(">2sBBII").pack(
            protocol.MAGIC,
            protocol.PROTOCOL_VERSION,
            protocol.MSG_PING,
            1,
            protocol.MAX_PAYLOAD_BYTES + 1,
        )
        with pytest.raises(ProtocolError, match="ceiling"):
            decode_frame(header)

    def test_payload_over_ceiling_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="ceiling"):
            encode_frame(
                protocol.MSG_REQUEST,
                1,
                {"blob": "x" * (protocol.MAX_PAYLOAD_BYTES + 1)},
            )

    def test_undecodable_json_payload_raises(self):
        body = b"{not json"
        header = struct.Struct(">2sBBII").pack(
            protocol.MAGIC,
            protocol.PROTOCOL_VERSION,
            protocol.MSG_PING,
            1,
            len(body),
        )
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(header + body)

    def test_non_object_payload_raises(self):
        body = json.dumps([1, 2]).encode()
        header = struct.Struct(">2sBBII").pack(
            protocol.MAGIC,
            protocol.PROTOCOL_VERSION,
            protocol.MSG_PING,
            1,
            len(body),
        )
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(header + body)

    def test_unserializable_payload_raises(self):
        with pytest.raises(ProtocolError, match="unserializable"):
            encode_frame(protocol.MSG_REQUEST, 1, {"bad": object()})


class TestFrameDecoder:
    def test_byte_by_byte_feed(self):
        frames_in = [
            encode_frame(protocol.MSG_PING, i, {"i": i}) for i in range(5)
        ]
        wire = b"".join(frames_in)
        decoder = FrameDecoder()
        out = []
        for i in range(len(wire)):
            out.extend(decoder.feed(wire[i : i + 1]))
        assert [frame.request_id for frame in out] == [0, 1, 2, 3, 4]
        decoder.finish()
        assert decoder.pending_bytes == 0

    def test_truncated_stream_raises_at_eof(self):
        wire = encode_frame(protocol.MSG_REQUEST, 3, {"a": 1})
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-2]) == []
        with pytest.raises(ProtocolError, match="mid-frame"):
            decoder.finish()

    def test_corruption_mid_stream_raises_on_feed(self):
        good = encode_frame(protocol.MSG_PING, 1)
        decoder = FrameDecoder()
        assert len(decoder.feed(good)) == 1
        with pytest.raises(ProtocolError):
            decoder.feed(b"XX" + good[2:])


class TestNegotiation:
    def test_picks_highest_mutual(self):
        assert protocol.negotiate_version([1, 0, 99]) == 1

    def test_no_mutual_version_raises(self):
        with pytest.raises(ProtocolError, match="no mutually supported"):
            protocol.negotiate_version([99, "x", None])

    def test_hello_payload_sorts_and_dedups(self):
        payload = protocol.hello_payload(versions=(1, 1))
        assert payload["versions"] == [1]


def _usage(count=3, atoms=("a", "b")):
    return UsageLicense(
        license_id="LU1",
        content_id="K",
        permission=Permission("play"),
        box=Box([Interval(0.0, 10.0), DiscreteSet(atoms)]),
        count=count,
    )


class TestUsageCodec:
    def test_round_trip_mixed_box(self):
        usage = _usage()
        rebuilt = usage_from_payload(usage_to_payload(usage))
        assert rebuilt.license_id == usage.license_id
        assert rebuilt.content_id == usage.content_id
        assert rebuilt.permission == usage.permission
        assert rebuilt.count == usage.count
        assert rebuilt.box == usage.box

    def test_json_round_trip_through_frame(self):
        usage = _usage(count=7)
        wire = encode_frame(protocol.MSG_REQUEST, 1, usage_to_payload(usage))
        frame, _ = decode_frame(wire)
        assert usage_from_payload(frame.payload).box == usage.box

    @pytest.mark.parametrize("missing", ["usage_id", "permission", "box"])
    def test_missing_field_raises(self, missing):
        payload = usage_to_payload(_usage())
        del payload[missing]
        with pytest.raises(ProtocolError):
            usage_from_payload(payload)

    def test_bad_permission_raises(self):
        payload = usage_to_payload(_usage())
        payload["permission"] = "teleport"
        with pytest.raises(ProtocolError, match="permission"):
            usage_from_payload(payload)

    def test_bool_count_rejected(self):
        payload = usage_to_payload(_usage())
        payload["count"] = True
        with pytest.raises(ProtocolError, match="count"):
            usage_from_payload(payload)

    def test_bad_extent_kind_raises(self):
        payload = usage_to_payload(_usage())
        payload["box"][0] = {"kind": "sphere"}
        with pytest.raises(ProtocolError, match="extent kind"):
            usage_from_payload(payload)

    def test_invalid_geometry_wrapped_as_protocol_error(self):
        payload = usage_to_payload(_usage())
        payload["box"][0] = {"kind": "interval", "low": 10, "high": 0}
        with pytest.raises(ProtocolError):
            usage_from_payload(payload)


class TestOutcomeCodec:
    def test_round_trip_accepted_and_rejected(self):
        for outcome in (
            IssuanceOutcome("u1", 3, (1, 2), True),
            IssuanceOutcome(
                "u2", 5, (), False, "instance", rejection_detail="no match"
            ),
        ):
            assert outcome_from_payload(outcome_to_payload(outcome)) == outcome

    def test_bad_license_set_raises(self):
        payload = outcome_to_payload(IssuanceOutcome("u", 1, (1,), True))
        payload["license_set"] = [1, True]
        with pytest.raises(ProtocolError, match="license_set"):
            outcome_from_payload(payload)

    def test_non_bool_accepted_raises(self):
        payload = outcome_to_payload(IssuanceOutcome("u", 1, (1,), True))
        payload["accepted"] = 1
        with pytest.raises(ProtocolError, match="accepted"):
            outcome_from_payload(payload)


json_scalars = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)


class TestFramingProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        msg_type=st.sampled_from(ALL_TYPES),
        request_id=st.integers(min_value=0, max_value=0xFFFFFFFF),
        payload=st.dictionaries(st.text(max_size=10), json_values, max_size=5),
    )
    def test_encode_decode_round_trip(self, msg_type, request_id, payload):
        frame, consumed = decode_frame(encode_frame(msg_type, request_id, payload))
        assert frame.msg_type == msg_type
        assert frame.request_id == request_id
        assert frame.payload == json.loads(json.dumps(payload))
        assert consumed == len(encode_frame(msg_type, request_id, payload))

    @settings(max_examples=30, deadline=None)
    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            min_size=1,
            max_size=8,
        ),
        chunk=st.integers(min_value=1, max_value=40),
    )
    def test_chunked_stream_reassembles_in_order(self, ids, chunk):
        wire = b"".join(
            encode_frame(protocol.MSG_PING, request_id, {"n": i})
            for i, request_id in enumerate(ids)
        )
        decoder = FrameDecoder()
        out = []
        for offset in range(0, len(wire), chunk):
            out.extend(decoder.feed(wire[offset : offset + chunk]))
        decoder.finish()
        assert [frame.request_id for frame in out] == ids
        assert [frame.payload["n"] for frame in out] == list(range(len(ids)))
