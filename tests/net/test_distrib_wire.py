"""Protocol v2 end to end: trace propagation, timing echo, admin channel.

The cross-process contract under test: one socket request is one trace
(the server's ``request`` subtree parents under the client's
``wire_request`` span once the journals are assembled), verdicts are
byte-identical with tracing on or off, v1 peers negotiate down and see
none of it, and a live server answers introspection queries over the
same port.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError, TransportError
from repro.net import protocol
from repro.net.client import AdmissionClient
from repro.net.loadgen import LoadGenerator, LoadgenConfig
from repro.net.server import AdmissionServer, WireServerConfig
from repro.obs.distrib import MAX_ID_LENGTH, ServerTiming, TraceContext, assemble
from repro.obs.trace import SamplingConfig, Tracer
from repro.service import ServiceConfig, ValidationService


def run(coro):
    return asyncio.run(coro)


def signature(outcomes):
    return [
        json.dumps(protocol.outcome_to_payload(outcome), sort_keys=True)
        for outcome in outcomes
    ]


async def _start_server(pool, *, tracer=None, monitor=None, **config_kwargs):
    service = ValidationService(
        pool, ServiceConfig(), tracer=tracer, monitor=monitor
    )
    server = AdmissionServer(service, WireServerConfig(**config_kwargs))
    host, port = await server.start()
    return server, service, host, port


_ID_ALPHABET = (
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789._:-"
)
_ids = st.text(alphabet=_ID_ALPHABET, min_size=1, max_size=MAX_ID_LENGTH)


class TestTraceContextCodec:
    @settings(max_examples=60, deadline=None)
    @given(trace_id=_ids, span_id=_ids)
    def test_round_trip(self, trace_id, span_id):
        context = TraceContext(trace_id, span_id)
        payload = {"trace": protocol.trace_context_to_payload(context)}
        assert protocol.trace_context_from_payload(payload) == context

    def test_absent_is_none(self):
        assert protocol.trace_context_from_payload({}) is None

    @pytest.mark.parametrize(
        "entry",
        [
            "not-a-dict",
            17,
            [],
            {"trace_id": "t0"},
            {"span_id": "s0"},
            {"trace_id": "", "span_id": "s0"},
            {"trace_id": "t0", "span_id": 5},
            {"trace_id": "t 0", "span_id": "s0"},
            {"trace_id": "x" * (MAX_ID_LENGTH + 1), "span_id": "s0"},
        ],
    )
    def test_malformed_raises(self, entry):
        with pytest.raises(ProtocolError):
            protocol.trace_context_from_payload({"trace": entry})


class TestTimingCodec:
    @settings(max_examples=40, deadline=None)
    @given(
        phases=st.tuples(*[st.integers(min_value=0, max_value=10**9)] * 4),
        shard_id=st.integers(min_value=-1, max_value=1024),
        kernel=st.sampled_from(["tree", "dense", "none"]),
    )
    def test_round_trip(self, phases, shard_id, kernel):
        timing = ServerTiming(*phases, shard_id=shard_id, kernel=kernel)
        payload = {"timing": protocol.timing_to_payload(timing)}
        assert protocol.timing_from_payload(payload) == timing

    def test_absent_is_none(self):
        assert protocol.timing_from_payload({}) is None

    @pytest.mark.parametrize(
        "entry",
        [
            "text",
            {"queue_us": 1},
            {
                "queue_us": -1, "match_us": 0, "admission_us": 0,
                "revalidate_us": 0, "shard_id": 0, "kernel": "tree",
            },
            {
                "queue_us": 0, "match_us": 0, "admission_us": 0,
                "revalidate_us": 0, "shard_id": "zero", "kernel": "tree",
            },
            {
                "queue_us": 0, "match_us": 0, "admission_us": 0,
                "revalidate_us": 0, "shard_id": 0, "kernel": "",
            },
        ],
    )
    def test_malformed_raises(self, entry):
        with pytest.raises(ProtocolError):
            protocol.timing_from_payload({"timing": entry})


class TestAdminCodec:
    @pytest.mark.parametrize("query", protocol.ADMIN_QUERIES)
    def test_round_trip(self, query):
        limit = 5 if query in ("slowest", "events") else None
        payload = protocol.admin_payload(query, limit=limit)
        assert protocol.admin_query_from_payload(payload) == (query, limit)

    def test_unknown_query_raises(self):
        with pytest.raises(ProtocolError, match="unknown admin query"):
            protocol.admin_payload("reboot")
        with pytest.raises(ProtocolError, match="unknown admin query"):
            protocol.admin_query_from_payload({"query": "reboot"})

    def test_limit_rules(self):
        with pytest.raises(ProtocolError):
            protocol.admin_payload("metrics", limit=3)
        with pytest.raises(ProtocolError):
            protocol.admin_payload("events", limit=0)
        with pytest.raises(ProtocolError):
            protocol.admin_payload(
                "events", limit=protocol.MAX_ADMIN_LIMIT + 1
            )


class TestCorruptContextOnTheWire:
    def test_corrupt_trace_is_bad_request_not_disconnect(self, workload):
        pool, stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                async with AdmissionClient(host, port) as client:
                    payload = protocol.usage_to_payload(stream[0])
                    payload["trace"] = {"trace_id": "", "span_id": "s0"}
                    request_id = client._allocate_id()
                    future = client._register(request_id)
                    await client._send(
                        protocol.encode_frame(
                            protocol.MSG_REQUEST, request_id, payload, version=2
                        )
                    )
                    frame = await client._await_frame(future, request_id)
                    assert frame.msg_type == protocol.MSG_ERROR
                    assert frame.payload["code"] == protocol.ERR_BAD_REQUEST
                    # The connection survives and serves the fixed request.
                    outcome = await client.request(stream[0])
                    assert outcome is not None
                errors = service.metrics.counter("wire_requests_total")
                assert errors.value(("bad_request",)) == 1
            finally:
                await server.shutdown()
                service.close()

        run(scenario())


class TestVersionNegotiation:
    def test_v1_client_negotiates_down_and_gets_no_timing(self, workload):
        pool, stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                client = AdmissionClient(host, port, protocol_versions=(1,))
                info = await client.connect()
                assert info["version"] == 1
                assert client.negotiated_version == 1
                result = await client.call(stream[0])
                assert result.timing is None
                assert result.trace_id is None
                with pytest.raises(TransportError, match="protocol-v2"):
                    await client.admin("metrics")
                await client.close()
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_v2_client_gets_timing_echo(self, workload):
        pool, stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                async with AdmissionClient(host, port) as client:
                    assert client.negotiated_version == 2
                    result = await client.call(stream[0])
                    assert result.timing is not None
                    assert result.timing.total_us >= 0
                    assert result.timing.kernel
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_bad_protocol_versions_rejected(self):
        with pytest.raises(TransportError):
            AdmissionClient("h", 1, protocol_versions=())
        with pytest.raises(TransportError):
            AdmissionClient("h", 1, protocol_versions=(9,))


class TestAdminChannel:
    def test_live_queries(self, workload):
        pool, stream = workload

        async def scenario():
            from repro.obs.monitor import Monitor, MonitorConfig

            tracer = Tracer()
            monitor = Monitor(MonitorConfig())
            server, service, host, port = await _start_server(
                pool, tracer=tracer, monitor=monitor
            )
            try:
                async with AdmissionClient(host, port) as client:
                    for usage in stream[:8]:
                        await client.request(usage)

                    metrics = await client.admin("metrics")
                    assert metrics["query"] == "metrics"
                    assert "counters" in metrics["data"]

                    health = await client.admin("health")
                    wire = health["data"]["wire"]
                    assert wire["requests_served"] == 8
                    assert wire["in_flight"] == 0
                    assert wire["timing_echo"] is True
                    names = [
                        entry["name"]
                        for entry in health["data"]["monitor"]["indicators"]
                    ]
                    assert "wire_saturation" in names

                    slo = await client.admin("slo")
                    assert isinstance(slo["data"], list)

                    slowest = await client.admin("slowest", limit=3)
                    assert len(slowest["data"]) == 3
                    durations = [
                        entry["duration"] for entry in slowest["data"]
                    ]
                    assert durations == sorted(durations, reverse=True)

                    tail = await client.admin("events")
                    assert isinstance(tail["data"], list)
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_admin_zero_data_queries_answer_empty(self, workload):
        """A server with no tracer, events, or monitor answers the
        observability queries with empty data, not errors."""
        pool, _stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                async with AdmissionClient(host, port) as client:
                    slowest = await client.admin("slowest", limit=5)
                    assert slowest["data"] == []
                    tail = await client.admin("events")
                    assert tail["data"] == []
                    slo = await client.admin("slo")
                    assert slo["data"] == []
                    health = await client.admin("health")
                    assert health["data"]["monitor"] is None
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_admin_before_hello_is_rejected(self, workload):
        pool, _stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    protocol.encode_frame(
                        protocol.MSG_ADMIN,
                        1,
                        protocol.admin_payload("metrics"),
                        version=1,
                    )
                )
                await writer.drain()
                decoder = protocol.FrameDecoder()
                frames = decoder.feed(await reader.read(4096))
                assert frames[0].msg_type == protocol.MSG_ERROR
                writer.close()
                try:
                    await writer.wait_closed()
                except ConnectionError:
                    pass
            finally:
                await server.shutdown()
                service.close()

        run(scenario())


class TestCrossProcessAssembly:
    def _journals(self, pool, stream, executor):
        client_tracer = Tracer(SamplingConfig())
        server_tracer = Tracer(SamplingConfig())

        async def scenario():
            service = ValidationService(
                pool, ServiceConfig(executor=executor), tracer=server_tracer
            )
            server = AdmissionServer(service, WireServerConfig())
            host, port = await server.start()
            try:
                async with AdmissionClient(
                    host, port, tracer=client_tracer
                ) as client:
                    for usage in stream:
                        await client.request(usage)
            finally:
                await server.shutdown()
            service.close()

        run(scenario())
        return client_tracer.records(), server_tracer.records()

    def _tree_signature(self, merged):
        """(trace, name, parent-name) triples -- id-free tree shape."""
        by_id = {record.span_id: record for record in merged.records}
        return sorted(
            (
                record.trace_id,
                record.name,
                by_id[record.parent_id].name
                if record.parent_id in by_id
                else None,
            )
            for record in merged.records
        )

    def test_single_request_is_one_rooted_tree(self, workload):
        pool, stream = workload
        client_records, server_records = self._journals(
            pool, stream[:1], "serial"
        )
        merged = assemble(client_records, server_records)
        assert merged.matched_pairs == 1
        assert merged.cross_traces == 1
        shared = [
            record
            for record in merged.records
            if record.trace_id == client_records[0].trace_id
        ]
        roots = [record for record in shared if record.parent_id is None]
        assert len(roots) == 1
        assert roots[0].name == "wire_request"
        children = {
            record.parent_id
            for record in shared
            if record.parent_id is not None
        }
        # Every non-root shared span parents inside the shared trace.
        ids = {record.span_id for record in shared}
        assert children <= ids
        names = {record.name for record in shared}
        assert {"wire_request", "request"} <= names

    @pytest.mark.parametrize(
        "executor",
        ["serial", "thread", "process", "process-roundtrip", "resident"],
    )
    def test_stable_across_executors(self, workload, executor):
        pool, stream = workload
        client_records, server_records = self._journals(
            pool, stream[:12], executor
        )
        merged = assemble(client_records, server_records)
        assert merged.matched_pairs == 12
        assert merged.cross_traces == 12
        if not hasattr(self, "_baseline"):
            type(self)._baseline = {}
        baseline = type(self)._baseline
        ids = sorted(
            (record.trace_id, record.span_id, record.parent_id, record.name)
            for record in merged.records
            if record.name in ("wire_request", "request")
        )
        shape = self._tree_signature(merged)
        key = "wire"
        if key not in baseline:
            baseline[key] = (ids, shape)
        else:
            assert baseline[key][0] == ids  # stable ids across executors
            assert baseline[key][1] == shape


class TestVerdictParityWithTracing:
    def test_byte_identical_with_tracing_on_or_off(self, workload):
        pool, stream = workload

        def serve(tracer, client_tracer):
            async def scenario():
                service = ValidationService(
                    pool, ServiceConfig(), tracer=tracer
                )
                server = AdmissionServer(service, WireServerConfig())
                host, port = await server.start()
                try:
                    async with AdmissionClient(
                        host, port, tracer=client_tracer
                    ) as client:
                        return [
                            await client.request(usage)
                            for usage in stream[:40]
                        ]
                finally:
                    await server.shutdown()
                    service.close()

            return run(scenario())

        untraced = serve(None, None)
        traced = serve(Tracer(), Tracer())
        assert signature(traced) == signature(untraced)


class TestLoadgenPhases:
    def test_traced_report_has_phases_and_exemplars(self, workload):
        pool, stream = workload

        async def scenario():
            service = ValidationService(pool, ServiceConfig())
            server = AdmissionServer(service, WireServerConfig())
            host, port = await server.start()
            try:
                tracer = Tracer()
                load = LoadGenerator(
                    LoadgenConfig(concurrency=2, retries=6), tracer=tracer
                )
                report = await load.run(host, port, stream[:30])
                measured = report.measured
                assert report.timed == measured
                means = report.phase_means_us()
                assert set(means) == {
                    "queue_us", "match_us", "admission_us",
                    "revalidate_us", "wire",
                }
                payload = report.to_json()
                assert payload["timed"] == measured
                assert payload["exemplars"]
                assert all(
                    entry["trace_id"].startswith("t")
                    for entry in payload["exemplars"]
                )
                assert len(tracer.records()) >= measured
                assert "server phases" in report.render()
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_v1_loadgen_reports_no_phases(self, workload):
        pool, stream = workload

        async def scenario():
            service = ValidationService(pool, ServiceConfig())
            server = AdmissionServer(service, WireServerConfig())
            host, port = await server.start()
            try:
                load = LoadGenerator(
                    LoadgenConfig(concurrency=2, retries=6),
                    protocol_versions=(1,),
                )
                report = await load.run(host, port, stream[:20])
                assert report.timed == 0
                assert report.phase_means_us() == {}
                assert report.to_json()["phases_us"] == {}
            finally:
                await server.shutdown()
                service.close()

        run(scenario())
