"""AdmissionServer behaviour: backpressure, drain, telemetry, errors."""

import asyncio

import pytest

from repro.errors import ServiceError, TransportError, WireOverloadedError
from repro.net import protocol
from repro.net.client import AdmissionClient
from repro.net.protocol import FrameDecoder, encode_frame
from repro.net.server import AdmissionServer, WireServerConfig
from repro.obs.events import (
    EVENT_CONN_CLOSE,
    EVENT_CONN_OPEN,
    EVENT_DRAIN,
    EventLog,
)
from repro.service import ServiceConfig, ValidationService


def run(coro):
    return asyncio.run(coro)


async def _start_server(pool, *, events=None, **config_kwargs):
    service = ValidationService(pool, ServiceConfig(), events=events)
    server = AdmissionServer(
        service, WireServerConfig(**config_kwargs), events=events
    )
    host, port = await server.start()
    return server, service, host, port


class TestConfigValidation:
    def test_bad_max_inflight(self):
        with pytest.raises(ServiceError, match="max_inflight"):
            WireServerConfig(max_inflight=0)

    def test_bad_read_limit(self):
        with pytest.raises(ServiceError, match="read_limit"):
            WireServerConfig(read_limit=4)


class TestBasicServing:
    def test_handshake_reports_pool_shape(self, workload):
        pool, _stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                client = AdmissionClient(host, port)
                info = await client.connect()
                assert info["version"] == protocol.PROTOCOL_VERSION
                assert info["licenses"] == len(pool)
                assert info["groups"] == service.group_count
                assert client.negotiated_version == protocol.PROTOCOL_VERSION
                await client.ping()
                await client.close()
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_verdicts_flow_and_counters_advance(self, workload):
        pool, stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                async with AdmissionClient(host, port) as client:
                    outcomes = [
                        await client.request(usage) for usage in stream[:20]
                    ]
                assert len(outcomes) == 20
                assert server.requests_served == 20
                assert server.in_flight == 0
                counters = service.metrics.counter("wire_requests_total")
                assert counters.value(("submitted",)) == 20
                return outcomes
            finally:
                await server.shutdown()
                service.close()

        outcomes = run(scenario())
        assert any(outcome.accepted for outcome in outcomes)


class TestBackpressure:
    def test_window_saturation_yields_overloaded_not_disconnect(self, workload):
        pool, stream = workload

        async def scenario():
            # auto_flush off: submissions accumulate until we flush, so
            # the 4-slot window saturates deterministically.
            server, service, host, port = await _start_server(
                pool, max_inflight=4, auto_flush=False
            )
            try:
                client = AdmissionClient(
                    host, port, retries=0, timeout=5.0
                )
                await client.connect()
                sent = []
                for usage in stream[:4]:
                    request_id = client._allocate_id()
                    future = client._register(request_id)
                    await client._send(
                        encode_frame(
                            protocol.MSG_REQUEST,
                            request_id,
                            protocol.usage_to_payload(usage),
                        )
                    )
                    sent.append(future)
                await asyncio.sleep(0.05)
                assert server.in_flight == 4

                # Fifth request: window full -> wire OVERLOADED.
                with pytest.raises(WireOverloadedError):
                    await client.request(stream[4])
                assert client.stats.overloaded == 1

                # The connection survived: flush the window, then the
                # same client keeps working on the same connection.
                flushed = await server.flush()
                assert flushed == 4
                for future in sent:
                    frame = await asyncio.wait_for(future, 5.0)
                    assert frame.msg_type == protocol.MSG_RESPONSE
                task = asyncio.ensure_future(client.request(stream[5]))
                await asyncio.sleep(0.05)
                await server.flush()
                outcome = await asyncio.wait_for(task, 5.0)
                assert outcome.usage_id == stream[5].license_id
                await client.close()
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_overloaded_retry_succeeds_after_flush(self, workload):
        pool, stream = workload

        async def scenario():
            server, service, host, port = await _start_server(
                pool, max_inflight=2, auto_flush=False
            )
            try:
                delays = []

                async def draining_sleep(delay):
                    # Stand-in for asyncio.sleep that also frees the
                    # window, emulating the server catching up while the
                    # client backs off.
                    delays.append(delay)
                    await server.flush()

                client = AdmissionClient(
                    host, port, retries=3, sleep=draining_sleep
                )
                await client.connect()
                # Fill the window (responses arrive only on flush).
                fill = []
                for usage in stream[:2]:
                    request_id = client._allocate_id()
                    fill.append(client._register(request_id))
                    await client._send(
                        encode_frame(
                            protocol.MSG_REQUEST,
                            request_id,
                            protocol.usage_to_payload(usage),
                        )
                    )
                await asyncio.sleep(0.05)
                assert server.in_flight == 2

                # This request gets OVERLOADED once, backs off (which
                # flushes), then succeeds on the retry. The final flush
                # answers the retry itself.
                task = asyncio.ensure_future(client.request(stream[2]))
                await asyncio.sleep(0.05)
                await server.flush()
                outcome = await task
                assert outcome.usage_id == stream[2].license_id
                assert client.stats.retries >= 1
                assert delays and all(delay > 0 for delay in delays)
                await client.close()
            finally:
                await server.shutdown()
                service.close()

        run(scenario())


class TestGracefulDrain:
    def test_drain_mid_batch_answers_pending_then_closes(self, workload):
        pool, stream = workload

        async def scenario():
            events = EventLog()
            server, service, host, port = await _start_server(
                pool, events=events, auto_flush=False
            )
            try:
                client = AdmissionClient(host, port)
                await client.connect()
                pending = []
                for usage in stream[:6]:
                    request_id = client._allocate_id()
                    pending.append(client._register(request_id))
                    await client._send(
                        encode_frame(
                            protocol.MSG_REQUEST,
                            request_id,
                            protocol.usage_to_payload(usage),
                        )
                    )
                await asyncio.sleep(0.05)
                assert server.in_flight == 6

                await server.shutdown()

                # Every in-flight request was answered before the close.
                for future in pending:
                    frame = await asyncio.wait_for(future, 5.0)
                    assert frame.msg_type == protocol.MSG_RESPONSE
                assert server.in_flight == 0
                assert server.requests_served == 6
                assert server.connections_open == 0

                kinds = [record["kind"] for record in events.tail()]
                assert EVENT_CONN_OPEN in kinds
                assert EVENT_DRAIN in kinds
                assert EVENT_CONN_CLOSE in kinds
                drain = next(
                    record
                    for record in events.tail()
                    if record["kind"] == EVENT_DRAIN
                )
                assert drain["in_flight_flushed"] == 6
                await client.close()
            finally:
                service.close()

        run(scenario())

    def test_shutdown_is_idempotent_and_wait_drained_unblocks(self, workload):
        pool, _stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            waiter = asyncio.ensure_future(server.wait_drained())
            await server.shutdown()
            await server.shutdown()  # second call is a no-op
            await asyncio.wait_for(waiter, 5.0)
            assert service.metrics.counter("wire_drains_total").value() == 1
            service.close()

        run(scenario())

    def test_requests_during_drain_get_shutting_down(self, workload):
        pool, stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            client = AdmissionClient(host, port)
            await client.connect()
            # Force the draining flag without closing connections yet.
            server._draining = True
            with pytest.raises(TransportError, match="shutting_down"):
                await client.request(stream[0])
            server._draining = False
            await client.close()
            await server.shutdown()
            service.close()

        run(scenario())


class TestProtocolHygiene:
    def test_request_before_hello_is_rejected(self, workload):
        pool, stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    encode_frame(
                        protocol.MSG_REQUEST,
                        1,
                        protocol.usage_to_payload(stream[0]),
                    )
                )
                await writer.drain()
                decoder = FrameDecoder()
                frames = []
                while not frames:
                    frames = decoder.feed(await reader.read(4096))
                assert frames[0].msg_type == protocol.MSG_ERROR
                assert (
                    frames[0].payload["code"] == protocol.ERR_BAD_REQUEST
                )
                writer.close()
                await writer.wait_closed()
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_garbage_bytes_get_error_response_and_counter(self, workload):
        pool, _stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET / HTTP/1.1\r\n\r\n")
                await writer.drain()
                decoder = FrameDecoder()
                frames = []
                while not frames:
                    chunk = await reader.read(4096)
                    if not chunk:
                        break
                    frames = decoder.feed(chunk)
                assert frames and frames[0].msg_type == protocol.MSG_ERROR
                writer.close()
                await writer.wait_closed()
                assert (
                    service.metrics.counter(
                        "wire_protocol_errors_total"
                    ).value()
                    == 1
                )
            finally:
                await server.shutdown()
                service.close()

        run(scenario())

    def test_bad_request_payload_keeps_connection_alive(self, workload):
        pool, stream = workload

        async def scenario():
            server, service, host, port = await _start_server(pool)
            try:
                client = AdmissionClient(host, port)
                await client.connect()
                request_id = client._allocate_id()
                future = client._register(request_id)
                await client._send(
                    encode_frame(
                        protocol.MSG_REQUEST, request_id, {"not": "a usage"}
                    )
                )
                frame = await asyncio.wait_for(future, 5.0)
                assert frame.msg_type == protocol.MSG_ERROR
                assert frame.payload["code"] == protocol.ERR_BAD_REQUEST
                # Same connection still serves good requests.
                outcome = await client.request(stream[0])
                assert outcome.usage_id == stream[0].license_id
                await client.close()
            finally:
                await server.shutdown()
                service.close()

        run(scenario())
