"""Model-based (stateful) tests with hypothesis RuleBasedStateMachine.

Two machines attack the long-lived components with random operation
sequences, comparing them against trivially correct reference models:

* :class:`IncrementalValidatorMachine` -- random records and validate
  calls against an IncrementalValidator, checked after every step against
  a fresh ScanValidator over the accumulated counts.
* :class:`IssuanceSessionMachine` -- the equation-policy session against
  the max-flow oracle: accept iff feasible-with-the-new-license.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.incremental import IncrementalValidator
from repro.licenses.license import LicenseFactory
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.online.session import IssuanceSession
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.naive import ScanValidator
from repro.workloads.adversarial import blocks_pool

# A fixed pool with two groups: {1, 2, 3} and {4, 5}.
_POOL = blocks_pool([3, 2], aggregate=300)
_GROUP_SETS = [
    # Non-empty subsets within each group (Corollary 1.1-compatible).
    frozenset(s)
    for s in (
        {1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}, {1, 2, 3},
        {4}, {5}, {4, 5},
    )
]


class IncrementalValidatorMachine(RuleBasedStateMachine):
    """Random inserts + validations vs a from-scratch reference engine."""

    def __init__(self):
        super().__init__()
        self.validator = IncrementalValidator.from_pool(_POOL)
        self.counts = {}
        self.inserted = 0

    @rule(
        license_set=st.sampled_from(_GROUP_SETS),
        count=st.integers(min_value=1, max_value=120),
    )
    def record(self, license_set, count):
        self.validator.record(license_set, count)
        self.inserted += 1
        mask = 0
        for index in license_set:
            mask |= 1 << (index - 1)
        self.counts[mask] = self.counts.get(mask, 0) + count

    @rule()
    def validate(self):
        report = self.validator.validate()
        reference = ScanValidator(_POOL.aggregate_array()).validate_counts(
            self.counts
        )
        assert report.is_valid == reference.is_valid
        # The scan baseline checks all 2^N - 1 subsets, so a per-group
        # overflow also trips its redundant cross-group supersets (their
        # equations are sums of per-group ones -- Theorem 2).  The
        # grouped incremental validator reports only the non-redundant
        # within-group violations; on that common domain the two engines
        # must agree exactly.
        group_masks = [
            sum(1 << (i - 1) for i in members)
            for members in ({1, 2, 3}, {4, 5})
        ]
        within_group = {
            v
            for v in reference.violations
            if any(v.mask & gm == v.mask for gm in group_masks)
        }
        assert set(report.violations) == within_group
        assert set(report.violations) <= set(reference.violations)

    @invariant()
    def record_counter_consistent(self):
        assert self.validator.records_inserted == self.inserted


class IssuanceSessionMachine(RuleBasedStateMachine):
    """The equation policy accepts exactly the feasible issuances."""

    def __init__(self):
        super().__init__()
        schema = ConstraintSchema([DimensionSpec.numeric("x")])
        self.factory = LicenseFactory(schema, "K", "play")
        self.pool = LicensePool(
            [
                self.factory.redistribution("A", aggregate=150, x=(0, 30)),
                self.factory.redistribution("B", aggregate=100, x=(20, 60)),
                self.factory.redistribution("C", aggregate=80, x=(100, 130)),
            ]
        )
        self.session = IssuanceSession(self.pool, "equation")
        self.oracle = FlowFeasibilityOracle(self.pool.aggregate_array())
        self.serial = 0

    @rule(
        low=st.integers(min_value=0, max_value=135),
        width=st.integers(min_value=0, max_value=20),
        count=st.integers(min_value=1, max_value=90),
    )
    def issue(self, low, width, count):
        self.serial += 1
        usage = self.factory.usage(
            f"u{self.serial}", count=count, x=(low, low + width)
        )
        matched = self.pool.matching_indexes(usage)
        outcome = self.session.issue(usage)
        if not matched:
            assert not outcome.accepted
            assert outcome.rejection_reason == "instance"
            return
        # Reference: feasible(current accepted log + this issuance)?
        probe = dict(self.session.log.counts_by_mask())
        mask = 0
        for index in matched:
            mask |= 1 << (index - 1)
        if outcome.accepted:
            # The log already includes the new record; it must be feasible.
            assert self.oracle.feasible(self.session.log.counts_by_mask())
        else:
            probe[mask] = probe.get(mask, 0) + count
            assert not self.oracle.feasible(probe), (
                "equation policy rejected a feasible issuance"
            )

    @invariant()
    def accepted_log_always_feasible(self):
        assert self.oracle.feasible(self.session.log.counts_by_mask())


TestIncrementalValidatorMachine = IncrementalValidatorMachine.TestCase
TestIncrementalValidatorMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestIssuanceSessionMachine = IssuanceSessionMachine.TestCase
TestIssuanceSessionMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
