"""Paper-exact scenario tests: Example 1, Table 2, Figures 2-5 and the
worked 3.1x gain, all in one place.

These tests pin the reproduction to the numbers printed in the paper.
"""

import pytest

from repro.core.validator import GroupedValidator
from repro.matching.matcher import BruteForceMatcher
from repro.validation.tree import ValidationTree
from repro.workloads.scenarios import (
    example1,
    example1_log,
    figure2_pool,
    figure2_usages,
)


class TestExample1:
    def test_license_parameters(self):
        pool = example1().pool
        assert pool.aggregate_array() == [2000, 1000, 3000, 4000, 2000]
        assert pool[1].license_id == "LD1"
        assert pool.permission.value == "play"

    def test_lu1_satisfies_ld1_and_ld2(self):
        scenario = example1()
        matcher = BruteForceMatcher(scenario.pool)
        assert matcher.match(scenario.usages[0]) == frozenset({1, 2})

    def test_lu2_satisfies_only_ld2(self):
        scenario = example1()
        matcher = BruteForceMatcher(scenario.pool)
        assert matcher.match(scenario.usages[1]) == frozenset({2})

    def test_random_pick_loss_narrative(self):
        # If L_U^1 (800) is charged to L_D^2, only 200 remain there and
        # L_U^2 (400) fails; charging L_D^1 keeps both valid.
        pool = example1().pool
        assert pool[2].aggregate - 800 < 400
        assert pool[1].aggregate >= 800 and pool[2].aggregate >= 400


class TestTable2:
    def test_aggregated_counts(self):
        log = example1_log()
        expected = {
            frozenset({1, 2}): 840,
            frozenset({2}): 400,
            frozenset({1, 2, 4}): 30,
            frozenset({3, 5}): 800,
            frozenset({5}): 20,
        }
        assert log.counts_by_set() == expected

    def test_a_of_sets(self):
        # A[{L1,L2,L3}] = 2000 + 1000 + 3000 = 6000 (Section 2.1).
        from repro.validation.bitset import aggregate_sums

        sums = aggregate_sums([2000, 1000, 3000, 4000, 2000])
        assert sums[0b00111] == 6000


class TestFigure2:
    def test_lu1_only_inside_ld4(self):
        matcher = BruteForceMatcher(figure2_pool())
        assert matcher.match(figure2_usages()[0]) == frozenset({4})

    def test_lu2_invalid(self):
        matcher = BruteForceMatcher(figure2_pool())
        assert matcher.match(figure2_usages()[1]) == frozenset()

    def test_ld1_ld2_overlap_ld1_ld4_do_not(self):
        pool = figure2_pool()
        assert pool[1].overlaps_with(pool[2])
        assert not pool[1].overlaps_with(pool[4])

    def test_nonoverlapping_sets_example(self):
        # "The sets S1 = {L1, L2} and S2 = {L5} are non overlapping."
        pool = figure2_pool()
        for i in (1, 2):
            assert not pool[i].overlaps_with(pool[5])


class TestFigures3To5Pipeline:
    def test_groups(self):
        validator = GroupedValidator.from_pool(figure2_pool())
        assert validator.structure.groups == (
            frozenset({1, 2, 4}),
            frozenset({3, 5}),
        )

    def test_worked_gain(self):
        validator = GroupedValidator.from_pool(figure2_pool())
        assert validator.theoretical_gain == pytest.approx(3.1)

    def test_redundant_equations_eliminated(self):
        # Sets like {L1, L3} or {L1, L2, L3} need not be evaluated.
        validator = GroupedValidator.from_pool(figure2_pool())
        assert validator.equations_baseline - validator.equations_required == 21

    def test_full_pipeline_on_table2(self):
        # Example 1's pool has the same group structure; validating the
        # Table 2 log end to end succeeds with 10 equations.
        validator = GroupedValidator.from_pool(example1().pool)
        report = validator.validate(example1_log())
        assert report.is_valid
        assert report.equations_checked == 10

    def test_figure1_tree_matches_figure4_division(self):
        # The {1,2} node carries 840 in the divided structure, exactly as
        # drawn in Figures 1 and 4.
        validator = GroupedValidator.from_pool(example1().pool)
        grouped = validator.build(example1_log())
        tree1, tree2 = grouped.trees
        assert tree1.counts_by_mask()[0b011] == 840   # {1,2} local == global
        assert tree2.counts_by_mask()[0b11] == 800    # {3,5} -> local {1,2}
