"""Unit tests for license objects and the factory."""

import pytest

from repro.errors import LicenseError
from repro.licenses.license import LicenseFactory, RedistributionLicense, UsageLicense
from repro.licenses.permission import Permission
from repro.licenses.schema import ConstraintSchema, DimensionSpec


@pytest.fixture
def factory():
    schema = ConstraintSchema(
        [DimensionSpec.numeric("x"), DimensionSpec.numeric("y")]
    )
    return LicenseFactory(schema, content_id="K", permission="play")


class TestRedistributionLicense:
    def test_construction(self, factory):
        lic = factory.redistribution("LD1", aggregate=100, x=(0, 10), y=(0, 10))
        assert lic.aggregate == 100
        assert lic.permission is Permission.PLAY
        assert lic.content_id == "K"

    def test_zero_aggregate_rejected(self, factory):
        with pytest.raises(LicenseError):
            factory.redistribution("LD1", aggregate=0, x=(0, 10), y=(0, 10))

    def test_negative_aggregate_rejected(self, factory):
        with pytest.raises(LicenseError):
            factory.redistribution("LD1", aggregate=-5, x=(0, 10), y=(0, 10))

    def test_non_int_aggregate_rejected(self, factory):
        with pytest.raises(LicenseError):
            factory.redistribution("LD1", aggregate=10.5, x=(0, 10), y=(0, 10))

    def test_bool_aggregate_rejected(self, factory):
        with pytest.raises(LicenseError):
            factory.redistribution("LD1", aggregate=True, x=(0, 10), y=(0, 10))

    def test_instance_validation_containment(self, factory):
        outer = factory.redistribution("LD1", aggregate=100, x=(0, 10), y=(0, 10))
        inner = factory.usage("LU1", count=5, x=(2, 5), y=(2, 5))
        assert outer.can_instance_validate(inner)

    def test_instance_validation_fails_outside(self, factory):
        outer = factory.redistribution("LD1", aggregate=100, x=(0, 10), y=(0, 10))
        escaping = factory.usage("LU1", count=5, x=(2, 11), y=(2, 5))
        assert not outer.can_instance_validate(escaping)

    def test_instance_validation_requires_same_scope(self, factory):
        outer = factory.redistribution("LD1", aggregate=100, x=(0, 10), y=(0, 10))
        other_schema = ConstraintSchema(
            [DimensionSpec.numeric("x"), DimensionSpec.numeric("y")]
        )
        other = LicenseFactory(other_schema, content_id="OTHER", permission="play")
        foreign = other.usage("LU1", count=5, x=(2, 5), y=(2, 5))
        assert not outer.can_instance_validate(foreign)

    def test_overlaps_with(self, factory):
        a = factory.redistribution("LD1", aggregate=10, x=(0, 5), y=(0, 5))
        b = factory.redistribution("LD2", aggregate=10, x=(4, 9), y=(4, 9))
        c = factory.redistribution("LD3", aggregate=10, x=(6, 9), y=(0, 5))
        assert a.overlaps_with(b)
        assert not a.overlaps_with(c)


class TestUsageLicense:
    def test_construction(self, factory):
        lic = factory.usage("LU1", count=5, x=(0, 1), y=(0, 1))
        assert lic.count == 5

    def test_zero_count_rejected(self, factory):
        with pytest.raises(LicenseError):
            factory.usage("LU1", count=0, x=(0, 1), y=(0, 1))

    def test_negative_count_rejected(self, factory):
        with pytest.raises(LicenseError):
            factory.usage("LU1", count=-1, x=(0, 1), y=(0, 1))


class TestLicenseBase:
    def test_empty_id_rejected(self, factory):
        with pytest.raises(LicenseError):
            UsageLicense(
                license_id="",
                content_id="K",
                permission=Permission.PLAY,
                box=factory.schema.box(x=(0, 1), y=(0, 1)),
                count=1,
            )

    def test_permission_coercion_from_string(self, factory):
        lic = RedistributionLicense(
            license_id="LD1",
            content_id="K",
            permission="copy",
            box=factory.schema.box(x=(0, 1), y=(0, 1)),
            aggregate=10,
        )
        assert lic.permission is Permission.COPY

    def test_bad_box_rejected(self):
        with pytest.raises(LicenseError):
            UsageLicense(
                license_id="LU1",
                content_id="K",
                permission=Permission.PLAY,
                box="not a box",
                count=1,
            )


class TestFactory:
    def test_auto_ids_increment(self, factory):
        a = factory.redistribution(aggregate=10, x=(0, 1), y=(0, 1))
        b = factory.usage(count=1, x=(0, 1), y=(0, 1))
        assert a.license_id == "LD1"
        assert b.license_id == "LU2"

    def test_scope_attributes(self, factory):
        assert factory.content_id == "K"
        assert factory.permission is Permission.PLAY
        assert len(factory.schema) == 2


class TestPermission:
    def test_string_round_trip(self):
        assert Permission("play") is Permission.PLAY
        assert str(Permission.PLAY) == "play"

    def test_unknown_permission(self):
        with pytest.raises(ValueError):
            Permission("teleport")
