"""Unit tests for the multi-content license catalog."""

import pytest

from repro.errors import LicenseError, ValidationError
from repro.licenses.catalog import LicenseCatalog
from repro.licenses.license import LicenseFactory
from repro.licenses.permission import Permission
from repro.licenses.schema import ConstraintSchema, DimensionSpec


@pytest.fixture
def schema():
    return ConstraintSchema([DimensionSpec.numeric("x")])


@pytest.fixture
def catalog(schema):
    catalog = LicenseCatalog()
    movie_play = LicenseFactory(schema, "movie", "play")
    movie_copy = LicenseFactory(schema, "movie", "copy")
    song_play = LicenseFactory(schema, "song", "play")
    catalog.add_license(movie_play.redistribution("mp1", aggregate=100, x=(0, 10)))
    catalog.add_license(movie_play.redistribution("mp2", aggregate=50, x=(5, 15)))
    catalog.add_license(movie_copy.redistribution("mc1", aggregate=20, x=(0, 10)))
    catalog.add_license(song_play.redistribution("sp1", aggregate=30, x=(0, 10)))
    return catalog


class TestScopes:
    def test_scopes_sorted(self, catalog):
        assert catalog.scopes() == [
            ("movie", Permission.COPY),
            ("movie", Permission.PLAY),
            ("song", Permission.PLAY),
        ]
        assert len(catalog) == 3

    def test_pool_routing(self, catalog):
        assert len(catalog.pool("movie", "play")) == 2
        assert len(catalog.pool("movie", "copy")) == 1
        assert len(catalog.pool("song", Permission.PLAY)) == 1

    def test_unknown_scope(self, catalog):
        with pytest.raises(LicenseError):
            catalog.pool("movie", "rip")

    def test_usage_license_rejected_at_intake(self, catalog, schema):
        factory = LicenseFactory(schema, "movie", "play")
        with pytest.raises(LicenseError):
            catalog.add_license(factory.usage("u", count=1, x=(0, 1)))


class TestMatching:
    def test_match_routes_by_scope(self, catalog, schema):
        play = LicenseFactory(schema, "movie", "play")
        copy = LicenseFactory(schema, "movie", "copy")
        play_usage = play.usage("u1", count=1, x=(6, 9))
        copy_usage = copy.usage("u2", count=1, x=(6, 9))
        assert catalog.match(play_usage) == frozenset({1, 2})
        assert catalog.match(copy_usage) == frozenset({1})

    def test_unknown_scope_matches_nothing(self, catalog, schema):
        factory = LicenseFactory(schema, "unknown", "play")
        assert catalog.match(factory.usage("u", count=1, x=(0, 1))) == frozenset()

    def test_record_issuance(self, catalog, schema):
        factory = LicenseFactory(schema, "movie", "play")
        usage = factory.usage("u1", count=7, x=(6, 9))
        matched = catalog.record_issuance(usage)
        assert matched == frozenset({1, 2})
        assert catalog.log("movie", "play").total_count == 7
        assert catalog.log("movie", "copy").total_count == 0

    def test_unmatched_issuance_rejected(self, catalog, schema):
        factory = LicenseFactory(schema, "movie", "play")
        with pytest.raises(ValidationError):
            catalog.record_issuance(factory.usage("u1", count=1, x=(90, 99)))


class TestValidation:
    def test_per_scope_validation(self, catalog, schema):
        factory = LicenseFactory(schema, "movie", "copy")
        catalog.record_issuance(factory.usage("u1", count=25, x=(0, 5)))  # > 20
        copy_report = catalog.validate_scope("movie", "copy")
        play_report = catalog.validate_scope("movie", "play")
        assert not copy_report.is_valid
        assert play_report.is_valid  # violation does not leak across scopes

    def test_validate_all(self, catalog):
        results = catalog.validate_all()
        assert set(results) == set(catalog.scopes())
        assert all(report.is_valid for report in results.values())

    def test_validator_cache_invalidated_by_new_license(self, catalog, schema):
        first = catalog.validator("movie", "play")
        assert first.n == 2
        factory = LicenseFactory(schema, "movie", "play")
        catalog.add_license(factory.redistribution("mp3", aggregate=10, x=(20, 30)))
        assert catalog.validator("movie", "play").n == 3
