"""Unit tests for constraint schemas and dimension specs."""

import pytest

from repro.errors import SchemaError
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.dates import to_ordinal
from repro.licenses.regions import WORLD
from repro.licenses.schema import ConstraintSchema, DimensionKind, DimensionSpec


@pytest.fixture
def schema():
    return ConstraintSchema(
        [
            DimensionSpec.date("validity"),
            DimensionSpec.region("region", taxonomy=WORLD),
            DimensionSpec.numeric("resolution"),
            DimensionSpec.categorical("device"),
        ]
    )


class TestDimensionSpec:
    def test_numeric(self):
        spec = DimensionSpec.numeric("x")
        assert spec.kind is DimensionKind.INTERVAL
        assert not spec.is_date

    def test_date(self):
        spec = DimensionSpec.date("validity")
        assert spec.is_date

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            DimensionSpec.numeric("not a name")

    def test_date_must_be_interval(self):
        with pytest.raises(SchemaError):
            DimensionSpec("x", DimensionKind.DISCRETE, is_date=True)

    def test_taxonomy_only_on_discrete(self):
        with pytest.raises(SchemaError):
            DimensionSpec("x", DimensionKind.INTERVAL, taxonomy=WORLD)

    def test_interval_coercion_from_tuple(self):
        assert DimensionSpec.numeric("x").to_extent((1, 5)) == Interval(1, 5)

    def test_interval_coercion_from_point(self):
        assert DimensionSpec.numeric("x").to_extent(3) == Interval(3, 3)

    def test_interval_coercion_from_interval(self):
        interval = Interval(1, 2)
        assert DimensionSpec.numeric("x").to_extent(interval) == interval

    def test_interval_wrong_arity(self):
        with pytest.raises(SchemaError):
            DimensionSpec.numeric("x").to_extent((1, 2, 3))

    def test_date_coercion(self):
        extent = DimensionSpec.date("t").to_extent(("10/03/09", "20/03/09"))
        assert extent == Interval(to_ordinal("10/03/09"), to_ordinal("20/03/09"))

    def test_region_coercion_expands(self):
        extent = DimensionSpec.region("r", WORLD).to_extent("asia")
        assert extent.atoms == WORLD.leaves("asia")

    def test_plain_categorical_no_expansion(self):
        extent = DimensionSpec.categorical("d").to_extent(["tv", "phone"])
        assert extent == DiscreteSet(["tv", "phone"])

    def test_single_atom_categorical(self):
        assert DimensionSpec.categorical("d").to_extent("tv") == DiscreteSet(["tv"])


class TestConstraintSchema:
    def test_len_and_names(self, schema):
        assert len(schema) == 4
        assert schema.names == ("validity", "region", "resolution", "device")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            ConstraintSchema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            ConstraintSchema([DimensionSpec.numeric("x"), DimensionSpec.numeric("x")])

    def test_getitem(self, schema):
        assert schema["validity"].is_date
        with pytest.raises(SchemaError):
            schema["missing"]

    def test_box_builds_all_axes(self, schema):
        box = schema.box(
            validity=("10/03/09", "20/03/09"),
            region=["asia"],
            resolution=(480, 1080),
            device=["tv"],
        )
        assert box.dimensions == 4
        assert box.extent(2) == Interval(480, 1080)

    def test_box_missing_dimension(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            schema.box(validity=("10/03/09", "20/03/09"))

    def test_box_unknown_dimension(self, schema):
        with pytest.raises(SchemaError, match="unknown"):
            schema.box(
                validity=("10/03/09", "20/03/09"),
                region=["asia"],
                resolution=(480, 1080),
                device=["tv"],
                extra=1,
            )

    def test_describe_round_trip(self, schema):
        constraints = {
            "validity": ("10/03/09", "20/03/09"),
            "region": ["india", "japan"],
            "resolution": (480, 1080),
            "device": ["tv"],
        }
        box = schema.box(**constraints)
        described = schema.describe(box)
        assert described["validity"] == ["10/03/09", "20/03/09"]
        assert set(described["region"]) >= {"india", "japan"}
        rebuilt = schema.box_from_mapping(described)
        assert rebuilt == box

    def test_describe_wrong_dimensionality(self, schema):
        from repro.geometry.box import Box

        with pytest.raises(SchemaError):
            schema.describe(Box([Interval(0, 1)]))

    def test_equality(self):
        a = ConstraintSchema([DimensionSpec.numeric("x")])
        b = ConstraintSchema([DimensionSpec.numeric("x")])
        assert a == b
        assert hash(a) == hash(b)
