"""Unit tests for the hierarchical region taxonomy."""

import pytest

from repro.errors import RegionError
from repro.licenses.regions import WORLD, RegionTaxonomy


@pytest.fixture
def taxonomy():
    return RegionTaxonomy(
        {
            "world": {
                "asia": ["india", "japan"],
                "europe": ["france", "germany"],
            }
        }
    )


class TestConstruction:
    def test_roots(self, taxonomy):
        assert taxonomy.roots == ("world",)

    def test_names_include_all_levels(self, taxonomy):
        assert {"world", "asia", "india", "europe"} <= taxonomy.names

    def test_duplicate_names_rejected(self):
        with pytest.raises(RegionError):
            RegionTaxonomy({"asia": ["india"], "europe": ["india"]})

    def test_invalid_name_rejected(self):
        with pytest.raises(RegionError):
            RegionTaxonomy({"": ["x"]})

    def test_region_with_no_children_is_leaf(self):
        taxonomy = RegionTaxonomy({"zone": []})
        assert taxonomy.leaves("zone") == {"zone"}


class TestLeaves:
    def test_leaf_of_leaf(self, taxonomy):
        assert taxonomy.leaves("india") == {"india"}

    def test_leaves_of_internal(self, taxonomy):
        assert taxonomy.leaves("asia") == {"india", "japan"}

    def test_leaves_of_root(self, taxonomy):
        assert taxonomy.leaves("world") == {"india", "japan", "france", "germany"}

    def test_case_insensitive(self, taxonomy):
        assert taxonomy.leaves("Asia") == taxonomy.leaves("asia")

    def test_unknown_region_raises(self, taxonomy):
        with pytest.raises(RegionError):
            taxonomy.leaves("atlantis")

    def test_all_leaves(self, taxonomy):
        assert taxonomy.all_leaves == {"india", "japan", "france", "germany"}


class TestRelations:
    def test_is_within_parent(self, taxonomy):
        # Example 1: R=[India] within a license allowing R=[Asia].
        assert taxonomy.is_within("india", "asia")

    def test_is_within_root(self, taxonomy):
        assert taxonomy.is_within("india", "world")

    def test_not_within_sibling(self, taxonomy):
        assert not taxonomy.is_within("india", "europe")

    def test_overlap_between_ancestor_and_leaf(self, taxonomy):
        assert taxonomy.overlap("asia", "japan")

    def test_no_overlap_between_disjoint(self, taxonomy):
        assert not taxonomy.overlap("asia", "europe")

    def test_parent(self, taxonomy):
        assert taxonomy.parent("india") == "asia"
        assert taxonomy.parent("world") is None

    def test_contains_operator(self, taxonomy):
        assert "asia" in taxonomy
        assert "atlantis" not in taxonomy
        assert 42 not in taxonomy


class TestExpand:
    def test_expand_single_name(self, taxonomy):
        assert taxonomy.expand("asia").atoms == frozenset({"india", "japan"})

    def test_expand_multiple_names(self, taxonomy):
        extent = taxonomy.expand(["asia", "europe"])
        assert extent.atoms == frozenset({"india", "japan", "france", "germany"})

    def test_expand_leaf(self, taxonomy):
        assert taxonomy.expand("india").atoms == frozenset({"india"})


class TestPersistence:
    def test_spec_round_trip(self, taxonomy):
        rebuilt = RegionTaxonomy(taxonomy.to_spec())
        assert rebuilt.names == taxonomy.names
        for name in taxonomy.names:
            assert rebuilt.leaves(name) == taxonomy.leaves(name)

    def test_json_round_trip(self, taxonomy):
        rebuilt = RegionTaxonomy.from_json(taxonomy.to_json())
        assert rebuilt.names == taxonomy.names
        assert rebuilt.all_leaves == taxonomy.all_leaves

    def test_world_round_trips(self):
        rebuilt = RegionTaxonomy.from_json(WORLD.to_json())
        assert rebuilt.leaves("asia") == WORLD.leaves("asia")
        assert rebuilt.roots == WORLD.roots

    def test_invalid_json(self):
        import pytest as _pytest

        with _pytest.raises(RegionError):
            RegionTaxonomy.from_json("{broken")
        with _pytest.raises(RegionError):
            RegionTaxonomy.from_json("[1, 2]")


class TestWorldTaxonomy:
    def test_example1_regions_present(self):
        for name in ("asia", "europe", "america", "india", "japan"):
            assert name in WORLD

    def test_india_inside_asia(self):
        assert WORLD.is_within("india", "asia")

    def test_asia_europe_disjoint(self):
        assert not WORLD.overlap("asia", "europe")

    def test_example1_overlap_structure(self):
        # Region axis of Example 1: {Asia, Europe} overlaps {Asia} and
        # {Europe} but not {America}.
        asia_europe = WORLD.expand(["asia", "europe"])
        assert asia_europe.overlaps(WORLD.expand("asia"))
        assert asia_europe.overlaps(WORLD.expand("europe"))
        assert not asia_europe.overlaps(WORLD.expand("america"))
