"""Unit tests for the JSON rights-expression serialization layer."""

import json

import pytest

from repro.errors import SerializationError
from repro.licenses.license import RedistributionLicense, UsageLicense
from repro.licenses.rel import (
    dumps_pool,
    license_from_dict,
    license_to_dict,
    loads_pool,
    pool_from_dict,
    pool_to_dict,
    schema_from_dict,
    schema_to_dict,
)
from repro.workloads.scenarios import example1


@pytest.fixture
def scenario():
    return example1()


class TestSchemaRoundTrip:
    def test_round_trip_preserves_structure(self, scenario):
        document = schema_to_dict(scenario.schema)
        rebuilt = schema_from_dict(document)
        assert rebuilt.names == scenario.schema.names
        assert rebuilt["validity"].is_date

    def test_world_taxonomy_resolved_by_name(self, scenario):
        document = schema_to_dict(scenario.schema)
        assert document["dimensions"][1]["taxonomy"] == "world"
        rebuilt = schema_from_dict(document)
        assert rebuilt["region"].taxonomy is not None

    def test_missing_dimensions_key(self):
        with pytest.raises(SerializationError):
            schema_from_dict({})

    def test_malformed_dimension(self):
        with pytest.raises(SerializationError):
            schema_from_dict({"dimensions": [{"name": "x", "kind": "banana"}]})


class TestLicenseRoundTrip:
    def test_redistribution_round_trip(self, scenario):
        original = scenario.pool[1]
        document = license_to_dict(original, scenario.schema)
        assert document["type"] == "redistribution"
        rebuilt = license_from_dict(document, scenario.schema)
        assert isinstance(rebuilt, RedistributionLicense)
        assert rebuilt == original

    def test_usage_round_trip(self, scenario):
        original = scenario.usages[0]
        document = license_to_dict(original, scenario.schema)
        assert document["type"] == "usage"
        rebuilt = license_from_dict(document, scenario.schema)
        assert isinstance(rebuilt, UsageLicense)
        assert rebuilt == original

    def test_document_is_json_safe(self, scenario):
        document = license_to_dict(scenario.pool[1], scenario.schema)
        assert json.loads(json.dumps(document)) == document

    def test_unknown_type_rejected(self, scenario):
        document = license_to_dict(scenario.pool[1], scenario.schema)
        document["type"] = "mystery"
        with pytest.raises(SerializationError):
            license_from_dict(document, scenario.schema)

    def test_missing_field_rejected(self, scenario):
        document = license_to_dict(scenario.pool[1], scenario.schema)
        del document["constraints"]
        with pytest.raises(SerializationError):
            license_from_dict(document, scenario.schema)


class TestPoolRoundTrip:
    def test_pool_round_trip(self, scenario):
        document = pool_to_dict(scenario.pool, scenario.schema)
        pool, schema = pool_from_dict(document)
        assert len(pool) == len(scenario.pool)
        assert pool.aggregate_array() == scenario.pool.aggregate_array()
        # Geometry survives: same containment behaviour.
        assert pool.matching_indexes(scenario.usages[0]) == frozenset({1, 2})

    def test_usage_in_pool_document_rejected(self, scenario):
        document = pool_to_dict(scenario.pool, scenario.schema)
        document["licenses"].append(
            license_to_dict(scenario.usages[0], scenario.schema)
        )
        with pytest.raises(SerializationError):
            pool_from_dict(document)

    def test_string_round_trip(self, scenario):
        text = dumps_pool(scenario.pool, scenario.schema)
        pool, _schema = loads_pool(text)
        assert len(pool) == 5

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            loads_pool("{not json")
