"""Unit tests for date parsing/formatting helpers."""

import datetime

import pytest

from repro.errors import LicenseError
from repro.geometry.interval import Interval
from repro.licenses.dates import (
    date_interval,
    format_date,
    interval_to_dates,
    parse_date,
    to_ordinal,
)


class TestParseDate:
    def test_ddmmyy(self):
        assert parse_date("10/03/09") == datetime.date(2009, 3, 10)

    def test_ddmmyyyy(self):
        assert parse_date("10/03/2009") == datetime.date(2009, 3, 10)

    def test_iso(self):
        assert parse_date("2009-03-10") == datetime.date(2009, 3, 10)

    def test_single_digit_day_month(self):
        assert parse_date("1/3/09") == datetime.date(2009, 3, 1)

    def test_invalid_calendar_date(self):
        with pytest.raises(LicenseError):
            parse_date("32/03/09")

    def test_unrecognized_format(self):
        with pytest.raises(LicenseError):
            parse_date("March 10, 2009")


class TestToOrdinal:
    def test_int_passthrough(self):
        assert to_ordinal(733000) == 733000

    def test_date_object(self):
        day = datetime.date(2009, 3, 10)
        assert to_ordinal(day) == day.toordinal()

    def test_string(self):
        assert to_ordinal("10/03/09") == datetime.date(2009, 3, 10).toordinal()

    def test_bool_rejected(self):
        with pytest.raises(LicenseError):
            to_ordinal(True)

    def test_float_rejected(self):
        with pytest.raises(LicenseError):
            to_ordinal(1.5)


class TestDateInterval:
    def test_length_in_days(self):
        # Paper Example 1: T = [10/03/09, 20/03/09] is a 10-day span.
        assert date_interval("10/03/09", "20/03/09").length == 10

    def test_mixed_inputs(self):
        interval = date_interval(datetime.date(2009, 3, 10), "20/03/09")
        assert interval.length == 10

    def test_containment_matches_paper(self):
        # L_U^1's T = [15/03, 19/03] within L_D^1's [10/03, 20/03].
        outer = date_interval("10/03/09", "20/03/09")
        inner = date_interval("15/03/09", "19/03/09")
        assert outer.contains(inner)

    def test_round_trip(self):
        interval = date_interval("10/03/09", "20/03/09")
        start, end = interval_to_dates(interval)
        assert (start, end) == (datetime.date(2009, 3, 10), datetime.date(2009, 3, 20))


class TestFormatDate:
    def test_round_trip_via_ordinal(self):
        assert format_date(to_ordinal("05/04/09")) == "05/04/09"

    def test_zero_padding(self):
        assert format_date(datetime.date(2009, 1, 2).toordinal()) == "02/01/09"
