"""Unit tests for the XML rights-expression layer."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import SerializationError
from repro.licenses.license import RedistributionLicense, UsageLicense
from repro.licenses.xml_rel import (
    license_from_xml,
    license_to_xml,
    pool_from_xml,
    pool_to_xml,
)
from repro.workloads.scenarios import example1, figure2_pool


@pytest.fixture
def scenario():
    return example1()


class TestLicenseRoundTrip:
    def test_redistribution_round_trip(self, scenario):
        original = scenario.pool[1]
        element = license_to_xml(original, scenario.schema)
        assert element.get("type") == "redistribution"
        rebuilt, _schema = license_from_xml(element)
        assert isinstance(rebuilt, RedistributionLicense)
        assert rebuilt.license_id == original.license_id
        assert rebuilt.aggregate == original.aggregate
        assert rebuilt.box == original.box

    def test_usage_round_trip(self, scenario):
        original = scenario.usages[0]
        element = license_to_xml(original, scenario.schema)
        rebuilt, _schema = license_from_xml(element)
        assert isinstance(rebuilt, UsageLicense)
        assert rebuilt.count == original.count
        assert rebuilt.box == original.box

    def test_dates_serialized_human_readable(self, scenario):
        element = license_to_xml(scenario.pool[1], scenario.schema)
        text = ET.tostring(element, encoding="unicode")
        assert "10/03/09" in text
        assert "20/03/09" in text

    def test_numeric_round_trip(self):
        pool = figure2_pool()
        from repro.licenses.schema import ConstraintSchema, DimensionSpec

        schema = ConstraintSchema(
            [DimensionSpec.numeric("x"), DimensionSpec.numeric("y")]
        )
        element = license_to_xml(pool[1], schema)
        rebuilt, _schema = license_from_xml(element)
        assert rebuilt.box == pool[1].box

    def test_schema_cross_check(self, scenario):
        element = license_to_xml(scenario.pool[1], scenario.schema)
        # Matching declared schema passes (same names/kinds/date flags)...
        rebuilt, schema = license_from_xml(element)
        again, _schema = license_from_xml(element, schema)
        assert again.box == rebuilt.box
        # ...a different schema is rejected.
        from repro.licenses.schema import ConstraintSchema, DimensionSpec

        wrong = ConstraintSchema([DimensionSpec.numeric("other")])
        with pytest.raises(SerializationError):
            license_from_xml(element, wrong)


class TestMalformedDocuments:
    def test_wrong_root_tag(self):
        with pytest.raises(SerializationError):
            license_from_xml(ET.Element("permit"))

    def test_license_without_constraints(self):
        element = ET.Element(
            "license",
            {"type": "usage", "id": "x", "content": "K", "permission": "play"},
        )
        with pytest.raises(SerializationError):
            license_from_xml(element)

    def test_interval_missing_bounds(self, scenario):
        element = license_to_xml(scenario.pool[1], scenario.schema)
        constraint = element.find("constraint")
        constraint.remove(constraint.find("high"))
        with pytest.raises(SerializationError):
            license_from_xml(element)

    def test_unknown_license_type(self, scenario):
        element = license_to_xml(scenario.pool[1], scenario.schema)
        element.set("type", "mystery")
        with pytest.raises(SerializationError):
            license_from_xml(element)

    def test_missing_aggregate(self, scenario):
        element = license_to_xml(scenario.pool[1], scenario.schema)
        element.remove(element.find("aggregate"))
        with pytest.raises(SerializationError):
            license_from_xml(element)

    def test_bad_number(self):
        element = ET.fromstring(
            '<license type="usage" id="x" content="K" permission="play">'
            '<constraint name="v" kind="interval"><low>abc</low><high>1</high>'
            "</constraint><count>1</count></license>"
        )
        with pytest.raises(SerializationError):
            license_from_xml(element)


class TestPoolRoundTrip:
    def test_pool_round_trip_preserves_validation(self, scenario):
        from repro.core.validator import GroupedValidator
        from repro.workloads.scenarios import example1_log

        text = pool_to_xml(scenario.pool, scenario.schema)
        pool, _schema = pool_from_xml(text)
        assert len(pool) == 5
        assert pool.aggregate_array() == scenario.pool.aggregate_array()
        original = GroupedValidator.from_pool(scenario.pool)
        reloaded = GroupedValidator.from_pool(pool)
        assert original.structure == reloaded.structure
        log = example1_log()
        assert original.validate(log).is_valid == reloaded.validate(log).is_valid

    def test_instance_matching_preserved(self, scenario):
        text = pool_to_xml(scenario.pool, scenario.schema)
        pool, _schema = pool_from_xml(text)
        assert pool.matching_indexes(scenario.usages[0]) == frozenset({1, 2})

    def test_invalid_xml_rejected(self):
        with pytest.raises(SerializationError):
            pool_from_xml("<pool><broken")

    def test_wrong_root(self):
        with pytest.raises(SerializationError):
            pool_from_xml("<catalog/>")

    def test_empty_pool_rejected(self):
        with pytest.raises(SerializationError):
            pool_from_xml("<pool/>")

    def test_usage_inside_pool_rejected(self, scenario):
        element = ET.fromstring(pool_to_xml(scenario.pool, scenario.schema))
        element.append(license_to_xml(scenario.usages[0], scenario.schema))
        with pytest.raises(SerializationError):
            pool_from_xml(ET.tostring(element, encoding="unicode"))
