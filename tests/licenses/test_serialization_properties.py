"""Property tests: JSON and XML license serialization round-trip exactly."""

from hypothesis import given, settings, strategies as st

from repro.geometry.box import Box
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.license import RedistributionLicense, UsageLicense
from repro.licenses.permission import Permission
from repro.licenses.rel import license_from_dict, license_to_dict
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.licenses.xml_rel import license_from_xml, license_to_xml


@st.composite
def schema_and_license(draw):
    """A random mixed schema with a matching random license."""
    dims = []
    extents = []
    n_dims = draw(st.integers(min_value=1, max_value=4))
    for axis in range(n_dims):
        kind = draw(st.sampled_from(["numeric", "categorical"]))
        name = f"d{axis}"
        if kind == "numeric":
            dims.append(DimensionSpec.numeric(name))
            low = draw(st.integers(min_value=-500, max_value=500))
            extents.append(Interval(low, low + draw(st.integers(0, 200))))
        else:
            dims.append(DimensionSpec.categorical(name))
            atoms = draw(
                st.sets(
                    st.text(
                        alphabet="abcdefghij", min_size=1, max_size=6
                    ),
                    min_size=1,
                    max_size=5,
                )
            )
            extents.append(DiscreteSet(atoms))
    schema = ConstraintSchema(dims)
    box = Box(extents)
    permission = draw(st.sampled_from(list(Permission)))
    if draw(st.booleans()):
        lic = RedistributionLicense(
            license_id=draw(st.text(alphabet="LD0123456789", min_size=1, max_size=8)),
            content_id="K",
            permission=permission,
            box=box,
            aggregate=draw(st.integers(min_value=1, max_value=10**6)),
        )
    else:
        lic = UsageLicense(
            license_id=draw(st.text(alphabet="LU0123456789", min_size=1, max_size=8)),
            content_id="K",
            permission=permission,
            box=box,
            count=draw(st.integers(min_value=1, max_value=10**6)),
        )
    return schema, lic


@settings(max_examples=80, deadline=None)
@given(schema_and_license())
def test_json_round_trip(data):
    schema, lic = data
    rebuilt = license_from_dict(license_to_dict(lic, schema), schema)
    assert rebuilt == lic


@settings(max_examples=80, deadline=None)
@given(schema_and_license())
def test_xml_round_trip(data):
    schema, lic = data
    rebuilt, _schema = license_from_xml(license_to_xml(lic, schema))
    assert rebuilt.box == lic.box
    assert rebuilt.license_id == lic.license_id
    assert rebuilt.permission is lic.permission
    if isinstance(lic, RedistributionLicense):
        assert rebuilt.aggregate == lic.aggregate
    else:
        assert rebuilt.count == lic.count


@settings(max_examples=60, deadline=None)
@given(schema_and_license())
def test_json_and_xml_agree_on_geometry(data):
    """Both formats must reconstruct the exact same box (containment and
    overlap behaviour is what validation depends on)."""
    schema, lic = data
    via_json = license_from_dict(license_to_dict(lic, schema), schema)
    via_xml, _schema = license_from_xml(license_to_xml(lic, schema))
    assert via_json.box == via_xml.box == lic.box
