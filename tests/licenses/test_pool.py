"""Unit tests for license pools."""

import pytest

from repro.errors import LicenseError
from repro.licenses.license import LicenseFactory
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionSpec


@pytest.fixture
def factory():
    schema = ConstraintSchema([DimensionSpec.numeric("x")])
    return LicenseFactory(schema, content_id="K", permission="play")


@pytest.fixture
def pool(factory):
    return LicensePool(
        [
            factory.redistribution("LD1", aggregate=100, x=(0, 10)),
            factory.redistribution("LD2", aggregate=200, x=(5, 15)),
            factory.redistribution("LD3", aggregate=300, x=(20, 30)),
        ]
    )


class TestIndexing:
    def test_one_based_access(self, pool):
        assert pool[1].license_id == "LD1"
        assert pool[3].license_id == "LD3"

    def test_out_of_range(self, pool):
        with pytest.raises(LicenseError):
            pool[0]
        with pytest.raises(LicenseError):
            pool[4]

    def test_non_int_index(self, pool):
        with pytest.raises(LicenseError):
            pool["LD1"]

    def test_index_of(self, pool):
        assert pool.index_of("LD2") == 2
        with pytest.raises(LicenseError):
            pool.index_of("LD9")

    def test_enumerate_is_one_based(self, pool):
        pairs = list(pool.enumerate())
        assert pairs[0][0] == 1
        assert pairs[-1][0] == 3

    def test_len_iter_bool(self, pool):
        assert len(pool) == 3
        assert len(list(pool)) == 3
        assert pool
        assert not LicensePool()


class TestAdd:
    def test_add_returns_index(self, factory):
        pool = LicensePool()
        assert pool.add(factory.redistribution("A", aggregate=1, x=(0, 1))) == 1
        assert pool.add(factory.redistribution("B", aggregate=1, x=(0, 1))) == 2

    def test_duplicate_id_rejected(self, pool, factory):
        with pytest.raises(LicenseError):
            pool.add(factory.redistribution("LD1", aggregate=1, x=(0, 1)))

    def test_usage_license_rejected(self, pool, factory):
        with pytest.raises(LicenseError):
            pool.add(factory.usage("LU1", count=1, x=(0, 1)))

    def test_scope_mismatch_rejected(self, pool):
        schema = ConstraintSchema([DimensionSpec.numeric("x")])
        other = LicenseFactory(schema, content_id="OTHER", permission="play")
        with pytest.raises(LicenseError):
            pool.add(other.redistribution("X", aggregate=1, x=(0, 1)))

    def test_dimension_mismatch_rejected(self, pool):
        schema = ConstraintSchema(
            [DimensionSpec.numeric("x"), DimensionSpec.numeric("y")]
        )
        other = LicenseFactory(schema, content_id="K", permission="play")
        with pytest.raises(LicenseError):
            pool.add(other.redistribution("X", aggregate=1, x=(0, 1), y=(0, 1)))


class TestDerivedViews:
    def test_aggregate_array(self, pool):
        assert pool.aggregate_array() == [100, 200, 300]

    def test_boxes_in_order(self, pool):
        boxes = pool.boxes()
        assert len(boxes) == 3
        assert boxes[0].extent(0).low == 0

    def test_matching_indexes(self, pool, factory):
        usage = factory.usage("LU1", count=1, x=(6, 9))
        assert pool.matching_indexes(usage) == frozenset({1, 2})

    def test_matching_indexes_empty(self, pool, factory):
        usage = factory.usage("LU1", count=1, x=(16, 19))
        assert pool.matching_indexes(usage) == frozenset()

    def test_scope_properties(self, pool):
        assert pool.content_id == "K"
        assert pool.permission.value == "play"

    def test_empty_pool_scope_raises(self):
        with pytest.raises(LicenseError):
            LicensePool().content_id
        with pytest.raises(LicenseError):
            LicensePool().permission
