"""Unit tests for headroom (remaining-capacity) queries."""

import pytest

from repro.errors import ValidationError
from repro.validation.capacity import headroom, superset_count
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.tree import ValidationTree
from repro.workloads.scenarios import example1_log

EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


@pytest.fixture
def table2_tree():
    return ValidationTree.from_log(example1_log())


class TestHeadroom:
    def test_empty_tree_full_capacity(self):
        tree = ValidationTree()
        assert headroom(tree, [100], 0b1) == 100

    def test_singleton_after_issuance(self):
        tree = ValidationTree()
        tree.insert_set((1,), 30)
        assert headroom(tree, [100], 0b1) == 70

    def test_flexible_set_aggregates_capacity(self):
        # A {1,2} issuance is only bound by the union equation.
        tree = ValidationTree()
        assert headroom(tree, [100, 50], 0b11) == 150

    def test_binding_superset(self):
        # {2} issuance is bound by A_2 alone at first...
        tree = ValidationTree()
        assert headroom(tree, [100, 50], 0b10) == 50
        # ...but once {1,2} records exist, the union equation can bind:
        tree.insert_set((1, 2), 120)
        # C<{2}> = 0, A_2 = 50 -> slack 50; C<{1,2}> = 120, A = 150 -> 30.
        assert headroom(tree, [100, 50], 0b10) == 30

    def test_floors_at_zero_when_overissued(self):
        tree = ValidationTree()
        tree.insert_set((1,), 120)
        assert headroom(tree, [100], 0b1) == 0

    def test_example1_lu2_scenario(self, table2_tree):
        # After Table 2, how much more can a {2}-only license carry?
        # C<{2}> = 400, A_2 = 1000 -> 600; C<{1,2}> = 1240, A = 3000 -> 1760;
        # supersets via 3,4,5 looser. Answer: 600.
        assert headroom(table2_tree, EXAMPLE1_AGGREGATES, 0b00010) == 600

    def test_universe_restriction_equivalent(self, table2_tree):
        # Restricting to the group universe (Theorem 2) gives the same
        # answer as the full enumeration.
        full = headroom(table2_tree, EXAMPLE1_AGGREGATES, 0b00010)
        grouped = headroom(
            table2_tree, EXAMPLE1_AGGREGATES, 0b00010, universe_mask=0b01011
        )
        assert full == grouped

    def test_agrees_with_flow_oracle(self, table2_tree):
        counts = example1_log().counts_by_mask()
        oracle = FlowFeasibilityOracle(EXAMPLE1_AGGREGATES)
        for target in (0b00010, 0b00011, 0b01011, 0b10000, 0b10100):
            assert headroom(
                table2_tree, EXAMPLE1_AGGREGATES, target
            ) == oracle.remaining_capacity(counts, target)


class TestValidationErrors:
    def test_zero_target_rejected(self):
        with pytest.raises(ValidationError):
            headroom(ValidationTree(), [10], 0)

    def test_target_outside_universe_rejected(self):
        with pytest.raises(ValidationError):
            headroom(ValidationTree(), [10, 10], 0b01, universe_mask=0b10)

    def test_target_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            headroom(ValidationTree(), [10], 0b10)


class TestSupersetCount:
    def test_counts(self):
        assert superset_count(0b001, 0b111) == 4
        assert superset_count(0b111, 0b111) == 1
        assert superset_count(0b001, 0b001) == 1
