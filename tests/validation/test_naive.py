"""Unit tests for the naive validation baselines."""

import pytest

from repro.errors import ValidationError
from repro.validation.naive import ExpansionValidator, ScanValidator
from repro.workloads.scenarios import example1_log

EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


@pytest.mark.parametrize("engine_cls", [ScanValidator, ExpansionValidator])
class TestBothBaselines:
    def test_example1_valid(self, engine_cls):
        report = engine_cls(EXAMPLE1_AGGREGATES).validate_log(example1_log())
        assert report.is_valid
        assert report.equations_checked == 31

    def test_overissue_detected(self, engine_cls):
        report = engine_cls([100]).validate_counts({0b1: 150})
        assert not report.is_valid
        assert report.violations[0].lhs == 150

    def test_combined_overissue_detected(self, engine_cls):
        # 60 + 60 <= each individually but {1,2} has 120 > 100.
        report = engine_cls([50, 50]).validate_counts({0b01: 50, 0b10: 50, 0b11: 20})
        assert not report.is_valid
        assert frozenset({1, 2}) in report.violated_sets

    def test_empty_counts_valid(self, engine_cls):
        assert engine_cls([10, 10]).validate_counts({}).is_valid

    def test_mask_out_of_universe_rejected(self, engine_cls):
        with pytest.raises(ValidationError):
            engine_cls([10]).validate_counts({0b10: 5})

    def test_zero_mask_rejected(self, engine_cls):
        with pytest.raises(ValidationError):
            engine_cls([10]).validate_counts({0: 5})

    def test_empty_aggregates_rejected(self, engine_cls):
        with pytest.raises(ValidationError):
            engine_cls([])

    def test_negative_aggregate_rejected(self, engine_cls):
        with pytest.raises(ValidationError):
            engine_cls([-1])


class TestAgreement:
    def test_engines_agree_on_example1(self):
        counts = example1_log().counts_by_mask()
        scan = ScanValidator(EXAMPLE1_AGGREGATES).validate_counts(counts)
        expansion = ExpansionValidator(EXAMPLE1_AGGREGATES).validate_counts(counts)
        assert scan.is_valid == expansion.is_valid
        assert scan.violations == expansion.violations

    def test_engines_agree_on_violating_counts(self):
        counts = {0b001: 900, 0b011: 500, 0b110: 700, 0b100: 100}
        aggregates = [800, 400, 600]
        scan = ScanValidator(aggregates).validate_counts(counts)
        expansion = ExpansionValidator(aggregates).validate_counts(counts)
        assert scan.violations == expansion.violations
        assert not scan.is_valid
