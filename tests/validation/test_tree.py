"""Unit tests for the validation tree (Algorithm 1 + subset-sum traversal)."""

import pytest

from repro.errors import ValidationError
from repro.logstore.record import LogRecord
from repro.validation.tree import TreeNode, ValidationTree
from repro.workloads.scenarios import example1_log


@pytest.fixture
def table2_tree():
    """The tree of the paper's Figure 1 (built from Table 2)."""
    return ValidationTree.from_log(example1_log())


class TestInsertion:
    def test_single_record(self):
        tree = ValidationTree()
        tree.insert_set((1, 2), 800)
        assert tree.node_count() == 2
        assert tree.subset_sum(0b11) == 800

    def test_same_set_accumulates(self):
        tree = ValidationTree()
        tree.insert_set((1, 2), 800)
        tree.insert_set((1, 2), 40)
        assert tree.subset_sum(0b11) == 840
        assert tree.node_count() == 2  # no new nodes

    def test_prefix_sharing(self):
        tree = ValidationTree()
        tree.insert_set((1, 2), 10)
        tree.insert_set((1, 2, 4), 5)
        # Path 1->2 is shared; only node 4 is added.
        assert tree.node_count() == 3

    def test_children_kept_ordered(self):
        tree = ValidationTree()
        tree.insert_set((3,), 1)
        tree.insert_set((1,), 1)
        tree.insert_set((2,), 1)
        assert [child.index for child in tree.root.children] == [1, 2, 3]

    def test_empty_set_rejected(self):
        with pytest.raises(ValidationError):
            ValidationTree().insert_set((), 1)

    def test_unsorted_set_rejected(self):
        with pytest.raises(ValidationError):
            ValidationTree().insert_set((2, 1), 1)

    def test_duplicate_index_rejected(self):
        with pytest.raises(ValidationError):
            ValidationTree().insert_set((1, 1), 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            ValidationTree().insert_set((1,), -1)

    def test_insert_record(self):
        tree = ValidationTree()
        tree.insert(LogRecord(frozenset({4, 2, 1}), 30))
        assert tree.subset_sum(0b1011) == 30


class TestFigure1:
    """The tree of Figure 1: structure and counts from Table 2."""

    def test_root_children(self, table2_tree):
        # Branches start at 1 (for {1,2}, {1,2,4}), 2 ({2}), 3 ({3,5}), 5 ({5}).
        assert [child.index for child in table2_tree.root.children] == [1, 2, 3, 5]

    def test_stored_counts(self, table2_tree):
        counts = table2_tree.counts_by_mask()
        assert counts == {
            0b00011: 840,  # {1,2}
            0b00010: 400,  # {2}
            0b01011: 30,   # {1,2,4}
            0b10100: 800,  # {3,5}
            0b10000: 20,   # {5}
        }

    def test_node_count(self, table2_tree):
        # Paths: 1-2, 1-2-4, 2, 3-5, 5 -> nodes {1,12,124,2,3,35,5} = 7.
        assert table2_tree.node_count() == 7

    def test_interior_node_count_is_zero(self, table2_tree):
        # Node '1' (the prefix of {1,2}) carries no direct count.
        node1 = table2_tree.root.children[0]
        assert node1.index == 1
        assert node1.count == 0

    def test_depth(self, table2_tree):
        assert table2_tree.depth() == 3  # root -> 1 -> 2 -> 4

    def test_max_index(self, table2_tree):
        assert table2_tree.max_index() == 5


class TestSubsetSum:
    def test_lhs_for_full_set(self, table2_tree):
        # C<{1..5}> = sum of all stored counts.
        assert table2_tree.subset_sum(0b11111) == 2090

    def test_lhs_for_group1(self, table2_tree):
        # C<{1,2,4}> = C[{1,2}] + C[{2}] + C[{1,2,4}] = 840+400+30.
        assert table2_tree.subset_sum(0b01011) == 1270

    def test_lhs_for_group2(self, table2_tree):
        # C<{3,5}> = C[{3,5}] + C[{5}] = 820.
        assert table2_tree.subset_sum(0b10100) == 820

    def test_lhs_for_singleton(self, table2_tree):
        assert table2_tree.subset_sum(0b00010) == 400  # C<{2}> = C[{2}]
        assert table2_tree.subset_sum(0b00001) == 0    # C<{1}> : {1} never logged

    def test_lhs_for_cross_group_set(self, table2_tree):
        # C<{2,3}> = C[{2}] (no {3} or {2,3} records).
        assert table2_tree.subset_sum(0b00110) == 400

    def test_lhs_zero_mask(self, table2_tree):
        assert table2_tree.subset_sum(0) == 0

    def test_matches_brute_force_on_all_masks(self, table2_tree):
        counts = table2_tree.counts_by_mask()
        for mask in range(1, 1 << 5):
            expected = sum(
                count for stored, count in counts.items() if stored & mask == stored
            )
            assert table2_tree.subset_sum(mask) == expected


class TestConstruction:
    def test_from_counts(self):
        tree = ValidationTree.from_counts({frozenset({1, 3}): 7, frozenset({2}): 5})
        assert tree.subset_sum(0b111) == 12

    def test_to_nested_dict(self):
        tree = ValidationTree()
        tree.insert_set((1, 2), 10)
        rendered = tree.to_nested_dict()
        assert rendered["index"] == 0
        assert rendered["children"][0]["index"] == 1
        assert rendered["children"][0]["children"][0]["count"] == 10

    def test_deep_tree_no_recursion_limit(self):
        # 2000-deep path: iterative traversals must not hit the
        # interpreter recursion limit.
        tree = ValidationTree()
        tree.insert_set(tuple(range(1, 2001)), 1)
        mask = (1 << 2000) - 1
        assert tree.subset_sum(mask) == 1
        assert tree.node_count() == 2000
        assert tree.depth() == 2000


class TestRecursiveInsert:
    """The literal Algorithm 1 transcription equals the iterative insert."""

    def test_matches_iterative_on_table2(self):
        iterative = ValidationTree.from_log(example1_log())
        recursive = ValidationTree()
        for record in example1_log():
            recursive.insert_recursive(record)
        assert recursive.counts_by_mask() == iterative.counts_by_mask()
        assert recursive.to_nested_dict() == iterative.to_nested_dict()

    def test_accumulates_on_repeat(self):
        tree = ValidationTree()
        tree.insert_recursive(LogRecord(frozenset({1, 2}), 800))
        tree.insert_recursive(LogRecord(frozenset({1, 2}), 40))
        assert tree.subset_sum(0b11) == 840

    def test_random_equivalence(self):
        import random

        rng = random.Random(5)
        records = [
            LogRecord(
                frozenset(rng.sample(range(1, 9), rng.randint(1, 4))),
                rng.randint(1, 50),
            )
            for _ in range(60)
        ]
        iterative = ValidationTree()
        recursive = ValidationTree()
        for record in records:
            iterative.insert(record)
            recursive.insert_recursive(record)
        assert iterative.to_nested_dict() == recursive.to_nested_dict()


class TestMerge:
    def test_merge_equals_concatenated_log(self):
        from repro.logstore.log import ValidationLog

        first, second = ValidationLog(), ValidationLog()
        first.record({1, 2}, 800)
        first.record({2}, 400)
        second.record({1, 2}, 40)
        second.record({3, 5}, 800)
        combined = ValidationLog()
        for record in [*first, *second]:
            combined.append(record)

        merged = ValidationTree.from_log(first)
        merged.merge(ValidationTree.from_log(second))
        reference = ValidationTree.from_log(combined)
        assert merged.counts_by_mask() == reference.counts_by_mask()
        for mask in range(1, 32):
            assert merged.subset_sum(mask) == reference.subset_sum(mask)

    def test_merge_empty_is_noop(self, table2_tree):
        before = table2_tree.counts_by_mask()
        table2_tree.merge(ValidationTree())
        assert table2_tree.counts_by_mask() == before

    def test_merge_into_empty(self, table2_tree):
        target = ValidationTree()
        target.merge(table2_tree)
        assert target.counts_by_mask() == table2_tree.counts_by_mask()

    def test_merge_does_not_mutate_source(self, table2_tree):
        source_before = table2_tree.counts_by_mask()
        target = ValidationTree()
        target.insert_set((1,), 5)
        target.merge(table2_tree)
        assert table2_tree.counts_by_mask() == source_before

    def test_merge_is_commutative_on_counts(self):
        a = ValidationTree()
        a.insert_set((1, 3), 10)
        b = ValidationTree()
        b.insert_set((2,), 7)
        b.insert_set((1, 3), 5)
        ab = ValidationTree()
        ab.merge(a)
        ab.merge(b)
        ba = ValidationTree()
        ba.merge(b)
        ba.merge(a)
        assert ab.counts_by_mask() == ba.counts_by_mask()


class TestTreeNode:
    def test_child_with_index_stops_early(self):
        node = TreeNode()
        node.insert_child(2)
        node.insert_child(5)
        assert node.child_with_index(2).index == 2
        assert node.child_with_index(3) is None
        assert node.child_with_index(9) is None

    def test_insert_child_is_idempotent(self):
        node = TreeNode()
        first = node.insert_child(3)
        second = node.insert_child(3)
        assert first is second
        assert len(node.children) == 1
