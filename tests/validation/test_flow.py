"""Unit tests for the max-flow feasibility oracle."""

import pytest

from repro.errors import ValidationError
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.tree_validator import TreeValidator
from repro.validation.tree import ValidationTree
from repro.workloads.scenarios import example1_log

EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


class TestFeasibility:
    def test_example1_feasible(self):
        oracle = FlowFeasibilityOracle(EXAMPLE1_AGGREGATES)
        assert oracle.feasible_log(example1_log())

    def test_simple_infeasible(self):
        oracle = FlowFeasibilityOracle([100])
        assert not oracle.feasible({0b1: 150})

    def test_flexible_demand_routes_around(self):
        # 80 must go to license 1; 60 can go anywhere: fits in (100, 50).
        oracle = FlowFeasibilityOracle([100, 50])
        assert oracle.feasible({0b01: 80, 0b11: 60})

    def test_paper_example1_pathology_is_feasible(self):
        # L_U^1 (800, {1,2}) + L_U^2 (400, {2}) fit: 800->L1, 400->L2.
        oracle = FlowFeasibilityOracle([2000, 1000])
        assert oracle.feasible({0b11: 800, 0b10: 400})

    def test_combined_infeasibility(self):
        # Each singleton ok, union violated: 60+60 > 100.
        oracle = FlowFeasibilityOracle([70, 70])
        assert oracle.feasible({0b01: 60, 0b10: 60})
        assert not oracle.feasible({0b01: 60, 0b10: 60, 0b11: 30})

    def test_empty_demand_feasible(self):
        assert FlowFeasibilityOracle([10]).feasible({})

    def test_bad_mask_rejected(self):
        with pytest.raises(ValidationError):
            FlowFeasibilityOracle([10]).feasible({0b10: 5})


class TestMaxRoutable:
    def test_total_when_feasible(self):
        oracle = FlowFeasibilityOracle([100, 50])
        assert oracle.max_routable({0b01: 80, 0b11: 60}) == 140

    def test_capped_when_infeasible(self):
        oracle = FlowFeasibilityOracle([100])
        assert oracle.max_routable({0b1: 150}) == 100


class TestAssignment:
    def test_assignment_respects_sets_and_capacities(self):
        oracle = FlowFeasibilityOracle([100, 50, 80])
        counts = {0b011: 90, 0b110: 60, 0b100: 40}
        feasible, routing = oracle.assignment(counts)
        assert feasible
        # Every routed count goes to a license inside its demand set.
        per_license = {1: 0, 2: 0, 3: 0}
        per_set = {mask: 0 for mask in counts}
        for (mask, license_index), amount in routing.items():
            assert mask & (1 << (license_index - 1))
            per_license[license_index] += amount
            per_set[mask] += amount
        for mask, demanded in counts.items():
            assert per_set[mask] == demanded
        assert per_license[1] <= 100
        assert per_license[2] <= 50
        assert per_license[3] <= 80

    def test_infeasible_assignment_flagged(self):
        oracle = FlowFeasibilityOracle([10])
        feasible, _ = oracle.assignment({0b1: 20})
        assert not feasible


class TestRemainingCapacity:
    def test_matches_slack_for_singleton(self):
        oracle = FlowFeasibilityOracle([100])
        assert oracle.remaining_capacity({0b1: 30}, 0b1) == 70

    def test_flexible_set_uses_both_licenses(self):
        oracle = FlowFeasibilityOracle([100, 50])
        # Nothing issued: a {1,2} issuance can absorb 150.
        assert oracle.remaining_capacity({}, 0b11) == 150

    def test_zero_when_log_already_infeasible(self):
        oracle = FlowFeasibilityOracle([10])
        assert oracle.remaining_capacity({0b1: 20}, 0b1) == 0

    def test_bad_target_rejected(self):
        with pytest.raises(ValidationError):
            FlowFeasibilityOracle([10]).remaining_capacity({}, 0)


class TestEquivalenceWithEquations:
    """The Gale-Hoffman equivalence: all equations hold iff flow-feasible."""

    @pytest.mark.parametrize(
        "counts",
        [
            {0b011: 840, 0b010: 400, 0b01011: 30, 0b10100: 800, 0b10000: 20},
            {0b01: 2000, 0b10: 1000},
            {0b01: 2001},
            {0b11: 2500, 0b10: 600},
        ],
    )
    def test_verdicts_match(self, counts):
        aggregates = EXAMPLE1_AGGREGATES
        oracle = FlowFeasibilityOracle(aggregates)
        tree = ValidationTree.from_counts(
            {
                frozenset(
                    i + 1 for i in range(5) if mask & (1 << i)
                ): count
                for mask, count in counts.items()
            }
        )
        report = TreeValidator(aggregates).validate(tree)
        assert report.is_valid == oracle.feasible(counts)
