"""Unit tests for bitmask helpers."""

from repro.validation.bitset import (
    aggregate_sums,
    indexes_of,
    iter_masks,
    iter_submasks,
    iter_supersets,
    mask_from_indexes,
    popcount,
)


class TestBasics:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3

    def test_indexes_of(self):
        assert indexes_of(0b1011) == (1, 2, 4)
        assert indexes_of(0) == ()

    def test_mask_from_indexes_round_trip(self):
        for mask in (0b1, 0b1011, 0b10101):
            assert mask_from_indexes(indexes_of(mask)) == mask

    def test_mask_from_frozenset(self):
        assert mask_from_indexes(frozenset({1, 3})) == 0b101


class TestIterators:
    def test_iter_masks_count(self):
        # The paper's 2^N - 1 equations, one per non-empty subset.
        assert len(list(iter_masks(5))) == 31

    def test_iter_masks_covers_all(self):
        assert sorted(iter_masks(3)) == list(range(1, 8))

    def test_iter_submasks_count(self):
        # 2^m - 1 non-empty submasks of an m-bit set.
        assert len(list(iter_submasks(0b10110))) == 7

    def test_iter_submasks_are_subsets(self):
        mask = 0b10110
        for sub in iter_submasks(mask):
            assert sub & mask == sub
            assert sub != 0

    def test_iter_submasks_of_zero_is_empty(self):
        assert list(iter_submasks(0)) == []

    def test_iter_supersets(self):
        supersets = sorted(iter_supersets(0b001, 0b111))
        assert supersets == [0b001, 0b011, 0b101, 0b111]

    def test_iter_supersets_full_mask(self):
        assert list(iter_supersets(0b111, 0b111)) == [0b111]

    def test_iter_supersets_count(self):
        # 2^(|universe| - |mask|) supersets.
        assert len(list(iter_supersets(0b1, 0b11111))) == 16


class TestAggregateSums:
    def test_small_example(self):
        assert aggregate_sums([5, 7]) == [0, 5, 7, 12]

    def test_matches_direct_summation(self):
        aggregates = [3, 1, 4, 1, 5]
        sums = aggregate_sums(aggregates)
        for mask in iter_masks(5):
            expected = sum(aggregates[i - 1] for i in indexes_of(mask))
            assert sums[mask] == expected

    def test_example1_full_set(self):
        # A[{all 5 licenses}] = 2000+1000+3000+4000+2000.
        sums = aggregate_sums([2000, 1000, 3000, 4000, 2000])
        assert sums[0b11111] == 12000

    def test_example2_rhs(self):
        # Paper Example 2: A[{L2, L3, L4}] = 1000 + 3000 + 4000 = 8000.
        sums = aggregate_sums([2000, 1000, 3000, 4000, 2000])
        assert sums[0b01110] == 8000
