"""Unit tests for validation reports and violations."""

from repro.validation.report import ValidationReport, Violation, make_report


class TestViolation:
    def test_license_set_from_mask(self):
        violation = Violation(0b1011, 50, 40)
        assert violation.license_set == frozenset({1, 2, 4})

    def test_excess(self):
        assert Violation(0b1, 50, 40).excess == 10

    def test_str_mentions_licenses(self):
        text = str(Violation(0b11, 50, 40))
        assert "LD1" in text and "LD2" in text


class TestReport:
    def test_valid_report(self):
        report = ValidationReport("tree", 31)
        assert report.is_valid
        assert "VALID" in report.summary()
        assert "31 equations" in report.summary()

    def test_invalid_report(self):
        report = make_report("tree", 31, [Violation(0b1, 5, 4)])
        assert not report.is_valid
        assert "INVALID" in report.summary()
        assert report.violated_sets == [frozenset({1})]

    def test_make_report_orders_by_mask(self):
        report = make_report(
            "x", 3, [Violation(0b100, 1, 0), Violation(0b001, 1, 0)]
        )
        assert [v.mask for v in report.violations] == [0b001, 0b100]

    def test_str_lists_violations(self):
        report = make_report("x", 3, [Violation(0b1, 5, 4)])
        assert "C<{LD1}>" in str(report)
