"""Unit tests for the closed-form validation cost model."""

import pytest

from repro.errors import ValidationError
from repro.validation.bitset import iter_masks, iter_supersets, popcount
from repro.validation.complexity import (
    equation_count,
    equations_touched_by_issue,
    expansion_terms,
    grouped_equation_count,
    grouped_equations_touched,
    total_expansion_terms,
)


class TestPaperQuantities:
    def test_equation_count_example(self):
        # Example 2: five licenses -> 31 equations.
        assert equation_count(5) == 31

    def test_equations_touched(self):
        # Section 2.1: a set of k licenses is a subset of 2^(N-k) sets.
        assert equations_touched_by_issue(5, 5) == 1
        assert equations_touched_by_issue(5, 1) == 16

    def test_expansion_terms_example2(self):
        # The {L2, L3, L4} equation has 2^3 - 1 = 7 terms.
        assert expansion_terms(3) == 7

    def test_grouped_counts_match_worked_example(self):
        assert grouped_equation_count([3, 2]) == 10

    def test_grouped_touched_shrinks(self):
        # Match set of size 2 inside a 3-license group: 2 equations
        # instead of 2^(5-2) = 8 without grouping.
        assert grouped_equations_touched(3, 2) == 2
        assert equations_touched_by_issue(5, 2) == 8


class TestCrossChecks:
    @pytest.mark.parametrize("n", range(1, 8))
    def test_equation_count_matches_enumeration(self, n):
        assert equation_count(n) == len(list(iter_masks(n)))

    @pytest.mark.parametrize("n,k", [(4, 1), (4, 2), (5, 3), (6, 6)])
    def test_touched_matches_superset_enumeration(self, n, k):
        universe = (1 << n) - 1
        mask = (1 << k) - 1  # the first k licenses
        assert equations_touched_by_issue(n, k) == len(
            list(iter_supersets(mask, universe))
        )

    @pytest.mark.parametrize("n", range(1, 7))
    def test_total_terms_matches_summation(self, n):
        direct = sum(expansion_terms(popcount(mask)) for mask in iter_masks(n))
        assert total_expansion_terms(n) == direct


class TestErrors:
    def test_bad_inputs(self):
        with pytest.raises(ValidationError):
            equation_count(0)
        with pytest.raises(ValidationError):
            equations_touched_by_issue(3, 0)
        with pytest.raises(ValidationError):
            equations_touched_by_issue(3, 4)
        with pytest.raises(ValidationError):
            expansion_terms(0)
        with pytest.raises(ValidationError):
            total_expansion_terms(0)
        with pytest.raises(ValidationError):
            grouped_equation_count([])
        with pytest.raises(ValidationError):
            grouped_equations_touched(2, 3)
