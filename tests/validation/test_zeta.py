"""Unit tests for the zeta-transform (SOS DP) validation engine."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.validation.naive import ScanValidator
from repro.validation.zeta import ZetaValidator, subset_sums_dense
from repro.workloads.scenarios import example1_log

EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


class TestSubsetSumsDense:
    def test_small_case(self):
        table = subset_sums_dense({0b01: 10, 0b10: 20}, 2)
        assert table.tolist() == [0, 10, 20, 30]

    def test_value_on_its_own_mask(self):
        table = subset_sums_dense({0b101: 7}, 3)
        assert table[0b101] == 7
        assert table[0b111] == 7
        assert table[0b011] == 0

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        counts = {int(m): int(rng.integers(1, 50)) for m in rng.integers(1, 64, 12)}
        table = subset_sums_dense(counts, 6)
        for mask in range(64):
            expected = sum(v for m, v in counts.items() if m & mask == m)
            assert table[mask] == expected

    def test_out_of_range_mask_rejected(self):
        with pytest.raises(ValidationError):
            subset_sums_dense({0b1000: 1}, 3)


class TestZetaValidator:
    def test_example1_valid(self):
        report = ZetaValidator(EXAMPLE1_AGGREGATES).validate_log(example1_log())
        assert report.is_valid
        assert report.equations_checked == 31
        assert report.engine == "zeta"

    def test_overissue_detected(self):
        report = ZetaValidator([100]).validate_counts({0b1: 150})
        assert not report.is_valid
        assert report.violations[0].lhs == 150
        assert report.violations[0].rhs == 100

    def test_agrees_with_scan_engine(self):
        counts = {0b001: 900, 0b011: 500, 0b110: 700, 0b100: 100}
        aggregates = [800, 400, 600]
        zeta = ZetaValidator(aggregates).validate_counts(counts)
        scan = ScanValidator(aggregates).validate_counts(counts)
        assert zeta.violations == scan.violations

    def test_max_n_cap(self):
        with pytest.raises(ValidationError):
            ZetaValidator([1] * 10, max_n=8)

    def test_empty_counts_valid(self):
        assert ZetaValidator([5, 5]).validate_counts({}).is_valid

    def test_lhs_table_exposed(self):
        validator = ZetaValidator([10, 10])
        table = validator.lhs_table({0b01: 3, 0b11: 4})
        assert table[0b01] == 3
        assert table[0b11] == 7
