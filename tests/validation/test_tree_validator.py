"""Unit tests for Algorithm 2 (all-equations tree validation)."""

import pytest

from repro.errors import ValidationError
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.workloads.scenarios import example1, example1_log

EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


@pytest.fixture
def table2_tree():
    return ValidationTree.from_log(example1_log())


class TestConstruction:
    def test_empty_aggregates_rejected(self):
        with pytest.raises(ValidationError):
            TreeValidator([])

    def test_negative_aggregate_rejected(self):
        with pytest.raises(ValidationError):
            TreeValidator([10, -5])

    def test_n_and_aggregates(self):
        validator = TreeValidator(EXAMPLE1_AGGREGATES)
        assert validator.n == 5
        assert validator.aggregates == EXAMPLE1_AGGREGATES

    def test_rhs_lookup(self):
        validator = TreeValidator(EXAMPLE1_AGGREGATES)
        assert validator.rhs(0b01110) == 8000  # paper Example 2


class TestValidation:
    def test_example1_log_is_valid(self, table2_tree):
        report = TreeValidator(EXAMPLE1_AGGREGATES).validate(table2_tree)
        assert report.is_valid
        assert report.equations_checked == 31  # 2^5 - 1
        assert report.engine == "tree"

    def test_validate_log_convenience(self):
        report = TreeValidator(EXAMPLE1_AGGREGATES).validate_log(example1_log())
        assert report.is_valid

    def test_overissue_single_license(self):
        tree = ValidationTree()
        tree.insert_set((2,), 1200)  # A_2 = 1000
        report = TreeValidator(EXAMPLE1_AGGREGATES).validate(tree)
        assert not report.is_valid
        assert frozenset({2}) in report.violated_sets

    def test_violation_lhs_rhs(self):
        tree = ValidationTree()
        tree.insert_set((1,), 150)
        report = TreeValidator([100]).validate(tree)
        violation = report.violations[0]
        assert (violation.lhs, violation.rhs, violation.excess) == (150, 100, 50)

    def test_combined_overissue_detected(self):
        # Each license individually within bounds, but their union is not:
        # C<{1,2}> = 900+900+900 = 2700 > 2000+1000? No: 2700 <= 3000.
        # Use 1100 + 1100 + 1100 = 3300 > 3000.
        tree = ValidationTree()
        tree.insert_set((1,), 1100)
        tree.insert_set((2,), 900)
        tree.insert_set((1, 2), 1100)
        report = TreeValidator(EXAMPLE1_AGGREGATES).validate(tree)
        assert not report.is_valid
        assert frozenset({1, 2}) in report.violated_sets
        # Singletons alone are fine.
        assert frozenset({1}) not in report.violated_sets
        assert frozenset({2}) not in report.violated_sets

    def test_violation_propagates_to_supersets(self):
        # A violated set S also violates every superset T whose extra
        # licenses have no spare capacity... not in general; but a
        # violation of the FULL set means total issued > total capacity.
        tree = ValidationTree()
        tree.insert_set((1,), 99)
        report = TreeValidator([10, 10]).validate(tree)
        violated = set(report.violated_sets)
        assert frozenset({1}) in violated
        assert frozenset({1, 2}) in violated  # 99 > 20

    def test_stop_at_first(self):
        tree = ValidationTree()
        tree.insert_set((1,), 99)
        report = TreeValidator([10, 10]).validate(tree, stop_at_first=True)
        assert len(report.violations) == 1
        assert report.equations_checked < 3

    def test_tree_with_out_of_range_index_rejected(self):
        tree = ValidationTree()
        tree.insert_set((7,), 1)
        with pytest.raises(ValidationError):
            TreeValidator([10, 10]).validate(tree)

    def test_empty_tree_valid(self):
        report = TreeValidator([10]).validate(ValidationTree())
        assert report.is_valid
        assert report.equations_checked == 1


class TestCheckEquation:
    def test_single_equation_ok(self, table2_tree):
        validator = TreeValidator(EXAMPLE1_AGGREGATES)
        assert validator.check_equation(table2_tree, 0b01011) is None

    def test_single_equation_violated(self):
        tree = ValidationTree()
        tree.insert_set((1,), 150)
        validator = TreeValidator([100])
        violation = validator.check_equation(tree, 0b1)
        assert violation is not None
        assert violation.lhs == 150

    def test_mask_out_of_range(self, table2_tree):
        validator = TreeValidator(EXAMPLE1_AGGREGATES)
        with pytest.raises(ValidationError):
            validator.check_equation(table2_tree, 0)
        with pytest.raises(ValidationError):
            validator.check_equation(table2_tree, 1 << 5)


class TestBoundaryExactness:
    def test_exactly_at_capacity_is_valid(self):
        tree = ValidationTree()
        tree.insert_set((1,), 100)
        assert TreeValidator([100]).validate(tree).is_valid

    def test_one_over_capacity_is_invalid(self):
        tree = ValidationTree()
        tree.insert_set((1,), 101)
        assert not TreeValidator([100]).validate(tree).is_valid
