"""Property tests: every validation engine agrees on random logs.

This is the correctness backbone of the reproduction: the paper's tree
engine, both naive baselines, the zeta engine and the max-flow oracle are
independent implementations of the same mathematical object (the 2^N - 1
validation equations / transportation feasibility), so they must agree on
every input.
"""

from hypothesis import given, settings, strategies as st

from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.naive import ExpansionValidator, ScanValidator
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.validation.zeta import ZetaValidator


@st.composite
def counts_and_aggregates(draw):
    n = draw(st.integers(min_value=1, max_value=7))
    universe = (1 << n) - 1
    n_sets = draw(st.integers(min_value=0, max_value=10))
    counts = {}
    for _ in range(n_sets):
        mask = draw(st.integers(min_value=1, max_value=universe))
        counts[mask] = counts.get(mask, 0) + draw(
            st.integers(min_value=1, max_value=200)
        )
    aggregates = [
        draw(st.integers(min_value=0, max_value=300)) for _ in range(n)
    ]
    return counts, aggregates


def _tree_from_counts(counts):
    tree = ValidationTree()
    for mask, count in counts.items():
        indexes = tuple(i + 1 for i in range(mask.bit_length()) if mask & (1 << i))
        tree.insert_set(indexes, count)
    return tree


@settings(max_examples=120, deadline=None)
@given(counts_and_aggregates())
def test_all_equation_engines_agree(data):
    counts, aggregates = data
    tree_report = TreeValidator(aggregates).validate(_tree_from_counts(counts))
    scan_report = ScanValidator(aggregates).validate_counts(counts)
    expansion_report = ExpansionValidator(aggregates).validate_counts(counts)
    zeta_report = ZetaValidator(aggregates).validate_counts(counts)

    assert tree_report.violations == scan_report.violations
    assert tree_report.violations == expansion_report.violations
    assert tree_report.violations == zeta_report.violations


@settings(max_examples=120, deadline=None)
@given(counts_and_aggregates())
def test_equations_iff_flow_feasible(data):
    """Gale-Hoffman: all equations hold <=> demands are routable."""
    counts, aggregates = data
    report = TreeValidator(aggregates).validate(_tree_from_counts(counts))
    oracle = FlowFeasibilityOracle(aggregates)
    assert report.is_valid == oracle.feasible(counts)


@settings(max_examples=80, deadline=None)
@given(counts_and_aggregates())
def test_tree_subset_sum_matches_zeta_table(data):
    counts, aggregates = data
    n = len(aggregates)
    tree = _tree_from_counts(counts)
    table = ZetaValidator(aggregates).lhs_table(counts)
    for mask in range(1, 1 << n):
        assert tree.subset_sum(mask) == table[mask]


@settings(max_examples=60, deadline=None)
@given(counts_and_aggregates(), st.integers(min_value=1, max_value=127))
def test_headroom_matches_flow_remaining_capacity(data, raw_target):
    """On feasible logs, the superset-enumeration headroom equals the
    flow-based remaining capacity (the definitions only diverge on logs
    that are already invalid -- see repro.validation.capacity)."""
    from hypothesis import assume

    from repro.validation.capacity import headroom

    counts, aggregates = data
    n = len(aggregates)
    universe = (1 << n) - 1
    target = raw_target & universe
    if target == 0:
        target = 1
    oracle = FlowFeasibilityOracle(aggregates)
    assume(oracle.feasible(counts))
    tree = _tree_from_counts(counts)
    expected = oracle.remaining_capacity(counts, target)
    assert headroom(tree, aggregates, target) == expected


@settings(max_examples=40, deadline=None)
@given(counts_and_aggregates(), st.integers(min_value=1, max_value=127))
def test_issuing_headroom_keeps_log_feasible(data, raw_target):
    """Issuing exactly headroom(S) more counts keeps every equation
    satisfiable; issuing one more breaks a superset equation of S."""
    from hypothesis import assume

    from repro.validation.capacity import headroom

    counts, aggregates = data
    n = len(aggregates)
    target = raw_target & ((1 << n) - 1)
    if target == 0:
        target = 1
    oracle = FlowFeasibilityOracle(aggregates)
    assume(oracle.feasible(counts))
    tree = _tree_from_counts(counts)
    slack = headroom(tree, aggregates, target)
    if slack > 0:
        probe = dict(counts)
        probe[target] = probe.get(target, 0) + slack
        assert oracle.feasible(probe)
        probe[target] += 1
        assert not oracle.feasible(probe)
    else:
        probe = dict(counts)
        probe[target] = probe.get(target, 0) + 1
        assert not oracle.feasible(probe)
