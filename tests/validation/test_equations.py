"""Unit tests for validation equations as first-class objects."""

import pytest

from repro.errors import ValidationError
from repro.validation.equations import (
    ValidationEquation,
    enumerate_equations,
    equation_for_set,
    total_term_count,
)

EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


class TestEquationForSet:
    def test_example2_equation(self):
        # Paper Example 2: the equation for {L2, L3, L4}.
        equation = equation_for_set([2, 3, 4], EXAMPLE1_AGGREGATES)
        assert equation.rhs == 8000
        assert equation.term_count == 7
        terms = set(equation.lhs_terms())
        assert terms == {
            frozenset({2}),
            frozenset({3}),
            frozenset({4}),
            frozenset({2, 3}),
            frozenset({2, 4}),
            frozenset({3, 4}),
            frozenset({2, 3, 4}),
        }

    def test_render_contains_all_terms(self):
        equation = equation_for_set([2, 3], [10, 20, 30])
        rendered = equation.render()
        assert "C[{LD2}]" in rendered
        assert "C[{LD2, LD3}]" in rendered
        assert "A[{LD2, LD3}] = 50" in rendered

    def test_empty_set_rejected(self):
        with pytest.raises(ValidationError):
            equation_for_set([], [10])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            equation_for_set([3], [10, 20])


class TestEvaluation:
    def test_evaluate_lhs(self):
        equation = equation_for_set([1, 2], [100, 100])
        counts = {0b01: 10, 0b10: 20, 0b11: 5}
        assert equation.evaluate_lhs(counts) == 35

    def test_evaluate_ignores_non_subsets(self):
        equation = equation_for_set([1], [100, 100])
        counts = {0b01: 10, 0b10: 20, 0b11: 5}
        assert equation.evaluate_lhs(counts) == 10

    def test_holds(self):
        equation = equation_for_set([1], [15])
        assert equation.holds({0b1: 15})
        assert not equation.holds({0b1: 16})


class TestEnumeration:
    def test_count_is_exponential(self):
        assert len(list(enumerate_equations([1] * 5))) == 31

    def test_rhs_values(self):
        equations = {e.mask: e.rhs for e in enumerate_equations([10, 20])}
        assert equations == {0b01: 10, 0b10: 20, 0b11: 30}

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            list(enumerate_equations([]))

    def test_license_sets(self):
        sets = [e.license_set for e in enumerate_equations([1, 1])]
        assert sets == [frozenset({1}), frozenset({2}), frozenset({1, 2})]


class TestTermCount:
    def test_formula(self):
        # Σ over non-empty S of (2^|S| - 1) = 3^n - 2^n.
        for n in range(1, 8):
            direct = sum(
                e.term_count for e in enumerate_equations([1] * n)
            )
            assert direct == total_term_count(n)
