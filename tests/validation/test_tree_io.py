"""Unit tests for validation-tree checkpointing."""

import json

import pytest

from repro.errors import SerializationError
from repro.core.grouping import GroupStructure
from repro.core.validator import GroupedValidator
from repro.validation.tree import ValidationTree
from repro.validation.tree_io import (
    dumps_grouped,
    dumps_tree,
    loads_grouped,
    loads_tree,
    tree_from_dict,
    tree_to_dict,
)
from repro.workloads.scenarios import example1, example1_log


class TestTreeRoundTrip:
    def test_table2_tree(self):
        tree = ValidationTree.from_log(example1_log())
        rebuilt = loads_tree(dumps_tree(tree))
        assert rebuilt.counts_by_mask() == tree.counts_by_mask()
        assert rebuilt.node_count() == tree.node_count()
        # Subset sums identical over the whole lattice.
        for mask in range(1, 32):
            assert rebuilt.subset_sum(mask) == tree.subset_sum(mask)

    def test_empty_tree(self):
        rebuilt = loads_tree(dumps_tree(ValidationTree()))
        assert rebuilt.node_count() == 0

    def test_checkpoint_is_json(self):
        payload = json.loads(dumps_tree(ValidationTree.from_log(example1_log())))
        assert payload["version"] == 1

    def test_child_order_enforced(self):
        payload = {
            "version": 1,
            "tree": {
                "index": 0,
                "count": 0,
                "children": [
                    {"index": 3, "count": 1, "children": []},
                    {"index": 1, "count": 1, "children": []},
                ],
            },
        }
        with pytest.raises(SerializationError):
            tree_from_dict(payload)

    def test_bad_version(self):
        with pytest.raises(SerializationError):
            tree_from_dict({"version": 99, "tree": {}})

    def test_bad_root(self):
        with pytest.raises(SerializationError):
            tree_from_dict(
                {"version": 1, "tree": {"index": 2, "count": 0, "children": []}}
            )
        with pytest.raises(SerializationError):
            tree_from_dict(
                {"version": 1, "tree": {"index": 0, "count": 5, "children": []}}
            )

    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            loads_tree("{broken")

    def test_malformed_node(self):
        with pytest.raises(SerializationError):
            tree_from_dict({"version": 1, "tree": {"index": 0}})


class TestCheckpointProperties:
    """Property: arbitrary trees survive the checkpoint round-trip."""

    def test_random_trees_round_trip(self):
        from hypothesis import given, settings, strategies as st

        @st.composite
        def random_trees(draw):
            tree = ValidationTree()
            for _ in range(draw(st.integers(min_value=0, max_value=15))):
                members = draw(
                    st.sets(
                        st.integers(min_value=1, max_value=8),
                        min_size=1,
                        max_size=5,
                    )
                )
                tree.insert_set(
                    tuple(sorted(members)), draw(st.integers(1, 100))
                )
            return tree

        @settings(max_examples=60, deadline=None)
        @given(random_trees())
        def check(tree):
            rebuilt = loads_tree(dumps_tree(tree))
            assert rebuilt.counts_by_mask() == tree.counts_by_mask()
            assert rebuilt.node_count() == tree.node_count()
            for mask in range(1, 1 << 8):
                assert rebuilt.subset_sum(mask) == tree.subset_sum(mask)

        check()


class TestGroupedRoundTrip:
    def test_grouped_checkpoint(self):
        pool = example1().pool
        validator = GroupedValidator.from_pool(pool)
        grouped = validator.build(example1_log())
        text = dumps_grouped(grouped.structure, list(grouped.trees))
        structure, trees = loads_grouped(text)
        assert structure == grouped.structure
        assert len(trees) == 2
        for original, rebuilt in zip(grouped.trees, trees):
            assert rebuilt.counts_by_mask() == original.counts_by_mask()

    def test_restored_checkpoint_validates_identically(self):
        from repro.core.grouped_tree import GroupedValidationTree

        pool = example1().pool
        validator = GroupedValidator.from_pool(pool)
        grouped = validator.build(example1_log())
        structure, trees = loads_grouped(
            dumps_grouped(grouped.structure, list(grouped.trees))
        )
        restored = GroupedValidationTree(
            structure,
            trees,
            [
                [pool.aggregate_array()[i - 1] for i in sorted(group)]
                for group in structure.groups
            ],
        )
        assert restored.validate().is_valid == grouped.validate().is_valid
        assert restored.equations_required == grouped.equations_required

    def test_tree_count_mismatch(self):
        structure = GroupStructure((frozenset({1}), frozenset({2})), 2)
        with pytest.raises(SerializationError):
            dumps_grouped(structure, [ValidationTree()])

    def test_malformed_grouped_payload(self):
        with pytest.raises(SerializationError):
            loads_grouped('{"version": 1, "n": 2}')
        with pytest.raises(SerializationError):
            loads_grouped("{nope")
