"""Unit + property tests for violation diagnosis and revocation planning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.validation.diagnosis import (
    apply_revocation,
    min_revocation_total,
    minimal_violations,
    revocation_plan,
    select_revocations,
)
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.naive import ScanValidator
from repro.validation.report import Violation, make_report


class TestMinimalViolations:
    def test_subset_shadows_superset(self):
        report = make_report(
            "x", 3, [Violation(0b01, 5, 4), Violation(0b11, 9, 8)]
        )
        assert [v.mask for v in minimal_violations(report)] == [0b01]

    def test_incomparable_sets_both_kept(self):
        report = make_report(
            "x", 7, [Violation(0b011, 5, 4), Violation(0b110, 9, 8)]
        )
        assert [v.mask for v in minimal_violations(report)] == [0b011, 0b110]

    def test_empty_report(self):
        assert minimal_violations(make_report("x", 3, [])) == []

    def test_every_violation_contains_a_minimal_one(self):
        counts = {0b001: 500, 0b010: 300, 0b011: 400}
        aggregates = [300, 200, 100]
        report = ScanValidator(aggregates).validate_counts(counts)
        minimal = minimal_violations(report)
        assert minimal
        for violation in report.violations:
            assert any(
                m.mask & violation.mask == m.mask for m in minimal
            )


class TestRevocation:
    def test_zero_for_feasible(self):
        assert min_revocation_total({0b1: 50}, [100]) == 0
        total, plan = revocation_plan({0b1: 50}, [100])
        assert total == 0 and plan == {}

    def test_simple_excess(self):
        assert min_revocation_total({0b1: 150}, [100]) == 50

    def test_flexible_routing_reduces_revocation(self):
        # 120 against {1,2}: routes 100->L1, 20->L2; nothing to revoke.
        assert min_revocation_total({0b11: 120}, [100, 50]) == 0
        # 200 against {1,2}: capacity 150 -> revoke 50.
        assert min_revocation_total({0b11: 200}, [100, 50]) == 50

    def test_plan_restores_feasibility(self):
        counts = {0b01: 120, 0b10: 80, 0b11: 60}
        aggregates = [100, 90]
        total, plan = revocation_plan(counts, aggregates)
        assert total == min_revocation_total(counts, aggregates)
        repaired = apply_revocation(counts, plan)
        assert FlowFeasibilityOracle(aggregates).feasible(repaired)

    def test_apply_revocation_drops_empty_sets(self):
        repaired = apply_revocation({0b1: 10}, {0b1: 10})
        assert repaired == {}

    def test_apply_revocation_overdraft_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            apply_revocation({0b1: 10}, {0b1: 20})


class TestSelectRevocations:
    def _log(self):
        from repro.logstore.log import ValidationLog

        log = ValidationLog()
        log.record({1}, 60, "a")
        log.record({1}, 40, "b")
        log.record({1}, 30, "c")
        log.record({2}, 50, "d")
        return log

    def test_picks_largest_first(self):
        ids, total = select_revocations(self._log(), {0b1: 50})
        assert ids == ["a"]  # 60 >= 50 in one revocation
        assert total == 60

    def test_multiple_needed(self):
        ids, total = select_revocations(self._log(), {0b1: 90})
        assert ids == ["a", "b"]
        assert total == 100

    def test_multiple_sets(self):
        ids, total = select_revocations(self._log(), {0b1: 10, 0b10: 50})
        assert set(ids) == {"a", "d"}
        assert total == 110

    def test_empty_plan(self):
        assert select_revocations(self._log(), {}) == ([], 0)

    def test_insufficient_revocable_records(self):
        from repro.errors import ValidationError
        from repro.logstore.log import ValidationLog

        log = ValidationLog()
        log.record({1}, 30, "a")
        log.record({1}, 100)  # anonymous: cannot be revoked
        with pytest.raises(ValidationError):
            select_revocations(log, {0b1: 50})

    def test_end_to_end_remediation(self):
        """plan -> pick licenses -> log.without() -> valid again."""
        from repro.logstore.log import ValidationLog
        from repro.validation.naive import ScanValidator

        aggregates = [100, 80]
        log = ValidationLog()
        log.record({1}, 70, "u1")
        log.record({1, 2}, 90, "u2")
        log.record({2}, 60, "u3")
        log.record({1, 2}, 40, "u4")  # total 260 > 180 capacity
        assert not ScanValidator(aggregates).validate_log(log).is_valid

        total, plan = revocation_plan(log.counts_by_mask(), aggregates)
        assert total > 0
        ids, _revoked = select_revocations(log, plan)
        repaired = log.without(ids)
        assert ScanValidator(aggregates).validate_log(repaired).is_valid
        # Idempotent: revoking again changes nothing.
        assert len(repaired.without(ids)) == len(repaired)


class TestLogWithout:
    def test_without_removes_by_id(self):
        from repro.logstore.log import ValidationLog

        log = ValidationLog()
        log.record({1}, 10, "a")
        log.record({2}, 20, "b")
        remaining = log.without(["a"])
        assert len(remaining) == 1
        assert remaining.set_count({2}) == 20
        assert remaining.set_count({1}) == 0

    def test_without_keeps_anonymous_records(self):
        from repro.logstore.log import ValidationLog

        log = ValidationLog()
        log.record({1}, 10)
        assert len(log.without(["anything"])) == 1

    def test_original_unchanged(self):
        from repro.logstore.log import ValidationLog

        log = ValidationLog()
        log.record({1}, 10, "a")
        log.without(["a"])
        assert len(log) == 1


@st.composite
def violating_scenarios(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    universe = (1 << n) - 1
    counts = {}
    for _ in range(draw(st.integers(min_value=1, max_value=8))):
        mask = draw(st.integers(min_value=1, max_value=universe))
        counts[mask] = counts.get(mask, 0) + draw(st.integers(1, 150))
    aggregates = [draw(st.integers(0, 120)) for _ in range(n)]
    return counts, aggregates


class TestRevocationProperties:
    @settings(max_examples=80, deadline=None)
    @given(violating_scenarios())
    def test_plan_total_is_exact_and_sufficient(self, scenario):
        counts, aggregates = scenario
        total, plan = revocation_plan(counts, aggregates)
        assert total == min_revocation_total(counts, aggregates)
        assert total == sum(plan.values())
        repaired = apply_revocation(counts, plan)
        assert FlowFeasibilityOracle(aggregates).feasible(repaired)

    @settings(max_examples=80, deadline=None)
    @given(violating_scenarios())
    def test_zero_revocation_iff_valid(self, scenario):
        counts, aggregates = scenario
        report = ScanValidator(aggregates).validate_counts(counts)
        assert (min_revocation_total(counts, aggregates) == 0) == report.is_valid

    @settings(max_examples=60, deadline=None)
    @given(violating_scenarios())
    def test_revocation_lower_bound_from_violations(self, scenario):
        """Any violated equation's excess lower-bounds the revocation."""
        counts, aggregates = scenario
        report = ScanValidator(aggregates).validate_counts(counts)
        total = min_revocation_total(counts, aggregates)
        for violation in report.violations:
            assert total >= violation.excess
