"""Unit tests for log persistence (JSON Lines)."""

import io

import pytest

from repro.errors import SerializationError
from repro.logstore.io import dump_log, load_log, read_records, write_records
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord
from repro.workloads.scenarios import example1_log


class TestStreams:
    def test_write_then_read(self):
        records = [
            LogRecord(frozenset({1, 2}), 800, "LU1"),
            LogRecord(frozenset({2}), 400),
        ]
        buffer = io.StringIO()
        assert write_records(records, buffer) == 2
        buffer.seek(0)
        loaded = list(read_records(buffer))
        assert loaded == records

    def test_blank_lines_skipped(self):
        buffer = io.StringIO('{"set": [1], "count": 5}\n\n\n')
        assert len(list(read_records(buffer))) == 1

    def test_malformed_json_rejected(self):
        buffer = io.StringIO("{broken\n")
        with pytest.raises(SerializationError, match="line 1"):
            list(read_records(buffer))

    def test_missing_field_rejected(self):
        buffer = io.StringIO('{"set": [1]}\n')
        with pytest.raises(SerializationError):
            list(read_records(buffer))

    def test_invalid_count_rejected(self):
        buffer = io.StringIO('{"set": [1], "count": 0}\n')
        with pytest.raises(SerializationError):
            list(read_records(buffer))


class TestFiles:
    def test_dump_and_load_round_trip(self, tmp_path):
        log = example1_log()
        path = tmp_path / "log.jsonl"
        assert dump_log(log, path) == 6
        loaded = load_log(path)
        assert len(loaded) == 6
        assert loaded.counts_by_set() == log.counts_by_set()
        assert loaded[0].issued_id == "LU1"

    def test_empty_log_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        dump_log(ValidationLog(), path)
        assert len(load_log(path)) == 0
