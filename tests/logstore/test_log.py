"""Unit tests for the validation log (Table 2 as a data structure)."""

import pytest

from repro.errors import LogError
from repro.logstore.log import ValidationLog
from repro.logstore.record import LogRecord
from repro.workloads.scenarios import example1_log


class TestAppend:
    def test_record_convenience(self):
        log = ValidationLog()
        log.record({1, 2}, 10)
        assert len(log) == 1
        assert log[0].license_set == frozenset({1, 2})

    def test_non_record_rejected(self):
        log = ValidationLog()
        with pytest.raises(LogError):
            log.append(({1}, 5))  # type: ignore[arg-type]

    def test_extend(self):
        log = ValidationLog()
        log.extend([LogRecord(frozenset({1}), 1), LogRecord(frozenset({2}), 2)])
        assert len(log) == 2

    def test_constructor_takes_records(self):
        log = ValidationLog([LogRecord(frozenset({1}), 3)])
        assert log.total_count == 3


class TestAggregation:
    def test_same_set_accumulates(self):
        log = ValidationLog()
        log.record({1, 2}, 800)
        log.record({1, 2}, 40)
        assert log.set_count({1, 2}) == 840

    def test_unseen_set_is_zero(self):
        assert ValidationLog().set_count({1}) == 0

    def test_total_count(self):
        log = ValidationLog()
        log.record({1}, 5)
        log.record({2}, 7)
        assert log.total_count == 12

    def test_distinct_sets(self):
        log = ValidationLog()
        log.record({1}, 5)
        log.record({1}, 5)
        log.record({2}, 5)
        assert log.distinct_sets == 2

    def test_counts_by_set_is_copy(self):
        log = ValidationLog()
        log.record({1}, 5)
        counts = log.counts_by_set()
        counts[frozenset({9})] = 1
        assert log.set_count({9}) == 0

    def test_counts_by_mask(self):
        log = ValidationLog()
        log.record({1, 2}, 10)
        log.record({3}, 5)
        assert log.counts_by_mask() == {0b011: 10, 0b100: 5}

    def test_max_index(self):
        log = ValidationLog()
        assert log.max_index() == 0
        log.record({2, 7}, 1)
        assert log.max_index() == 7


class TestTable2:
    """The paper's Section 2.1 worked aggregation."""

    def test_table2_counts(self):
        log = example1_log()
        assert log.set_count({1, 2}) == 840
        assert log.set_count({2}) == 400
        assert log.set_count({1, 2, 4}) == 30
        assert log.set_count({3, 5}) == 800
        assert log.set_count({5}) == 20

    def test_table2_shape(self):
        log = example1_log()
        assert len(log) == 6
        assert log.distinct_sets == 5
        assert log.total_count == 2090
