"""Unit tests for log records and the mask encoding."""

import pytest

from repro.errors import LogError
from repro.logstore.record import LogRecord, mask_of, set_of


class TestMaskEncoding:
    def test_mask_of_singleton(self):
        assert mask_of({1}) == 0b1
        assert mask_of({3}) == 0b100

    def test_mask_of_set(self):
        assert mask_of({1, 2, 4}) == 0b1011

    def test_mask_of_empty(self):
        assert mask_of(set()) == 0

    def test_mask_rejects_zero_index(self):
        with pytest.raises(LogError):
            mask_of({0, 1})

    def test_set_of_round_trip(self):
        for mask in (0b1, 0b1011, 0b11111, 0):
            assert mask_of(set_of(mask)) == mask

    def test_set_of_negative_rejected(self):
        with pytest.raises(LogError):
            set_of(-1)


class TestLogRecord:
    def test_construction(self):
        record = LogRecord(frozenset({1, 2}), 800, "LU1")
        assert record.count == 800
        assert record.issued_id == "LU1"

    def test_set_is_coerced_to_frozenset(self):
        record = LogRecord({2, 1}, 5)  # type: ignore[arg-type]
        assert isinstance(record.license_set, frozenset)

    def test_empty_set_rejected(self):
        with pytest.raises(LogError):
            LogRecord(frozenset(), 5)

    def test_zero_count_rejected(self):
        with pytest.raises(LogError):
            LogRecord(frozenset({1}), 0)

    def test_negative_count_rejected(self):
        with pytest.raises(LogError):
            LogRecord(frozenset({1}), -5)

    def test_non_int_count_rejected(self):
        with pytest.raises(LogError):
            LogRecord(frozenset({1}), 1.5)  # type: ignore[arg-type]

    def test_bool_count_rejected(self):
        with pytest.raises(LogError):
            LogRecord(frozenset({1}), True)

    def test_zero_index_rejected(self):
        with pytest.raises(LogError):
            LogRecord(frozenset({0, 1}), 5)

    def test_non_int_index_rejected(self):
        with pytest.raises(LogError):
            LogRecord(frozenset({"1"}), 5)  # type: ignore[arg-type]

    def test_mask_property(self):
        assert LogRecord(frozenset({1, 2, 4}), 1).mask == 0b1011

    def test_sorted_indexes(self):
        assert LogRecord(frozenset({4, 1, 2}), 1).sorted_indexes == (1, 2, 4)

    def test_str(self):
        assert "LD1" in str(LogRecord(frozenset({1}), 5))
