"""Unit + property tests for log compaction."""

from hypothesis import given, settings, strategies as st

from repro.logstore.compaction import compact, compaction_ratio
from repro.logstore.log import ValidationLog
from repro.workloads.scenarios import example1_log


class TestCompact:
    def test_table2_compacts_to_distinct_sets(self):
        log = example1_log()
        compacted = compact(log)
        assert len(compacted) == 5  # 6 records, 5 distinct sets
        assert compacted.counts_by_set() == log.counts_by_set()
        assert compacted.total_count == log.total_count

    def test_empty_log(self):
        compacted = compact(ValidationLog())
        assert len(compacted) == 0
        assert compaction_ratio(ValidationLog()) == 1.0

    def test_deterministic_order(self):
        log = ValidationLog()
        log.record({3}, 1)
        log.record({1, 2}, 2)
        log.record({1}, 3)
        compacted = compact(log)
        assert [sorted(r.license_set) for r in compacted] == [[1], [1, 2], [3]]

    def test_ratio(self):
        log = ValidationLog()
        for _ in range(10):
            log.record({1}, 1)
        assert compaction_ratio(log) == 10.0

    def test_issued_ids_dropped(self):
        log = ValidationLog()
        log.record({1}, 5, "LU1")
        assert compact(log)[0].issued_id is None


class TestValidationInvariance:
    def test_all_engines_unchanged_by_compaction(self):
        from repro.validation.naive import ScanValidator
        from repro.validation.tree import ValidationTree
        from repro.validation.tree_validator import TreeValidator

        aggregates = [2000, 1000, 3000, 4000, 2000]
        log = example1_log()
        compacted = compact(log)
        original = TreeValidator(aggregates).validate(ValidationTree.from_log(log))
        after = TreeValidator(aggregates).validate(
            ValidationTree.from_log(compacted)
        )
        assert original.violations == after.violations
        assert (
            ScanValidator(aggregates).validate_log(log).violations
            == ScanValidator(aggregates).validate_log(compacted).violations
        )


@st.composite
def random_logs(draw):
    log = ValidationLog()
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        members = draw(
            st.sets(st.integers(min_value=1, max_value=6), min_size=1, max_size=4)
        )
        log.record(members, draw(st.integers(min_value=1, max_value=50)))
    return log


@settings(max_examples=60, deadline=None)
@given(random_logs())
def test_compaction_preserves_aggregates(log):
    compacted = compact(log)
    assert compacted.counts_by_set() == log.counts_by_set()
    assert compacted.counts_by_mask() == log.counts_by_mask()
    assert len(compacted) == log.distinct_sets
    # Compacting twice is a fixed point.
    assert compact(compacted).counts_by_set() == compacted.counts_by_set()
    assert len(compact(compacted)) == len(compacted)


#: Example 1's overlap groups (licenses 1-based): {1, 2, 4} and {3, 5}.
_GROUPS = [[1, 2, 4], [3, 5]]

_records = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),  # group choice
        st.integers(min_value=0, max_value=6),  # subset selector (non-empty)
        st.integers(min_value=1, max_value=400),  # count
    ),
    max_size=30,
)


def _build_log(records):
    log = ValidationLog()
    for group_choice, subset_selector, count in records:
        members = _GROUPS[group_choice]
        subset = [
            member
            for bit, member in enumerate(members)
            if (subset_selector + 1) & (1 << bit)
        ]
        if subset:
            log.record(set(subset), count)
    return log


class TestCompactionRoundtrip:
    """Compacting a journal must never change any downstream verdict:
    the grouped validator's report, every headroom query, and the
    serving layer's decisions after a replay all have to be identical
    for the raw and the compacted log."""

    @settings(max_examples=60, deadline=None)
    @given(records=_records)
    def test_grouped_verdicts_identical(self, records):
        from repro.core.validator import GroupedValidator
        from repro.workloads.scenarios import example1

        pool = example1().pool
        validator = GroupedValidator.from_pool(pool)
        log = _build_log(records)
        compacted = compact(log)
        original = validator.validate(log)
        replayed = validator.validate(compacted)
        assert original.is_valid == replayed.is_valid
        assert set(original.violations) == set(replayed.violations)

    @settings(max_examples=60, deadline=None)
    @given(records=_records)
    def test_headroom_queries_identical(self, records):
        from repro.core.validator import GroupedValidator
        from repro.workloads.scenarios import example1

        pool = example1().pool
        validator = GroupedValidator.from_pool(pool)
        log = _build_log(records)
        compacted = compact(log)
        for members in ([1], [2], [1, 2], [1, 2, 4], [3], [3, 5], [5]):
            assert validator.headroom(log, members) == validator.headroom(
                compacted, members
            ), members

    @settings(max_examples=25, deadline=None)
    @given(records=_records)
    def test_service_replay_verdicts_identical(self, records):
        """Restarting the serving layer from a compacted journal must
        leave every subsequent online verdict unchanged."""
        from repro.service import ValidationService
        from repro.workloads.scenarios import example1

        scenario = example1()
        log = _build_log(records)
        compacted = compact(log)

        def serve(initial):
            with ValidationService(scenario.pool, initial_log=initial) as svc:
                return [
                    (o.accepted, o.rejection_reason, o.rejection_detail)
                    for o in svc.process(scenario.usages)
                ]

        assert serve(log) == serve(compacted)
