"""Unit + property tests for log compaction."""

from hypothesis import given, settings, strategies as st

from repro.logstore.compaction import compact, compaction_ratio
from repro.logstore.log import ValidationLog
from repro.workloads.scenarios import example1_log


class TestCompact:
    def test_table2_compacts_to_distinct_sets(self):
        log = example1_log()
        compacted = compact(log)
        assert len(compacted) == 5  # 6 records, 5 distinct sets
        assert compacted.counts_by_set() == log.counts_by_set()
        assert compacted.total_count == log.total_count

    def test_empty_log(self):
        compacted = compact(ValidationLog())
        assert len(compacted) == 0
        assert compaction_ratio(ValidationLog()) == 1.0

    def test_deterministic_order(self):
        log = ValidationLog()
        log.record({3}, 1)
        log.record({1, 2}, 2)
        log.record({1}, 3)
        compacted = compact(log)
        assert [sorted(r.license_set) for r in compacted] == [[1], [1, 2], [3]]

    def test_ratio(self):
        log = ValidationLog()
        for _ in range(10):
            log.record({1}, 1)
        assert compaction_ratio(log) == 10.0

    def test_issued_ids_dropped(self):
        log = ValidationLog()
        log.record({1}, 5, "LU1")
        assert compact(log)[0].issued_id is None


class TestValidationInvariance:
    def test_all_engines_unchanged_by_compaction(self):
        from repro.validation.naive import ScanValidator
        from repro.validation.tree import ValidationTree
        from repro.validation.tree_validator import TreeValidator

        aggregates = [2000, 1000, 3000, 4000, 2000]
        log = example1_log()
        compacted = compact(log)
        original = TreeValidator(aggregates).validate(ValidationTree.from_log(log))
        after = TreeValidator(aggregates).validate(
            ValidationTree.from_log(compacted)
        )
        assert original.violations == after.violations
        assert (
            ScanValidator(aggregates).validate_log(log).violations
            == ScanValidator(aggregates).validate_log(compacted).violations
        )


@st.composite
def random_logs(draw):
    log = ValidationLog()
    for _ in range(draw(st.integers(min_value=0, max_value=30))):
        members = draw(
            st.sets(st.integers(min_value=1, max_value=6), min_size=1, max_size=4)
        )
        log.record(members, draw(st.integers(min_value=1, max_value=50)))
    return log


@settings(max_examples=60, deadline=None)
@given(random_logs())
def test_compaction_preserves_aggregates(log):
    compacted = compact(log)
    assert compacted.counts_by_set() == log.counts_by_set()
    assert compacted.counts_by_mask() == log.counts_by_mask()
    assert len(compacted) == log.distinct_sets
    # Compacting twice is a fixed point.
    assert compact(compacted).counts_by_set() == compacted.counts_by_set()
    assert len(compact(compacted)) == len(compacted)
