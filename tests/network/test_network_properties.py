"""Property tests for the distribution network.

The soundness claim: because every license generation is headroom-gated,
*no sequence of operations* can drive any node's log into violation.
Hypothesis generates random topologies and traffic to attack that claim.
"""

from hypothesis import given, settings, strategies as st

from repro.licenses.license import LicenseFactory
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.network.network import DistributionNetwork

_SCHEMA = ConstraintSchema(
    [DimensionSpec.numeric("window"), DimensionSpec.numeric("zone")]
)


@st.composite
def network_scripts(draw):
    """A random two-level network plus a random operation script."""
    factory = LicenseFactory(_SCHEMA, content_id="K", permission="play")
    n_top = draw(st.integers(min_value=1, max_value=3))
    n_sub = draw(st.integers(min_value=0, max_value=3))
    operations = []
    for serial in range(draw(st.integers(min_value=0, max_value=25))):
        low = draw(st.integers(min_value=0, max_value=80))
        size = draw(st.integers(min_value=0, max_value=20))
        kind = draw(st.sampled_from(["sell", "redistribute"]))
        operations.append(
            (
                kind,
                serial,
                (low, low + size),
                draw(st.integers(min_value=1, max_value=120)),
            )
        )
    return factory, n_top, n_sub, operations


@settings(max_examples=40, deadline=None)
@given(network_scripts())
def test_audits_never_fail_after_any_script(script):
    factory, n_top, n_sub, operations = script
    network = DistributionNetwork()
    tops = [f"top{i}" for i in range(n_top)]
    subs = []
    for name in tops:
        network.add_distributor(name)
        network.grant(
            name,
            factory.redistribution(
                f"grant-{name}", aggregate=500, window=(0, 100), zone=(0, 100)
            ),
        )
    for i in range(n_sub):
        parent = tops[i % n_top]
        name = f"sub{i}"
        network.add_distributor(name, parent=parent)
        subs.append((name, parent))

    accepted = rejected = 0
    for kind, serial, window, counts in operations:
        seller = tops[serial % n_top]
        if kind == "sell" or not subs:
            usage = factory.usage(
                f"u{serial}", count=counts, window=window, zone=window
            )
            outcome = network.sell(seller, usage)
        else:
            sub_name, parent = subs[serial % len(subs)]
            lic = factory.redistribution(
                f"r{serial}", aggregate=counts, window=window, zone=window
            )
            outcome = network.redistribute(parent, sub_name, lic)
        accepted += outcome.accepted
        rejected += not outcome.accepted

    # THE invariant: every node's offline audit passes, always.
    for name, report in network.audit_all().items():
        assert report is None or report.is_valid, f"node {name} violated"

    # Accounting sanity: accepted counts never exceed granted capacity.
    for name in tops:
        node = network.node(name)
        assert node.log.total_count <= sum(node.pool.aggregate_array())


@settings(max_examples=30, deadline=None)
@given(network_scripts())
def test_rejections_are_justified(script):
    """An 'aggregate' rejection means the count genuinely exceeded the
    current headroom for its match set -- never a spurious refusal."""
    factory, n_top, _n_sub, operations = script
    network = DistributionNetwork()
    network.add_distributor("d")
    network.grant(
        "d",
        factory.redistribution(
            "grant", aggregate=300, window=(0, 100), zone=(0, 100)
        ),
    )
    node = network.node("d")
    for _kind, serial, window, counts in operations:
        usage = factory.usage(f"u{serial}", count=counts, window=window, zone=window)
        outcome = network.sell("d", usage)
        if not outcome.accepted and outcome.rejection_reason == "equation":
            slack = node.validator().headroom(node.log, outcome.license_set)
            assert slack < counts
