"""Node health probes and fleet-wide probe sweeps."""

import pytest

from repro.licenses.license import LicenseFactory
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.network.network import DistributionNetwork
from repro.network.node import DistributorNode
from repro.obs.monitor import Monitor


@pytest.fixture
def factory():
    schema = ConstraintSchema(
        [DimensionSpec.numeric("window"), DimensionSpec.numeric("zone")]
    )
    return LicenseFactory(schema, content_id="K", permission="play")


@pytest.fixture
def node(factory):
    node = DistributorNode("emea")
    node.receive(
        factory.redistribution(
            "root", aggregate=1000, window=(0, 100), zone=(0, 100)
        )
    )
    return node


def stream_for(factory, n=8):
    return [
        factory.usage(f"u{i}", count=10, window=(10, 20), zone=(10, 20))
        for i in range(n)
    ]


class TestNodeProbe:
    def test_unmonitored_node_answers_unknown(self, node):
        probe = node.health_probe()
        assert probe["node"] == "emea"
        assert probe["status"] == "unknown"
        assert probe["monitored"] is False
        assert probe["pool_size"] == 1
        assert probe["log_size"] == 0
        assert "indicators" not in probe

    def test_unmonitored_serve_keeps_probe_unknown(self, node, factory):
        node.serve_stream(stream_for(factory))
        assert node.health_probe()["status"] == "unknown"

    def test_monitored_serve_populates_probe(self, node, factory):
        monitor = Monitor()
        outcomes, _service = node.serve_stream(
            stream_for(factory), monitor=monitor
        )
        assert all(o.accepted for o in outcomes)
        probe = node.health_probe()
        assert probe["monitored"] is True
        assert probe["status"] in ("ok", "warn", "critical")
        assert {i["name"] for i in probe["indicators"]} >= {
            "queue_saturation", "efficiency_ratio",
        }
        assert probe["slos"][0]["name"] == "availability"
        assert "queue-saturation" in probe["alerts"]
        assert probe["log_size"] == len(outcomes)

    def test_probe_reflects_latest_monitored_serve(self, node, factory):
        first = Monitor()
        node.serve_stream(stream_for(factory, 4), monitor=first)
        second = Monitor()
        node.serve_stream(
            [
                factory.usage(
                    "late", count=10, window=(30, 40), zone=(30, 40)
                )
            ],
            monitor=second,
        )
        assert node.health_probe()["log_size"] == 5
        assert second.ticks >= 1


class TestNetworkSweep:
    def test_probe_all_covers_every_node(self, factory):
        network = DistributionNetwork()
        network.add_distributor("emea")
        network.add_distributor("emea-south", parent="emea")
        network.grant(
            "emea",
            factory.redistribution(
                "root", aggregate=1000, window=(0, 100), zone=(0, 100)
            ),
        )
        network.node("emea").serve_stream(
            stream_for(factory), monitor=Monitor()
        )
        probes = network.probe_all()
        assert set(probes) == {"emea", "emea-south"}
        assert probes["emea"]["monitored"] is True
        assert probes["emea-south"]["status"] == "unknown"
