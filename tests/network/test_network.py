"""Unit tests for the multi-level distribution network."""

import pytest

from repro.errors import LicenseError, ValidationError
from repro.licenses.license import LicenseFactory
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.network.network import DistributionNetwork


@pytest.fixture
def factory():
    schema = ConstraintSchema(
        [DimensionSpec.numeric("window"), DimensionSpec.numeric("zone")]
    )
    return LicenseFactory(schema, content_id="K", permission="play")


@pytest.fixture
def network(factory):
    network = DistributionNetwork()
    network.add_distributor("emea")
    network.add_distributor("emea-south", parent="emea")
    network.grant(
        "emea",
        factory.redistribution("root", aggregate=1000, window=(0, 100), zone=(0, 100)),
    )
    return network


class TestTopology:
    def test_membership(self, network):
        assert "emea" in network
        assert "apac" not in network
        assert len(network) == 2

    def test_parent_of(self, network):
        assert network.parent_of("emea") == "owner"
        assert network.parent_of("emea-south") == "emea"

    def test_reserved_owner_name(self):
        with pytest.raises(LicenseError):
            DistributionNetwork().add_distributor("owner")

    def test_duplicate_name_rejected(self, network):
        with pytest.raises(LicenseError):
            network.add_distributor("emea")

    def test_unknown_parent_rejected(self):
        with pytest.raises(LicenseError):
            DistributionNetwork().add_distributor("x", parent="ghost")

    def test_unknown_node_lookup(self, network):
        with pytest.raises(LicenseError):
            network.node("ghost")


class TestGrants:
    def test_grant_records_delivery(self, network):
        assert ("owner", "emea", "root") in network.deliveries

    def test_grant_to_non_top_level_rejected(self, network, factory):
        lic = factory.redistribution("x", aggregate=10, window=(0, 1), zone=(0, 1))
        with pytest.raises(ValidationError):
            network.grant("emea-south", lic)


class TestRedistribution:
    def test_valid_flow_down(self, network, factory):
        sub = factory.redistribution(
            "sub", aggregate=400, window=(10, 60), zone=(10, 60)
        )
        outcome = network.redistribute("emea", "emea-south", sub)
        assert outcome.accepted
        assert len(network.node("emea-south").pool) == 1
        assert ("emea", "emea-south", "sub") in network.deliveries

    def test_rejected_license_not_delivered(self, network, factory):
        escaping = factory.redistribution(
            "bad", aggregate=400, window=(50, 150), zone=(0, 50)
        )
        outcome = network.redistribute("emea", "emea-south", escaping)
        assert not outcome.accepted
        assert len(network.node("emea-south").pool) == 0

    def test_redistribute_to_non_child_rejected(self, network, factory):
        network.add_distributor("apac")
        lic = factory.redistribution("x", aggregate=10, window=(0, 1), zone=(0, 1))
        with pytest.raises(ValidationError):
            network.redistribute("emea", "apac", lic)

    def test_capacity_propagates_down_the_tree(self, network, factory):
        """The chain owner -> emea -> emea-south enforces nested budgets."""
        sub = factory.redistribution(
            "sub", aggregate=400, window=(10, 60), zone=(10, 60)
        )
        assert network.redistribute("emea", "emea-south", sub).accepted
        # emea-south can sell at most 400 counts within (10..60)^2.
        big = factory.usage("u1", count=401, window=(20, 30), zone=(20, 30))
        assert not network.sell("emea-south", big).accepted
        ok = factory.usage("u2", count=400, window=(20, 30), zone=(20, 30))
        assert network.sell("emea-south", ok).accepted
        # And emea has 600 left.
        remaining = factory.usage("u3", count=601, window=(0, 9), zone=(0, 9))
        assert not network.sell("emea", remaining).accepted


class TestAudit:
    def test_audit_all(self, network, factory):
        sub = factory.redistribution(
            "sub", aggregate=300, window=(10, 60), zone=(10, 60)
        )
        network.redistribute("emea", "emea-south", sub)
        network.sell(
            "emea-south",
            factory.usage("u1", count=50, window=(20, 30), zone=(20, 30)),
        )
        network.add_distributor("apac")  # empty pool
        results = network.audit_all()
        assert results["emea"].is_valid
        assert results["emea-south"].is_valid
        assert results["apac"] is None

    def test_validated_network_has_no_violations_ever(self, network, factory):
        """Because every issuance is headroom-gated, offline audits can
        never find violations -- the end-to-end soundness property."""
        import random

        rng = random.Random(7)
        for serial in range(60):
            low = rng.randint(0, 80)
            size = rng.randint(1, 15)
            usage = factory.usage(
                f"s{serial}",
                count=rng.randint(1, 60),
                window=(low, low + size),
                zone=(low, low + size),
            )
            network.sell("emea", usage)
        report = network.node("emea").audit()
        assert report.is_valid
