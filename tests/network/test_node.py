"""Unit tests for distributor nodes."""

import pytest

from repro.errors import LicenseError, ValidationError
from repro.licenses.license import LicenseFactory
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.network.node import DistributorNode


@pytest.fixture
def factory():
    schema = ConstraintSchema(
        [DimensionSpec.numeric("window"), DimensionSpec.numeric("zone")]
    )
    return LicenseFactory(schema, content_id="K", permission="play")


@pytest.fixture
def node(factory):
    node = DistributorNode("emea")
    node.receive(
        factory.redistribution("root", aggregate=1000, window=(0, 100), zone=(0, 100))
    )
    return node


class TestConstruction:
    def test_empty_name_rejected(self):
        with pytest.raises(LicenseError):
            DistributorNode("")

    def test_validator_requires_pool(self):
        with pytest.raises(ValidationError):
            DistributorNode("x").validator()


class TestUsageIssuance:
    def test_accept_within_constraints(self, node, factory):
        usage = factory.usage("u1", count=100, window=(10, 20), zone=(10, 20))
        outcome = node.issue_usage(usage)
        assert outcome.accepted
        assert outcome.license_set == (1,)
        assert node.log.total_count == 100

    def test_instance_reject_outside_box(self, node, factory):
        usage = factory.usage("u1", count=10, window=(90, 110), zone=(0, 10))
        outcome = node.issue_usage(usage)
        assert not outcome.accepted
        assert outcome.rejection_reason == "instance"
        assert len(node.log) == 0

    def test_aggregate_reject_over_capacity(self, node, factory):
        first = factory.usage("u1", count=900, window=(0, 50), zone=(0, 50))
        second = factory.usage("u2", count=200, window=(0, 50), zone=(0, 50))
        assert node.issue_usage(first).accepted
        outcome = node.issue_usage(second)
        assert not outcome.accepted
        assert outcome.rejection_reason == "equation"

    def test_exact_capacity_boundary(self, node, factory):
        usage = factory.usage("u1", count=1000, window=(0, 50), zone=(0, 50))
        assert node.issue_usage(usage).accepted
        refill = factory.usage("u2", count=1, window=(0, 50), zone=(0, 50))
        assert not node.issue_usage(refill).accepted


class TestRedistributionIssuance:
    def test_sub_license_consumes_its_aggregate(self, node, factory):
        sub = factory.redistribution(
            "sub1", aggregate=600, window=(0, 50), zone=(0, 50)
        )
        outcome = node.issue_redistribution(sub)
        assert outcome.accepted
        assert outcome.counts == 600
        # Only 400 counts left for anything matching {1}.
        usage = factory.usage("u1", count=500, window=(0, 10), zone=(0, 10))
        assert not node.issue_usage(usage).accepted

    def test_sub_license_instance_constraints_enforced(self, node, factory):
        escaping = factory.redistribution(
            "sub1", aggregate=10, window=(50, 150), zone=(0, 50)
        )
        outcome = node.issue_redistribution(escaping)
        assert not outcome.accepted
        assert outcome.rejection_reason == "instance"


class TestMultiLicenseNode:
    def test_flexible_charging_across_received_licenses(self, factory):
        node = DistributorNode("apac")
        node.receive(
            factory.redistribution("a", aggregate=100, window=(0, 60), zone=(0, 60))
        )
        node.receive(
            factory.redistribution("b", aggregate=50, window=(40, 100), zone=(40, 100))
        )
        # Matches both licenses (within the overlap region).
        both = factory.usage("u1", count=120, window=(45, 55), zone=(45, 55))
        assert node.issue_usage(both).accepted  # 120 <= 150 combined
        only_b = factory.usage("u2", count=30, window=(70, 90), zone=(70, 90))
        # 120 can route 100->a + 20->b, leaving 30 in b: accepted.
        assert node.issue_usage(only_b).accepted
        # Now b is full: 120 routed as 100a+20b plus 30b = 50b.
        more_b = factory.usage("u3", count=1, window=(70, 90), zone=(70, 90))
        assert not node.issue_usage(more_b).accepted

    def test_receive_invalidates_validator_cache(self, factory):
        node = DistributorNode("apac")
        node.receive(
            factory.redistribution("a", aggregate=100, window=(0, 60), zone=(0, 60))
        )
        assert node.validator().n == 1
        node.receive(
            factory.redistribution("b", aggregate=50, window=(40, 100), zone=(40, 100))
        )
        assert node.validator().n == 2


class TestAudit:
    def test_audit_clean_node(self, node, factory):
        node.issue_usage(factory.usage("u1", count=10, window=(0, 5), zone=(0, 5)))
        report = node.audit()
        assert report.is_valid


class TestServeStream:
    def test_serve_stream_matches_one_at_a_time(self, factory):
        def fresh_node():
            node = DistributorNode("emea")
            node.receive(
                factory.redistribution(
                    "root", aggregate=1000, window=(0, 100), zone=(0, 100)
                )
            )
            return node

        stream = [
            factory.usage(f"u{i}", count=90, window=(10, 20), zone=(10, 20))
            for i in range(14)
        ] + [
            factory.usage("far", count=1, window=(200, 210), zone=(0, 10))
        ]
        reference = fresh_node()
        expected = [
            (o.accepted, o.rejection_reason)
            for o in map(reference.issue_usage, stream)
        ]
        served_node = fresh_node()
        outcomes, service = served_node.serve_stream(stream)
        assert [(o.accepted, o.rejection_reason) for o in outcomes] == expected
        # Accepted issuances were folded back into the node's log.
        assert served_node.log.total_count == reference.log.total_count
        # The (closed) service still reports traffic accounting.
        assert service.metrics.counter("requests_total").total() == len(stream)

    def test_serve_stream_sees_existing_log(self, node, factory):
        node.issue_usage(
            factory.usage("warm", count=950, window=(0, 50), zone=(0, 50))
        )
        outcomes, _service = node.serve_stream(
            [
                factory.usage("s1", count=40, window=(0, 50), zone=(0, 50)),
                factory.usage("s2", count=40, window=(0, 50), zone=(0, 50)),
            ]
        )
        # 950 already issued: 40 fits, the second 40 must be rejected.
        assert [o.accepted for o in outcomes] == [True, False]
        assert outcomes[1].rejection_reason == "equation"
        assert node.log.total_count == 990
