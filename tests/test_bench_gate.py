"""Perf-regression gate: tolerance policy, verdicts, and CLI exit codes."""

import importlib.util
import json
import os
import sys

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "scripts",
    "bench_gate.py",
)
_spec = importlib.util.spec_from_file_location("bench_gate", _GATE_PATH)
bench_gate = importlib.util.module_from_spec(_spec)
sys.modules["bench_gate"] = bench_gate
_spec.loader.exec_module(bench_gate)

FAIL = bench_gate.FAIL
INFO = bench_gate.INFO
PASS = bench_gate.PASS


BASELINE = {
    "throughput": {
        "runs": {"batch16": {"accepted": 120, "equations": 360}},
        "elapsed": 1.5,
        "rps": 800.0,
    },
    "overhead": {"ratio": 1.02, "n": 1000},
}

TOLERANCES = {
    "default": {"mode": "informational"},
    "rules": [
        {"pattern": "*.runs.*.accepted", "mode": "exact"},
        {"pattern": "*.runs.*.equations", "mode": "exact"},
        {"pattern": "overhead.n", "mode": "exact"},
        {"pattern": "overhead.ratio", "mode": "max", "limit": 1.5},
        {"pattern": "*.elapsed", "mode": "informational"},
    ],
}


def verdicts(findings):
    return {f.path: f.verdict for f in findings}


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_identical_runs_pass(self):
        findings = bench_gate.compare(BASELINE, BASELINE, TOLERANCES)
        assert all(f.verdict != FAIL for f in findings)
        assert verdicts(findings)["throughput.runs.batch16.accepted"] == PASS

    def test_exact_mismatch_fails(self):
        current = json.loads(json.dumps(BASELINE))
        current["throughput"]["runs"]["batch16"]["equations"] = 372
        findings = bench_gate.compare(BASELINE, current, TOLERANCES)
        assert verdicts(findings)["throughput.runs.batch16.equations"] == FAIL

    def test_max_mode_gates_on_absolute_limit(self):
        current = json.loads(json.dumps(BASELINE))
        current["overhead"]["ratio"] = 1.49
        findings = bench_gate.compare(BASELINE, current, TOLERANCES)
        assert verdicts(findings)["overhead.ratio"] == PASS
        current["overhead"]["ratio"] = 1.51
        findings = bench_gate.compare(BASELINE, current, TOLERANCES)
        assert verdicts(findings)["overhead.ratio"] == FAIL

    def test_max_mode_ratio_bound_combines_with_limit(self):
        tolerances = {
            "default": {"mode": "informational"},
            "rules": [
                {
                    "pattern": "overhead.ratio",
                    "mode": "max",
                    "limit": 2.0,
                    "limit_ratio": 1.1,
                }
            ],
        }
        current = json.loads(json.dumps(BASELINE))
        current["overhead"]["ratio"] = 1.20  # > 1.02 * 1.1, < 2.0
        findings = bench_gate.compare(BASELINE, current, tolerances)
        assert verdicts(findings)["overhead.ratio"] == FAIL

    def test_min_mode_gates_low_values(self):
        tolerances = {
            "default": {"mode": "informational"},
            "rules": [
                {"pattern": "throughput.rps", "mode": "min", "limit_ratio": 0.5}
            ],
        }
        current = json.loads(json.dumps(BASELINE))
        current["throughput"]["rps"] = 300.0  # < 800 * 0.5
        findings = bench_gate.compare(BASELINE, current, tolerances)
        assert verdicts(findings)["throughput.rps"] == FAIL

    def test_informational_never_fails(self):
        current = json.loads(json.dumps(BASELINE))
        current["throughput"]["elapsed"] = 99.0
        current["throughput"]["rps"] = 1.0
        findings = bench_gate.compare(BASELINE, current, TOLERANCES)
        assert verdicts(findings)["throughput.elapsed"] == INFO
        assert verdicts(findings)["throughput.rps"] == INFO
        assert not any(f.verdict == FAIL for f in findings)

    def test_missing_metric_fails(self):
        current = json.loads(json.dumps(BASELINE))
        del current["overhead"]
        findings = bench_gate.compare(BASELINE, current, TOLERANCES)
        assert verdicts(findings)["overhead.n"] == FAIL
        assert verdicts(findings)["overhead.ratio"] == FAIL

    def test_new_metric_is_informational(self):
        current = json.loads(json.dumps(BASELINE))
        current["overhead"]["extra"] = 7
        findings = bench_gate.compare(BASELINE, current, TOLERANCES)
        finding = {f.path: f for f in findings}["overhead.extra"]
        assert finding.verdict == INFO
        assert finding.mode == "new"

    def test_first_matching_rule_wins(self):
        tolerances = {
            "default": {"mode": "informational"},
            "rules": [
                {"pattern": "overhead.*", "mode": "exact"},
                {"pattern": "overhead.ratio", "mode": "max", "limit": 99.0},
            ],
        }
        current = json.loads(json.dumps(BASELINE))
        current["overhead"]["ratio"] = 1.03
        findings = bench_gate.compare(BASELINE, current, tolerances)
        assert verdicts(findings)["overhead.ratio"] == FAIL  # exact won

    def test_non_numeric_leaves(self):
        base = {"meta": {"host": "a", "count": 3}}
        tolerances = {
            "default": {"mode": "informational"},
            "rules": [{"pattern": "meta.*", "mode": "exact"}],
        }
        findings = bench_gate.compare(
            base, {"meta": {"host": "b", "count": 3}}, tolerances
        )
        assert verdicts(findings)["meta.host"] == FAIL
        assert verdicts(findings)["meta.count"] == PASS

    def test_flatten_handles_lists(self):
        flat = dict(bench_gate.flatten({"a": [1, {"b": 2}], "c": True}))
        assert flat == {"a.0": 1, "a.1.b": 2, "c": True}


class TestMain:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", BASELINE)
        current = write(tmp_path, "cur.json", BASELINE)
        tolerances = write(tmp_path, "tol.json", TOLERANCES)
        report = tmp_path / "report.json"
        code = bench_gate.main(
            [
                "--baseline", baseline,
                "--current", current,
                "--tolerances", tolerances,
                "--report-out", str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 fail" in out
        payload = json.loads(report.read_text())
        assert payload["failures"] == 0
        assert payload["findings"]

    def test_regression_exits_one(self, tmp_path, capsys):
        current_payload = json.loads(json.dumps(BASELINE))
        current_payload["throughput"]["runs"]["batch16"]["accepted"] = 1
        baseline = write(tmp_path, "base.json", BASELINE)
        current = write(tmp_path, "cur.json", current_payload)
        tolerances = write(tmp_path, "tol.json", TOLERANCES)
        code = bench_gate.main(
            ["--baseline", baseline, "--current", current,
             "--tolerances", tolerances]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "throughput.runs.batch16.accepted" in out

    def test_unreadable_input_exits_two(self, tmp_path, capsys):
        baseline = write(tmp_path, "base.json", BASELINE)
        tolerances = write(tmp_path, "tol.json", TOLERANCES)
        code = bench_gate.main(
            ["--baseline", baseline,
             "--current", str(tmp_path / "missing.json"),
             "--tolerances", tolerances]
        )
        assert code == 2
        assert "bench_gate:" in capsys.readouterr().err

    def test_malformed_json_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        baseline = write(tmp_path, "base.json", BASELINE)
        tolerances = write(tmp_path, "tol.json", TOLERANCES)
        code = bench_gate.main(
            ["--baseline", baseline, "--current", str(bad),
             "--tolerances", tolerances]
        )
        assert code == 2
        assert "bench_gate:" in capsys.readouterr().err


class TestAttribution:
    """The --runs-dir attribution section: annotates failures, never
    changes exit codes."""

    def seed_registry(self, tmp_path, *, slow_revalidate=False):
        from repro.obs.runs import RunRecord, RunRegistry

        registry = RunRegistry(str(tmp_path / "runs"))
        phases = {"queue_us": 10.0, "match_us": 50.0,
                  "admission_us": 5.0, "revalidate_us": 120.0}
        registry.append(RunRecord(
            run_id=registry.next_run_id(), kind="loadgen",
            stats={"rps": 1000.0, "p99": 0.003}, phases_us=dict(phases),
        ))
        if slow_revalidate:
            phases["revalidate_us"] = 2300.0
        registry.append(RunRecord(
            run_id=registry.next_run_id(), kind="loadgen",
            stats={"rps": 700.0 if slow_revalidate else 1000.0,
                   "p99": 0.012 if slow_revalidate else 0.003},
            phases_us=phases,
        ))
        return str(tmp_path / "runs")

    def test_failure_with_runs_dir_prints_attribution(self, tmp_path, capsys):
        current_payload = json.loads(json.dumps(BASELINE))
        current_payload["throughput"]["runs"]["batch16"]["accepted"] = 1
        runs_dir = self.seed_registry(tmp_path, slow_revalidate=True)
        code = bench_gate.main(
            ["--baseline", write(tmp_path, "base.json", BASELINE),
             "--current", write(tmp_path, "cur.json", current_payload),
             "--tolerances", write(tmp_path, "tol.json", TOLERANCES),
             "--runs-dir", runs_dir]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "attribution: run-000002 vs baseline run-000001" in out
        assert "revalidate is the top regressing phase" in out

    def test_clean_run_skips_attribution(self, tmp_path, capsys):
        runs_dir = self.seed_registry(tmp_path)
        code = bench_gate.main(
            ["--baseline", write(tmp_path, "base.json", BASELINE),
             "--current", write(tmp_path, "cur.json", BASELINE),
             "--tolerances", write(tmp_path, "tol.json", TOLERANCES),
             "--runs-dir", runs_dir]
        )
        assert code == 0
        assert "attribution" not in capsys.readouterr().out

    def test_missing_registry_degrades_without_changing_exit(
        self, tmp_path, capsys
    ):
        current_payload = json.loads(json.dumps(BASELINE))
        current_payload["overhead"]["n"] = 1
        code = bench_gate.main(
            ["--baseline", write(tmp_path, "base.json", BASELINE),
             "--current", write(tmp_path, "cur.json", current_payload),
             "--tolerances", write(tmp_path, "tol.json", TOLERANCES),
             "--runs-dir", str(tmp_path / "no-registry")]
        )
        assert code == 1
        assert "attribution unavailable" in capsys.readouterr().out

    def test_single_run_registry_names_missing_baseline(self, tmp_path):
        from repro.obs.runs import RunRecord, RunRegistry

        registry = RunRegistry(str(tmp_path))
        registry.append(RunRecord(
            run_id=registry.next_run_id(), kind="bench",
            stats={"rps": 100.0},
        ))
        section = bench_gate.attribution_section(str(tmp_path))
        assert "only one run recorded" in section


class TestCommittedBaseline:
    """The committed tolerance policy must parse and gate itself cleanly."""

    REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    def test_committed_tolerances_parse(self):
        path = os.path.join(
            self.REPO, "benchmarks", "baselines", "tolerances.json"
        )
        tolerances = bench_gate.load_json(path)
        assert tolerances["default"]["mode"] == "informational"
        assert tolerances["rules"]

    def test_committed_baseline_gates_itself(self):
        baselines = os.path.join(self.REPO, "benchmarks", "baselines")
        baseline = bench_gate.load_json(
            os.path.join(baselines, "BENCH_service.smoke.json")
        )
        tolerances = bench_gate.load_json(
            os.path.join(baselines, "tolerances.json")
        )
        findings = bench_gate.compare(baseline, baseline, tolerances)
        assert findings
        assert not any(f.verdict == FAIL for f in findings)

    def test_committed_kernel_baseline_gates_itself(self):
        baselines = os.path.join(self.REPO, "benchmarks", "baselines")
        baseline = bench_gate.load_json(
            os.path.join(baselines, "BENCH_kernel.smoke.json")
        )
        tolerances = bench_gate.load_json(
            os.path.join(baselines, "tolerances.json")
        )
        findings = bench_gate.compare(baseline, baseline, tolerances)
        assert not any(f.verdict == FAIL for f in findings)

    def test_kernel_speedup_floor_is_gated(self):
        """A dense kernel that degrades to ~1x admission latency must
        trip the committed min-mode floor, not pass informationally."""
        baselines = os.path.join(self.REPO, "benchmarks", "baselines")
        baseline = bench_gate.load_json(
            os.path.join(baselines, "BENCH_kernel.smoke.json")
        )
        tolerances = bench_gate.load_json(
            os.path.join(baselines, "tolerances.json")
        )
        import copy

        degraded = copy.deepcopy(baseline)
        degraded["kernel_admission"]["sizes"]["14"]["speedup_p99"] = 1.2
        findings = bench_gate.compare(baseline, degraded, tolerances)
        failed = [f for f in findings if f.verdict == FAIL]
        assert [f.path for f in failed] == [
            "kernel_admission.sizes.14.speedup_p99"
        ]

    def test_kernel_verdict_parity_is_gated_exactly(self):
        """Flipping a crossover 'identical' flag is a hard failure."""
        baselines = os.path.join(self.REPO, "benchmarks", "baselines")
        baseline = bench_gate.load_json(
            os.path.join(baselines, "BENCH_kernel.smoke.json")
        )
        tolerances = bench_gate.load_json(
            os.path.join(baselines, "tolerances.json")
        )
        import copy

        diverged = copy.deepcopy(baseline)
        diverged["kernel_crossover"]["sizes"]["12"]["identical"] = False
        findings = bench_gate.compare(baseline, diverged, tolerances)
        failed = {f.path for f in findings if f.verdict == FAIL}
        assert failed == {"kernel_crossover.sizes.12.identical"}
