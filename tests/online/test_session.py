"""Unit tests for online issuance sessions."""

import pytest

from repro.errors import ValidationError
from repro.core.validator import GroupedValidator
from repro.licenses.pool import LicensePool
from repro.online.session import IssuanceSession
from repro.online.strategies import FirstFit, GreedyMaxRemaining, LastFit
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import example1, figure2_pool, figure2_usages


@pytest.fixture
def scenario():
    return example1()


class TestExample1Pathology:
    """Section 2.1: random/naive selection strands capacity; the
    equation-based policy does not."""

    def test_last_fit_rejects_lu2(self, scenario):
        session = IssuanceSession(scenario.pool, LastFit())
        first = session.issue(scenario.usages[0])
        second = session.issue(scenario.usages[1])
        assert first.accepted and first.charged_to == 2
        assert not second.accepted
        assert second.rejection_reason == "capacity"

    def test_first_fit_accepts_both(self, scenario):
        # The paper's "better solution": L_U^1 via L_D^1, L_U^2 via L_D^2.
        session = IssuanceSession(scenario.pool, FirstFit())
        outcomes = [session.issue(usage) for usage in scenario.usages]
        assert [outcome.accepted for outcome in outcomes] == [True, True]
        assert outcomes[0].charged_to == 1
        assert outcomes[1].charged_to == 2

    def test_equation_policy_accepts_both(self, scenario):
        session = IssuanceSession(scenario.pool, "equation")
        outcomes = [session.issue(usage) for usage in scenario.usages]
        assert [outcome.accepted for outcome in outcomes] == [True, True]

    def test_greedy_accepts_both(self, scenario):
        session = IssuanceSession(scenario.pool, GreedyMaxRemaining())
        outcomes = [session.issue(usage) for usage in scenario.usages]
        assert [outcome.accepted for outcome in outcomes] == [True, True]


class TestInstanceRejection:
    def test_unmatched_usage_rejected(self):
        pool = figure2_pool()
        usages = figure2_usages()
        session = IssuanceSession(pool, "equation")
        inside_ld4 = session.issue(usages[0])
        inside_nothing = session.issue(usages[1])
        assert inside_ld4.accepted
        assert inside_ld4.license_set == (4,)
        assert not inside_nothing.accepted
        assert inside_nothing.rejection_reason == "instance"


class TestSessionState:
    def test_log_only_records_accepted(self, scenario):
        session = IssuanceSession(scenario.pool, LastFit())
        for usage in scenario.usages:
            session.issue(usage)
        assert len(session.log) == 1  # L_U^2 was rejected
        assert session.accepted_counts == 800

    def test_outcomes_in_order(self, scenario):
        session = IssuanceSession(scenario.pool, FirstFit())
        for usage in scenario.usages:
            session.issue(usage)
        assert [outcome.usage_id for outcome in session.outcomes] == ["LU1", "LU2"]

    def test_remaining_in_strategy_mode(self, scenario):
        session = IssuanceSession(scenario.pool, FirstFit())
        session.issue(scenario.usages[0])
        assert session.remaining[1] == 1200
        assert session.remaining[2] == 1000

    def test_remaining_unavailable_in_equation_mode(self, scenario):
        session = IssuanceSession(scenario.pool, "equation")
        with pytest.raises(ValidationError):
            session.remaining

    def test_policy_name(self, scenario):
        assert IssuanceSession(scenario.pool, FirstFit()).policy_name == "first-fit"
        assert IssuanceSession(scenario.pool, "equation").policy_name == "equation"

    def test_empty_pool_rejected(self):
        with pytest.raises(ValidationError):
            IssuanceSession(LicensePool(), "equation")

    def test_unknown_policy_string_rejected(self, scenario):
        with pytest.raises(ValidationError):
            IssuanceSession(scenario.pool, "magic")


class TestEquationPolicyExactness:
    def test_accepted_log_always_validates(self):
        # Stream usage licenses through the equation policy: the accepted
        # log must pass offline grouped validation at every point (the
        # policy never lets the log go infeasible).
        generator = WorkloadGenerator(
            WorkloadConfig(
                n_licenses=6,
                seed=2,
                n_records=0,
                aggregate_range=(200, 400),  # small, so rejections occur
            )
        )
        pool = generator.generate_pool()
        session = IssuanceSession(pool, "equation")
        validator = GroupedValidator.from_pool(pool)
        rejections = 0
        for issued, usage in enumerate(generator.issue_stream(pool, 200), start=1):
            outcome = session.issue(usage)
            rejections += not outcome.accepted
            if issued % 25 == 0:
                assert validator.validate(session.log).is_valid
        assert validator.validate(session.log).is_valid
        # With tight aggregates the stream must eventually hit capacity.
        assert rejections > 0

    def test_equation_policy_never_rejects_what_fits(self, scenario):
        # Fill L_D^2 exactly to its limit through flexible sets.
        session = IssuanceSession(scenario.pool, "equation")
        factory_usage = scenario.usages[0]
        outcome = session.issue(factory_usage)  # 800 via {1,2}
        assert outcome.accepted
        # 400 more against {2} fits because the 800 can route to L_D^1.
        outcome2 = session.issue(scenario.usages[1])
        assert outcome2.accepted
