"""Unit tests for online selection strategies."""

from repro.online.strategies import (
    BestFit,
    FirstFit,
    GreedyMaxRemaining,
    LastFit,
    RandomPick,
)

REMAINING = {1: 100, 2: 50, 3: 75}


class TestFirstFit:
    def test_picks_lowest_eligible(self):
        assert FirstFit().select((1, 2, 3), REMAINING, 40) == 1

    def test_skips_exhausted(self):
        assert FirstFit().select((1, 2, 3), REMAINING, 80) == 1
        assert FirstFit().select((2, 3), REMAINING, 60) == 3

    def test_none_when_no_capacity(self):
        assert FirstFit().select((2,), REMAINING, 60) is None


class TestLastFit:
    def test_picks_highest_eligible(self):
        assert LastFit().select((1, 2, 3), REMAINING, 40) == 3

    def test_reproduces_example1_pathology(self):
        # L_U^1 (800) matches {1, 2}; LastFit charges L_D^2...
        remaining = {1: 2000, 2: 1000}
        assert LastFit().select((1, 2), remaining, 800) == 2
        remaining[2] -= 800
        # ...so L_U^2 (400, matches only {2}) cannot be served.
        assert LastFit().select((2,), remaining, 400) is None


class TestRandomPick:
    def test_deterministic_given_seed(self):
        a = [RandomPick(seed=5).select((1, 2, 3), REMAINING, 10) for _ in range(5)]
        b = [RandomPick(seed=5).select((1, 2, 3), REMAINING, 10) for _ in range(5)]
        assert a == b

    def test_only_eligible_choices(self):
        strategy = RandomPick(seed=1)
        for _ in range(50):
            choice = strategy.select((1, 2, 3), REMAINING, 60)
            assert choice in (1, 3)

    def test_none_when_no_capacity(self):
        assert RandomPick().select((2,), REMAINING, 999) is None


class TestBestFit:
    def test_picks_min_remaining_eligible(self):
        assert BestFit().select((1, 2, 3), REMAINING, 40) == 2

    def test_skips_too_small(self):
        # count=60: only 1 (100) and 3 (75) are eligible; best fit is 3.
        assert BestFit().select((1, 2, 3), REMAINING, 60) == 3

    def test_tie_breaks_on_lower_index(self):
        remaining = {1: 50, 2: 50}
        assert BestFit().select((1, 2), remaining, 10) == 1

    def test_none_when_no_capacity(self):
        assert BestFit().select((2,), REMAINING, 999) is None

    def test_example1_pathology_avoided_by_luck_of_sizes(self):
        # Best-fit picks the SMALLER license (L_D^2) for L_U^1 -- the
        # pathological choice in Example 1 -- showing heuristics are
        # workload-dependent and only the equation policy is exact.
        remaining = {1: 2000, 2: 1000}
        assert BestFit().select((1, 2), remaining, 800) == 2


class TestGreedyMaxRemaining:
    def test_picks_max_remaining(self):
        assert GreedyMaxRemaining().select((1, 2, 3), REMAINING, 10) == 1

    def test_tie_breaks_on_lower_index(self):
        remaining = {1: 50, 2: 50}
        assert GreedyMaxRemaining().select((1, 2), remaining, 10) == 1

    def test_none_when_no_capacity(self):
        assert GreedyMaxRemaining().select((2,), REMAINING, 999) is None

    def test_avoids_example1_pathology(self):
        # Greedy charges L_U^1 to the larger L_D^1, keeping L_D^2 intact.
        remaining = {1: 2000, 2: 1000}
        assert GreedyMaxRemaining().select((1, 2), remaining, 800) == 1
