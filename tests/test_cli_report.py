"""CLI surface of the run registry: ``--record`` emitters, ``repro
report``, and the zero-data behavior of the reporting commands."""

from repro.cli import main
from repro.obs.runs import RunRecord, RunRegistry


class TestServeBenchRecord:
    def test_record_appends_run_and_report_renders_it(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        code = main(
            ["serve-bench", "-n", "12", "--stream", "80", "--seed", "5",
             "--record", str(runs), "--record-label", "cli-test"]
        )
        assert code == 0
        assert "recorded run-000001" in capsys.readouterr().out
        registry = RunRegistry(str(runs))
        record = registry.latest("serve-bench")
        assert record.label == "cli-test"
        assert record.config["shards"] == 4
        assert record.stats["requests"] == 80.0
        assert record.counters["requests_total"] == 80.0

        assert main(["report", "--runs-dir", str(runs)]) == 0
        output = capsys.readouterr().out
        assert "# Performance report" in output
        assert "run-000001" in output
        assert "no baseline to attribute against" in output

    def test_two_runs_produce_attribution(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        for seed in ("5", "6"):
            assert main(
                ["serve-bench", "-n", "12", "--stream", "60", "--seed", seed,
                 "--record", str(runs)]
            ) == 0
        capsys.readouterr()
        assert main(["report", "--runs-dir", str(runs)]) == 0
        output = capsys.readouterr().out
        assert "attribution: run-000002 vs baseline run-000001" in output


class TestReportCommand:
    def test_empty_registry_is_well_formed_no_data(self, tmp_path, capsys):
        assert main(["report", "--runs-dir", str(tmp_path / "none")]) == 0
        output = capsys.readouterr().out
        assert output.startswith("# Performance report")
        assert "No runs recorded" in output

    def test_out_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(
            ["report", "--runs-dir", str(tmp_path / "none"),
             "--out", str(out), "--title", "Nightly"]
        ) == 0
        assert out.read_text(encoding="utf-8").startswith("# Nightly")
        assert "wrote report" in capsys.readouterr().out

    def test_results_regeneration_and_drift_check(self, tmp_path, capsys):
        runs = tmp_path / "runs"
        registry = RunRegistry(str(runs))
        registry.append(
            RunRecord(
                run_id=registry.next_run_id(),
                kind="bench",
                artifacts={"kernel_crossover": "the table\n"},
            )
        )
        results = tmp_path / "results"
        assert main(
            ["report", "--runs-dir", str(runs),
             "--results-dir", str(results)]
        ) == 0
        path = results / "kernel_crossover.txt"
        assert path.read_text(encoding="utf-8") == "the table\n"
        assert main(
            ["report", "--runs-dir", str(runs),
             "--results-dir", str(results), "--check"]
        ) == 0
        assert "match the recorded run" in capsys.readouterr().out
        path.write_text("stale\n", encoding="utf-8")
        assert main(
            ["report", "--runs-dir", str(runs),
             "--results-dir", str(results), "--check"]
        ) == 1
        assert "results drift" in capsys.readouterr().err

    def test_check_on_empty_registry_passes(self, tmp_path, capsys):
        assert main(
            ["report", "--runs-dir", str(tmp_path / "none"),
             "--results-dir", str(tmp_path), "--check"]
        ) == 0


class TestZeroDataReports:
    def test_obs_report_on_missing_trace_file(self, tmp_path, capsys):
        missing = tmp_path / "never_written.jsonl"
        assert main(["obs-report", "--trace", str(missing)]) == 0
        output = capsys.readouterr().out
        assert "0 span(s) across 0 trace(s)" in output

    def test_obs_report_on_missing_events_file(self, tmp_path, capsys):
        missing = tmp_path / "never_written.jsonl"
        assert main(["obs-report", "--events", str(missing)]) == 0
        assert "0 event(s)" in capsys.readouterr().out


class TestLoadgenRecordShape:
    """The loadgen --record path shares the builder the wire tests
    exercise end-to-end; here we only pin the CLI plumbing by driving
    the builder with a canned report payload."""

    def test_builder_payload_matches_loadgen_json(self, tmp_path):
        from repro.obs.runs import build_loadgen_record

        registry = RunRegistry(str(tmp_path))
        payload = {
            "rps": 500.0, "p50": 0.002, "p95": 0.004, "p99": 0.006,
            "elapsed": 2.0, "requests": 1000, "measured": 1000,
            "accepted": 800, "retries": 0, "rejected": {},
            "phases_us": {"queue_us": 5.0, "wire": 20.0},
            "overloaded_failures": 0,
        }
        record = registry.append(
            build_loadgen_record(registry, payload, label="pinned")
        )
        reloaded = RunRegistry(str(tmp_path)).get("run-000001")
        assert reloaded.phases_us == {"queue_us": 5.0, "wire_us": 20.0}
        assert reloaded.stats["rps"] == 500.0
        assert reloaded.to_dict() == record.to_dict()
