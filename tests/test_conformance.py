"""Tests for the conformance-vector machinery."""

import json

import pytest

from repro.errors import SerializationError
from repro.conformance import (
    builtin_vectors,
    dumps_vector,
    loads_vector,
    make_vector,
    run_vector,
)


@pytest.fixture(scope="module")
def vectors():
    return dict(builtin_vectors())


class TestBuiltinVectors:
    def test_two_shipped_vectors(self, vectors):
        assert set(vectors) == {"example1", "figure2"}

    @pytest.mark.parametrize("name", ["example1", "figure2"])
    def test_library_conforms_to_its_own_vectors(self, vectors, name):
        results = run_vector(vectors[name])
        failures = [r for r in results if not r.passed]
        assert not failures, "\n".join(str(r) for r in failures)

    def test_example1_expected_values_match_paper(self, vectors):
        expected = vectors["example1"]["expected"]
        assert expected["groups"] == [[1, 2, 4], [3, 5]]
        assert expected["equations_baseline"] == 31
        assert expected["equations_grouped"] == 10
        assert expected["theoretical_gain"] == pytest.approx(3.1)
        assert expected["set_counts"]["1,2"] == 840
        assert expected["match_sets"]["LU1"] == [1, 2]
        assert expected["match_sets"]["LU2"] == [2]
        assert expected["is_valid"] is True

    def test_figure2_expected_values_match_paper(self, vectors):
        expected = vectors["figure2"]["expected"]
        assert expected["overlap_edges"] == [[1, 2], [2, 4], [3, 5]]
        assert expected["match_sets"]["LU1"] == [4]
        assert expected["match_sets"]["LU2"] == []

    def test_vectors_are_json_round_trippable(self, vectors):
        for vector in vectors.values():
            rebuilt = loads_vector(dumps_vector(vector))
            assert rebuilt == json.loads(json.dumps(vector))
            results = run_vector(rebuilt)
            assert all(r.passed for r in results)


class TestFailureDetection:
    def test_tampered_expected_value_fails(self, vectors):
        tampered = json.loads(dumps_vector(vectors["example1"]))
        tampered["expected"]["equations_grouped"] = 11
        results = run_vector(tampered)
        failing = [r for r in results if not r.passed]
        assert [r.name for r in failing] == ["equations_grouped"]
        assert "expected 11" in failing[0].detail

    def test_tampered_log_fails_set_counts(self, vectors):
        tampered = json.loads(dumps_vector(vectors["example1"]))
        tampered["log"][0]["count"] += 1
        results = run_vector(tampered)
        assert any(r.name == "set_counts" and not r.passed for r in results)

    def test_malformed_vector_rejected(self):
        with pytest.raises(SerializationError):
            run_vector({"name": "broken"})
        with pytest.raises(SerializationError):
            loads_vector("{nope")


class TestMakeVector:
    def test_round_trip_through_files(self, tmp_path, vectors):
        path = tmp_path / "example1.json"
        path.write_text(dumps_vector(vectors["example1"], indent=2))
        reloaded = loads_vector(path.read_text())
        assert all(r.passed for r in run_vector(reloaded))

    def test_vector_without_usages_has_no_match_sets(self):
        from repro.licenses.schema import ConstraintSchema, DimensionSpec
        from repro.licenses.license import LicenseFactory
        from repro.licenses.pool import LicensePool
        from repro.logstore.log import ValidationLog

        schema = ConstraintSchema([DimensionSpec.numeric("x")])
        factory = LicenseFactory(schema, "K", "play")
        pool = LicensePool([factory.redistribution("L", aggregate=10, x=(0, 1))])
        vector = make_vector("tiny", pool, schema, ValidationLog())
        assert "match_sets" not in vector["expected"]
        assert all(r.passed for r in run_vector(vector))
