"""Unit tests for storage accounting (Figure 10 metric)."""

from repro.analysis.storage import (
    NODE_COST_BYTES,
    StorageStats,
    grouped_storage,
    python_tree_bytes,
    tree_storage,
)
from repro.core.grouped_tree import GroupedValidationTree
from repro.core.grouping import GroupStructure
from repro.validation.tree import ValidationTree
from repro.workloads.scenarios import example1_log

FIG2_STRUCTURE = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)
EXAMPLE1_AGGREGATES = [2000, 1000, 3000, 4000, 2000]


class TestTreeStorage:
    def test_table2_tree(self):
        stats = tree_storage(ValidationTree.from_log(example1_log()))
        assert stats == StorageStats(nodes=7, roots=1)
        assert stats.total_nodes == 8
        assert stats.model_bytes == 8 * NODE_COST_BYTES

    def test_empty_tree(self):
        stats = tree_storage(ValidationTree())
        assert stats.nodes == 0
        assert stats.roots == 1

    def test_python_bytes_positive(self):
        assert python_tree_bytes(ValidationTree.from_log(example1_log())) > 0


class TestGroupedStorage:
    def test_division_adds_only_roots(self):
        # The paper's Figure 10 claim: same nodes, g extra roots.
        tree = ValidationTree.from_log(example1_log())
        original = tree_storage(tree)
        grouped = GroupedValidationTree.from_tree(
            tree, EXAMPLE1_AGGREGATES, FIG2_STRUCTURE
        )
        divided = grouped_storage(grouped)
        assert divided.nodes == original.nodes
        assert divided.roots == 2
        assert divided.total_nodes == original.total_nodes + 1
