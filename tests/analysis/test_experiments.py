"""Unit tests for the figure-regeneration experiment suite.

These use tiny sweeps so the whole module runs in seconds; the full-size
runs live in ``benchmarks/``.
"""

import math

import pytest

from repro.analysis.experiments import (
    ExperimentSuite,
    render_figure6,
    render_figure7,
    render_figure8,
    render_figure9,
    render_figure10,
)


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(n_values=(2, 4, 6), seed=0, records_per_license=20)


class TestWorkloadCache:
    def test_workloads_cached(self, suite):
        assert suite.workload(4) is suite.workload(4)

    def test_record_scaling(self, suite):
        assert len(suite.workload(4).log) == 80


class TestFigure6(object):
    def test_rows(self, suite):
        rows = suite.figure6()
        assert [row.n for row in rows] == [2, 4, 6]
        for row in rows:
            assert 1 <= row.groups <= row.n
            assert sum(row.sizes) == row.n

    def test_render(self, suite):
        text = render_figure6(suite.figure6())
        assert "Figure 6" in text
        assert "groups" in text


class TestFigure7:
    def test_rows(self, suite):
        rows = suite.figure7()
        for row in rows:
            assert row.baseline_vt > 0
            assert row.grouped_vt > 0
            assert row.division_dt > 0
            assert row.grouped_total == pytest.approx(
                row.grouped_vt + row.division_dt
            )

    def test_grouped_never_slower_at_scale(self):
        # At N=12+ the 2^N baseline must be measurably slower than the
        # grouped method (the Figure 7 separation).
        suite = ExperimentSuite(n_values=(12,), seed=0, records_per_license=20)
        row = suite.figure7()[0]
        structure_groups = suite.workload(12)
        if row.grouped_vt > 0:
            assert row.baseline_vt >= row.grouped_vt

    def test_baseline_cap(self):
        suite = ExperimentSuite(
            n_values=(4,), seed=0, records_per_license=10, baseline_cap=3
        )
        row = suite.figure7()[0]
        assert math.isnan(row.baseline_vt)

    def test_render(self, suite):
        text = render_figure7(suite.figure7())
        assert "Figure 7" in text


class TestFigure8:
    def test_rows(self, suite):
        fig7 = suite.figure7()
        rows = suite.figure8(fig7)
        for row in rows:
            assert row.theoretical_gain >= 1.0
            assert row.experimental_gain > 0 or math.isnan(row.experimental_gain)

    def test_render(self, suite):
        text = render_figure8(suite.figure8(suite.figure7()))
        assert "Figure 8" in text


class TestFigure9:
    def test_rows(self, suite):
        rows = suite.figure9(insert_samples=50)
        for row in rows:
            assert row.insert_one > 0
            assert row.division_dt > 0
            assert row.ratio > 0

    def test_render(self, suite):
        text = render_figure9(suite.figure9(insert_samples=50))
        assert "Figure 9" in text


class TestFigure10:
    def test_division_adds_only_group_roots(self, suite):
        for row in suite.figure10():
            extra = row.divided.total_nodes - row.original.total_nodes
            assert extra == row.divided.roots - 1
            assert row.divided.nodes == row.original.nodes

    def test_render(self, suite):
        text = render_figure10(suite.figure10())
        assert "Figure 10" in text
