"""Unit tests for timing utilities."""

import pytest

from repro.analysis.timing import Stopwatch, time_callable
from repro.errors import AnalysisError


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as watch:
            sum(range(10000))
        assert watch.elapsed > 0

    def test_reusable(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            sum(range(10000))
        assert watch.elapsed >= 0
        assert watch.elapsed != first or watch.elapsed >= 0


class TestTimeCallable:
    def test_returns_result(self):
        elapsed, result = time_callable(lambda: 42)
        assert result == 42
        assert elapsed >= 0

    def test_repeats_take_minimum(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        elapsed, result = time_callable(fn, repeats=3)
        assert len(calls) == 3
        assert result == 3  # last result
        assert elapsed >= 0

    def test_zero_repeats_rejected(self):
        with pytest.raises(AnalysisError):
            time_callable(lambda: 1, repeats=0)
