"""Unit tests for CSV export of experiment series."""

import csv

import pytest

from repro.analysis.experiments import ExperimentSuite
from repro.analysis.export import (
    figure6_csv,
    figure7_csv,
    figure8_csv,
    figure9_csv,
    figure10_csv,
    write_csv,
)


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(n_values=(2, 4), seed=0, records_per_license=10)


def read_back(path):
    with open(path, newline="") as stream:
        return list(csv.reader(stream))


class TestWriteCsv:
    def test_headers_and_rows(self, tmp_path):
        path = tmp_path / "out.csv"
        written = write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        assert written == 2
        rows = read_back(path)
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["1", "2"]

    def test_empty_rows(self, tmp_path):
        path = tmp_path / "out.csv"
        assert write_csv(path, ["x"], []) == 0
        assert read_back(path) == [["x"]]


class TestFigureWriters:
    def test_figure6(self, suite, tmp_path):
        path = tmp_path / "fig6.csv"
        assert figure6_csv(suite.figure6(), path) == 2
        rows = read_back(path)
        assert rows[0] == ["n", "groups", "group_sizes"]
        assert rows[1][0] == "2"

    def test_figure7_and_8(self, suite, tmp_path):
        fig7 = suite.figure7()
        path7 = tmp_path / "fig7.csv"
        assert figure7_csv(fig7, path7) == 2
        assert read_back(path7)[0][1] == "baseline_vt_s"
        path8 = tmp_path / "fig8.csv"
        assert figure8_csv(suite.figure8(fig7), path8) == 2

    def test_figure9(self, suite, tmp_path):
        path = tmp_path / "fig9.csv"
        assert figure9_csv(suite.figure9(insert_samples=20), path) == 2

    def test_figure10(self, suite, tmp_path):
        path = tmp_path / "fig10.csv"
        assert figure10_csv(suite.figure10(), path) == 2
        rows = read_back(path)
        # Divided node count is original + (g - 1) extra roots.
        for row in rows[1:]:
            assert int(row[2]) >= int(row[1])
