"""Unit tests for workload profiling."""

import pytest

from repro.analysis.profile import profile_workload
from repro.logstore.log import ValidationLog
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import example1, example1_log


class TestExample1Profile:
    @pytest.fixture
    def profile(self):
        return profile_workload(example1().pool, example1_log())

    def test_basic_counts(self, profile):
        assert profile.n_licenses == 5
        assert profile.n_records == 6
        assert profile.total_counts == 2090
        assert profile.distinct_sets == 5

    def test_histogram(self, profile):
        # Table 2: two singleton... records are {1,2}x2, {2}, {1,2,4},
        # {3,5}, {5}: sizes 2,1,2,3,2,1.
        assert profile.set_size_histogram == {1: 2, 2: 3, 3: 1}

    def test_group_shape(self, profile):
        assert profile.group_sizes == (3, 2)
        # Group 1 gets 840 + 400 + 30 = 1270; group 2 gets 820.
        assert profile.counts_per_group == (1270, 820)

    def test_mean_and_multi_fraction(self, profile):
        assert profile.mean_set_size == pytest.approx((2 + 1 + 2 + 3 + 2 + 1) / 6)
        assert profile.multi_license_fraction == pytest.approx(4 / 6)

    def test_tree_stats(self, profile):
        assert profile.tree_nodes == 7
        assert profile.tree_depth == 3

    def test_render(self, profile):
        text = profile.render()
        assert "groups: 2" in text
        assert "|S|=2: 3" in text


class TestEdgeCases:
    def test_empty_log(self):
        profile = profile_workload(example1().pool, ValidationLog())
        assert profile.n_records == 0
        assert profile.mean_set_size == 0.0
        assert profile.multi_license_fraction == 0.0
        assert profile.counts_per_group == (0, 0)

    def test_generated_workload_consistency(self):
        workload = WorkloadGenerator(
            WorkloadConfig(n_licenses=9, seed=1, n_records=150)
        ).generate()
        profile = profile_workload(workload.pool, workload.log)
        assert profile.n_records == 150
        assert sum(profile.set_size_histogram.values()) == 150
        assert sum(profile.counts_per_group) == workload.log.total_count
        assert sum(profile.group_sizes) == 9
