"""Unit tests for ASCII table rendering."""

from repro.analysis.tables import format_seconds, render_table


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(2.5) == "2.50 s"

    def test_milliseconds(self):
        assert format_seconds(0.0025) == "2.50 ms"

    def test_microseconds(self):
        assert format_seconds(2.5e-6) == "2.5 µs"


class TestRenderTable:
    def test_alignment_and_title(self):
        rendered = render_table(
            ["N", "groups"], [[1, 1], [35, 5]], title="Figure 6"
        )
        lines = rendered.splitlines()
        assert lines[0] == "Figure 6"
        assert "N" in lines[1] and "groups" in lines[1]
        assert "-+-" in lines[2]
        assert lines[3].startswith("1")
        assert lines[4].startswith("35")

    def test_no_title(self):
        rendered = render_table(["a"], [[1]])
        assert rendered.splitlines()[0].startswith("a")

    def test_empty_rows(self):
        rendered = render_table(["a", "b"], [])
        assert len(rendered.splitlines()) == 2

    def test_float_formatting(self):
        rendered = render_table(["gain"], [[3.100001]])
        assert "3.1" in rendered

    def test_column_widths_accommodate_long_values(self):
        rendered = render_table(["x"], [["a-very-long-cell"]])
        header, rule, row = rendered.splitlines()
        assert len(rule) >= len("a-very-long-cell")
