"""Unit tests for ASCII charts."""

import math

from repro.analysis.charts import bar_chart, timing_chart
from repro.analysis.experiments import Fig7Row


class TestBarChart:
    def test_renders_all_series(self):
        chart = bar_chart(
            {"fast": [(4, 1e-5), (8, 1e-4)], "slow": [(4, 1e-3), (8, 1e-1)]},
            title="demo",
        )
        assert "demo (log scale)" in chart
        assert chart.count("fast") == 2
        assert chart.count("slow") == 2
        assert "N=4" in chart and "N=8" in chart

    def test_log_scale_orders_bar_lengths(self):
        chart = bar_chart({"s": [(1, 1e-6), (2, 1e-2), (3, 1.0)]})
        bars = [line.split("|")[1].split()[0] for line in chart.splitlines()[0:]]
        lengths = [len(bar) for bar in bars]
        assert lengths == sorted(lengths)

    def test_max_value_gets_full_bar(self):
        chart = bar_chart({"s": [(1, 1e-6), (2, 1.0)]})
        longest = max(line.count("#") for line in chart.splitlines())
        assert longest == 40

    def test_nan_marked_not_run(self):
        chart = bar_chart({"s": [(1, float("nan")), (2, 1.0)]})
        assert "(not run)" in chart

    def test_empty_series(self):
        assert bar_chart({"s": []}, title="empty") == "empty"

    def test_non_positive_values_render_minimal_bar(self):
        chart = bar_chart(
            {"s": [(1, 0.0), (2, 1.0)]},
            value_format=lambda v: f"{v:g}",
        )
        zero_line = [line for line in chart.splitlines() if line.endswith(" 0")]
        assert zero_line
        assert zero_line[0].count("#") == 1

    def test_custom_value_format(self):
        chart = bar_chart(
            {"s": [(1, 2.0)]}, value_format=lambda v: f"{v:.0f} units"
        )
        assert "2 units" in chart

    def test_linear_scale(self):
        chart = bar_chart({"s": [(1, 1.0), (2, 2.0)]}, title="t", log_scale=False)
        assert "(linear scale)" in chart


class TestTimingChart:
    def test_figure7_rows(self):
        rows = [
            Fig7Row(8, 4.5e-4, 6.5e-5, 1.2e-4),
            Fig7Row(18, 1.03, 1.7e-4, 4.0e-4),
        ]
        chart = timing_chart(rows)
        assert "baseline V_T" in chart
        assert "proposed V_T+D_T" in chart
        assert "1.03 s" in chart

    def test_nan_baseline_beyond_cap(self):
        rows = [Fig7Row(24, math.nan, 1e-4, 2e-4)]
        chart = timing_chart(rows)
        assert "(not run)" in chart
