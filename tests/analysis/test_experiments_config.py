"""Additional ExperimentSuite behaviours: overrides, repeats, gain reuse."""

import math

from repro.analysis.experiments import ExperimentSuite


class TestConfigOverrides:
    def test_overrides_reach_the_generator(self):
        suite = ExperimentSuite(
            n_values=(6,),
            seed=0,
            records_per_license=0,
            config_overrides={"target_groups": 3},
        )
        rows = suite.figure6()
        # Disjoint cluster slabs guarantee at least the targeted groups.
        assert rows[0].groups >= 3

    def test_distinct_suites_do_not_share_workloads(self):
        a = ExperimentSuite(n_values=(4,), seed=0, records_per_license=10)
        b = ExperimentSuite(n_values=(4,), seed=1, records_per_license=10)
        assert a.workload(4) is not b.workload(4)


class TestFigure7Options:
    def test_repeats_parameter(self):
        suite = ExperimentSuite(n_values=(4,), seed=0, records_per_license=10)
        rows = suite.figure7(repeats=2)
        assert rows[0].baseline_vt > 0

    def test_full_paper_volume_option(self):
        # records_per_license=None -> the paper's 630*N records.
        suite = ExperimentSuite(n_values=(2,), seed=0, records_per_license=None)
        assert len(suite.workload(2).log) == 1260


class TestFigure8Reuse:
    def test_nan_propagates_beyond_cap(self):
        suite = ExperimentSuite(
            n_values=(4,), seed=0, records_per_license=10, baseline_cap=2
        )
        fig7 = suite.figure7()
        rows = suite.figure8(fig7)
        assert math.isnan(rows[0].experimental_gain)
        assert rows[0].theoretical_gain >= 1.0
