"""Smoke tests: every example script must run and print its key results.

Examples are documentation that executes; these tests keep them honest as
the library evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestQuickstart:
    def test_reproduces_paper_numbers(self):
        output = run_example("quickstart.py")
        assert "LU1 instance-matches: [1, 2]" in output
        assert "LU2 instance-matches: [2]" in output
        assert "[[1, 2, 4], [3, 5]]" in output
        assert "31 -> 10" in output
        assert "3.1x" in output
        assert "VALID" in output
        assert "headroom for a {LD2}-only license: 600" in output


class TestMusicDistribution:
    def test_detects_overissue_and_oracle_agrees(self):
        output = run_example("music_distribution.py")
        assert "INVALID" in output
        assert "overdrawn set" in output
        assert "flow-oracle agrees: True" in output


class TestVideoPlatformAudit:
    def test_all_methods_agree_at_scale(self):
        output = run_example("video_platform_audit.py")
        assert "all three methods agree: True" in output
        assert "1,048,575 ungrouped" in output
        assert "experimental gain" in output


class TestOnlineStrategies:
    def test_equation_policy_is_ceiling(self):
        output = run_example("online_strategies.py")
        assert "equation" in output
        assert "100.0%" in output  # the exact policy defines the ceiling
        for line in output.splitlines():
            if line.startswith("offline re-validation"):
                assert line.endswith("OK")


class TestPeriodicAudit:
    def test_modes_agree_and_incremental_saves(self):
        output = run_example("periodic_audit.py")
        assert "x fewer" in output
        assert "by both modes: True" in output


class TestSupplyChain:
    def test_nested_budgets_enforced(self):
        output = run_example("supply_chain.py")
        assert "india-extra (600 counts) REJECTED (equation)" in output
        assert "sold 50/60" in output
        assert "REJECTED (instance)" in output
        assert output.count("VALID") >= 4
