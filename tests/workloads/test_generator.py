"""Unit tests for the synthetic workload generator."""

import pytest

from repro.core.grouping import form_groups
from repro.core.overlap import OverlapGraph
from repro.matching.matcher import BruteForceMatcher
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator, generate_workload


@pytest.fixture
def workload():
    return WorkloadGenerator(
        WorkloadConfig(n_licenses=10, seed=4, n_records=150)
    ).generate()


class TestPoolGeneration:
    def test_pool_size(self, workload):
        assert len(workload.pool) == 10
        assert workload.n == 10

    def test_aggregates_in_range(self, workload):
        for aggregate in workload.aggregates:
            assert 5000 <= aggregate <= 20000

    def test_dimensions(self, workload):
        for box in workload.pool.boxes():
            assert box.dimensions == 4

    def test_deterministic_given_seed(self):
        config = WorkloadConfig(n_licenses=6, seed=9, n_records=50)
        a = WorkloadGenerator(config).generate()
        b = WorkloadGenerator(config).generate()
        assert a.pool.aggregate_array() == b.pool.aggregate_array()
        assert a.log.counts_by_set() == b.log.counts_by_set()

    def test_different_seeds_differ(self):
        a = generate_workload(6, seed=1, n_records=50)
        b = generate_workload(6, seed=2, n_records=50)
        assert (
            a.pool.aggregate_array() != b.pool.aggregate_array()
            or a.log.counts_by_set() != b.log.counts_by_set()
        )


class TestClusterSeparation:
    def test_clusters_are_disconnected(self):
        # Licenses in different cluster slabs can never overlap, so the
        # group count is at least the number of inhabited clusters.
        config = WorkloadConfig(n_licenses=12, seed=0, n_records=0, target_groups=3)
        workload = WorkloadGenerator(config).generate()
        structure = form_groups(OverlapGraph.from_pool(workload.pool))
        assert structure.count >= 3

    def test_single_cluster_can_form_one_group(self):
        config = WorkloadConfig(
            n_licenses=8,
            seed=0,
            n_records=0,
            target_groups=1,
            license_extent_fraction=(0.9, 0.99),  # huge overlap probability
        )
        workload = WorkloadGenerator(config).generate()
        structure = form_groups(OverlapGraph.from_pool(workload.pool))
        assert structure.count == 1


class TestLogGeneration:
    def test_record_count(self, workload):
        assert len(workload.log) == 150

    def test_counts_in_range(self, workload):
        for record in workload.log:
            assert 10 <= record.count <= 30

    def test_match_sets_are_correct(self, workload):
        # Spot-check: each logged set matches brute-force instance
        # matching of a reconstructed usage box is impossible (usages are
        # transient), but every logged set must be non-empty and within
        # the pool's index range.
        n = len(workload.pool)
        for record in workload.log:
            assert record.license_set
            assert all(1 <= index <= n for index in record.license_set)

    def test_usage_boxes_instance_match_parent(self):
        # Re-derive usages via the public stream and check the matcher
        # agrees with pool.matching_indexes.
        config = WorkloadConfig(n_licenses=5, seed=3, n_records=0)
        generator = WorkloadGenerator(config)
        pool = generator.generate_pool()
        matcher = BruteForceMatcher(pool)
        for usage in generator.issue_stream(pool, 30):
            matched = matcher.match(usage)
            assert matched, "generated usage must match at least its parent"

    def test_zero_records(self):
        workload = generate_workload(4, seed=0, n_records=0)
        assert len(workload.log) == 0


class TestCategoricalAxes:
    @pytest.fixture
    def mixed_workload(self):
        config = WorkloadConfig(
            n_licenses=10, seed=6, n_records=200, n_categorical_dims=2
        )
        return WorkloadGenerator(config).generate()

    def test_schema_shape(self, mixed_workload):
        from repro.licenses.schema import DimensionKind

        kinds = [spec.kind for spec in mixed_workload.schema.dimensions]
        assert kinds == [
            DimensionKind.INTERVAL,
            DimensionKind.INTERVAL,
            DimensionKind.DISCRETE,
            DimensionKind.DISCRETE,
        ]

    def test_license_atoms_within_universe(self, mixed_workload):
        from repro.geometry.discrete import DiscreteSet

        universe = {f"a{k}" for k in range(12)}
        for box in mixed_workload.pool.boxes():
            for extent in box.extents:
                if isinstance(extent, DiscreteSet):
                    assert extent.atoms <= universe
                    assert extent.atoms

    def test_usages_still_match(self, mixed_workload):
        # Every record has a non-empty set: shrunken copies (including
        # the atom subsets) fit their parent.
        assert len(mixed_workload.log) == 200
        for record in mixed_workload.log:
            assert record.license_set

    def test_full_pipeline_on_mixed_axes(self, mixed_workload):
        from repro.core.validator import GroupedValidator
        from repro.validation.naive import ScanValidator

        grouped = GroupedValidator.from_pool(mixed_workload.pool).validate(
            mixed_workload.log
        )
        baseline = ScanValidator(mixed_workload.aggregates).validate_log(
            mixed_workload.log
        )
        assert grouped.is_valid == baseline.is_valid

    def test_all_matchers_agree_on_mixed_workload(self):
        from repro.matching.matcher import BruteForceMatcher
        from repro.matching.sorted_index import SortedCandidateMatcher
        from repro.matching.index import IndexedMatcher

        config = WorkloadConfig(
            n_licenses=8, seed=2, n_records=0, n_categorical_dims=2
        )
        generator = WorkloadGenerator(config)
        pool = generator.generate_pool()
        matchers = [
            BruteForceMatcher(pool),
            IndexedMatcher(pool),
            SortedCandidateMatcher(pool),
        ]
        for usage in generator.issue_stream(pool, 50):
            results = {m.match(usage) for m in matchers}
            assert len(results) == 1

    def test_too_many_categorical_dims_rejected(self):
        import pytest as _pytest

        from repro.errors import WorkloadError

        with _pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=3, n_dims=4, n_categorical_dims=4)
        with _pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=3, atoms_per_dim=0)
        with _pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=3, license_atom_fraction=(0.0, 0.5))


class TestMultiLicenseSets:
    def test_some_sets_have_multiple_licenses(self):
        # The whole point of the paper: issued licenses often satisfy
        # several redistribution licenses at once.
        workload = generate_workload(10, seed=1, n_records=300, target_groups=2)
        sizes = [len(s) for s in workload.log.counts_by_set()]
        assert max(sizes) >= 2
