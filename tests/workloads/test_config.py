"""Unit tests for workload configuration."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.config import DEFAULT_RECORDS_PER_LICENSE, WorkloadConfig


class TestDefaults:
    def test_paper_parameters(self):
        config = WorkloadConfig(n_licenses=10)
        assert config.n_dims == 4
        assert config.aggregate_range == (5000, 20000)
        assert config.count_range == (10, 30)

    def test_default_records_scale(self):
        # ~600 records at N=1 up to ~22000 at N=35 (paper Section 5).
        assert WorkloadConfig(n_licenses=1).records == DEFAULT_RECORDS_PER_LICENSE
        assert WorkloadConfig(n_licenses=35).records == pytest.approx(22000, rel=0.05)

    def test_explicit_records_override(self):
        assert WorkloadConfig(n_licenses=5, n_records=100).records == 100

    def test_zero_records_allowed(self):
        assert WorkloadConfig(n_licenses=5, n_records=0).records == 0


class TestClusters:
    def test_heuristic_bounds(self):
        for n in range(1, 40):
            clusters = WorkloadConfig(n_licenses=n).clusters
            assert 1 <= clusters <= min(5, n)

    def test_single_license_single_cluster(self):
        assert WorkloadConfig(n_licenses=1).clusters == 1

    def test_target_respected(self):
        assert WorkloadConfig(n_licenses=20, target_groups=3).clusters == 3

    def test_target_capped_by_n(self):
        assert WorkloadConfig(n_licenses=2, target_groups=5).clusters == 2


class TestValidation:
    def test_bad_n_licenses(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=0)

    def test_bad_dims(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=1, n_dims=0)

    def test_negative_records(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=1, n_records=-1)

    def test_bad_aggregate_range(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=1, aggregate_range=(100, 50))
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=1, aggregate_range=(0, 50))

    def test_bad_domain(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=1, domain=(5.0, 5.0))

    def test_bad_fractions(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=1, license_extent_fraction=(0.0, 0.5))
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=1, usage_extent_fraction=(0.5, 1.5))

    def test_bad_target_groups(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(n_licenses=1, target_groups=0)
