"""Unit tests for extremal pool constructors and the Eq. 3 bounds."""

import pytest

from repro.errors import WorkloadError
from repro.core.gain import gain_bounds
from repro.core.validator import GroupedValidator
from repro.workloads.adversarial import (
    blocks_pool,
    chain_pool,
    clique_pool,
    disjoint_pool,
)


class TestCliquePool:
    @pytest.mark.parametrize("n", [1, 2, 7])
    def test_single_group(self, n):
        validator = GroupedValidator.from_pool(clique_pool(n))
        assert validator.structure.count == 1
        assert validator.theoretical_gain == 1.0  # Eq. 3 lower bound

    def test_all_edges_present(self):
        validator = GroupedValidator.from_pool(clique_pool(4))
        assert validator.graph.edge_count() == 6


class TestDisjointPool:
    @pytest.mark.parametrize("n", [1, 2, 7])
    def test_singleton_groups(self, n):
        validator = GroupedValidator.from_pool(disjoint_pool(n))
        assert validator.structure.count == n
        # Eq. 3 upper bound: (2^n - 1)/n.
        assert validator.theoretical_gain == pytest.approx(gain_bounds(n)[1])

    def test_no_edges(self):
        validator = GroupedValidator.from_pool(disjoint_pool(5))
        assert validator.graph.edge_count() == 0


class TestChainPool:
    @pytest.mark.parametrize("n", [2, 5, 9])
    def test_path_graph(self, n):
        validator = GroupedValidator.from_pool(chain_pool(n))
        edges = sorted(validator.graph.edges())
        assert edges == [(i, i + 1) for i in range(1, n)]
        assert validator.structure.count == 1

    def test_single_license(self):
        validator = GroupedValidator.from_pool(chain_pool(1))
        assert validator.structure.count == 1


class TestBlocksPool:
    def test_exact_group_sizes(self):
        validator = GroupedValidator.from_pool(blocks_pool([3, 2, 4]))
        assert validator.structure.sizes == (3, 2, 4)

    def test_gain_matches_eq3(self):
        from repro.core.gain import theoretical_gain

        validator = GroupedValidator.from_pool(blocks_pool([3, 2]))
        assert validator.theoretical_gain == pytest.approx(theoretical_gain([3, 2]))
        assert validator.theoretical_gain == pytest.approx(3.1)

    def test_group_membership_is_slab_by_slab(self):
        validator = GroupedValidator.from_pool(blocks_pool([2, 3]))
        assert validator.structure.groups == (
            frozenset({1, 2}),
            frozenset({3, 4, 5}),
        )


class TestErrors:
    def test_zero_licenses(self):
        with pytest.raises(WorkloadError):
            clique_pool(0)
        with pytest.raises(WorkloadError):
            disjoint_pool(0)
        with pytest.raises(WorkloadError):
            chain_pool(-1)

    def test_bad_blocks(self):
        with pytest.raises(WorkloadError):
            blocks_pool([])
        with pytest.raises(WorkloadError):
            blocks_pool([2, 0])


class TestGainBoundsTightness:
    """The extremal pools realize both ends of the Eq. 3 range, proving
    the bounds the paper states are tight."""

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_bounds_achieved(self, n):
        low, high = gain_bounds(n)
        assert GroupedValidator.from_pool(clique_pool(n)).theoretical_gain == low
        assert GroupedValidator.from_pool(
            disjoint_pool(n)
        ).theoretical_gain == pytest.approx(high)
