"""Unit tests for the periodic-audit simulation."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.temporal import simulate_periodic_audits


@pytest.fixture
def setup():
    generator = WorkloadGenerator(
        WorkloadConfig(
            n_licenses=8,
            seed=4,
            n_records=0,
            aggregate_range=(500, 1500),
        )
    )
    return generator, generator.generate_pool()


class TestSchedules:
    def test_audit_count(self, setup):
        generator, pool = setup
        result = simulate_periodic_audits(
            generator, pool, n_issuances=100, audit_every=25
        )
        # 100 matched issuances (shrunken copies always match) -> audits
        # at 25, 50, 75, 100 -- the final one coincides with the schedule.
        assert [event.after_records for event in result.events] == [25, 50, 75, 100]
        assert result.total_records == 100

    def test_final_audit_always_runs(self, setup):
        generator, pool = setup
        result = simulate_periodic_audits(
            generator, pool, n_issuances=10, audit_every=100
        )
        assert len(result.events) == 1
        assert result.events[0].after_records == 10

    def test_zero_issuances(self, setup):
        generator, pool = setup
        result = simulate_periodic_audits(
            generator, pool, n_issuances=0, audit_every=5
        )
        assert result.total_records == 0
        assert len(result.events) == 1

    def test_bad_arguments(self, setup):
        generator, pool = setup
        with pytest.raises(WorkloadError):
            simulate_periodic_audits(generator, pool, 10, 0)
        with pytest.raises(WorkloadError):
            simulate_periodic_audits(generator, pool, -1, 5)
        with pytest.raises(WorkloadError):
            simulate_periodic_audits(generator, pool, 10, 5, mode="magic")


class TestModesAgree:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_same_verdicts_both_modes(self, seed):
        generator = WorkloadGenerator(
            WorkloadConfig(
                n_licenses=8,
                seed=seed,
                n_records=0,
                aggregate_range=(300, 800),  # tight: violations occur
            )
        )
        pool = generator.generate_pool()
        # Two identically seeded generators give identical streams.
        generator_b = WorkloadGenerator(
            WorkloadConfig(
                n_licenses=8,
                seed=seed,
                n_records=0,
                aggregate_range=(300, 800),
            )
        )
        pool_b = generator_b.generate_pool()
        incremental = simulate_periodic_audits(
            generator, pool, n_issuances=200, audit_every=40, mode="incremental"
        )
        full = simulate_periodic_audits(
            generator_b, pool_b, n_issuances=200, audit_every=40, mode="full"
        )
        assert [e.is_valid for e in incremental.events] == [
            e.is_valid for e in full.events
        ]
        assert incremental.first_violation_at == full.first_violation_at

    def test_incremental_checks_fewer_equations(self, setup):
        generator, pool = setup
        generator_b = WorkloadGenerator(generator.config)
        pool_b = generator_b.generate_pool()
        incremental = simulate_periodic_audits(
            generator, pool, n_issuances=200, audit_every=20, mode="incremental"
        )
        full = simulate_periodic_audits(
            generator_b, pool_b, n_issuances=200, audit_every=20, mode="full"
        )
        # The full pipeline re-checks every group's equations each pass;
        # the incremental one only dirty groups.
        assert incremental.total_equations <= full.total_equations
