"""Tests for the library's stdlib-logging integration."""

import logging

from repro.core.validator import GroupedValidator
from repro.logstore.log import ValidationLog
from repro.workloads.scenarios import example1, example1_log


class TestValidatorLogging:
    def test_construction_logs_structure_at_debug(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.core.validator"):
            GroupedValidator.from_pool(example1().pool)
        assert any("N=5" in record.message for record in caplog.records)
        assert any("2 group(s)" in record.message for record in caplog.records)

    def test_valid_run_logs_info(self, caplog):
        validator = GroupedValidator.from_pool(example1().pool)
        with caplog.at_level(logging.INFO, logger="repro.core.validator"):
            validator.validate(example1_log())
        assert any("validation OK" in record.message for record in caplog.records)

    def test_failed_run_logs_warning(self, caplog):
        validator = GroupedValidator.from_pool(example1().pool)
        log = ValidationLog()
        log.record({2}, 99999)
        with caplog.at_level(logging.WARNING, logger="repro.core.validator"):
            validator.validate(log)
        warnings = [
            record for record in caplog.records if record.levelno == logging.WARNING
        ]
        assert warnings
        assert "validation FAILED" in warnings[0].message

    def test_silent_by_default(self, capsys):
        # No handler configured: library logging must not print anything.
        validator = GroupedValidator.from_pool(example1().pool)
        validator.validate(example1_log())
        captured = capsys.readouterr()
        assert captured.out == ""


class TestNodeLogging:
    def test_aggregate_rejection_logged(self, caplog):
        from repro.licenses.license import LicenseFactory
        from repro.licenses.schema import ConstraintSchema, DimensionSpec
        from repro.network.node import DistributorNode

        schema = ConstraintSchema([DimensionSpec.numeric("x")])
        factory = LicenseFactory(schema, "K", "play")
        node = DistributorNode("emea")
        node.receive(factory.redistribution("r", aggregate=10, x=(0, 10)))
        with caplog.at_level(logging.INFO, logger="repro.network.node"):
            node.issue_usage(factory.usage("u", count=50, x=(0, 5)))
        assert any("rejected" in record.message for record in caplog.records)
