"""Failure-injection tests: corrupted inputs must fail loudly, not subtly.

Offline validation is a rights-*enforcement* mechanism; silent
misbehaviour on corrupt inputs (truncated logs, tampered checkpoints,
cross-group records) would be worse than a crash.  These tests inject the
corruption and assert the library raises the typed errors its API
documents.
"""

import json

import pytest

from repro.errors import (
    GroupingError,
    LogError,
    SerializationError,
    ValidationError,
)
from repro.core.division import verify_partition
from repro.core.grouping import GroupStructure
from repro.core.incremental import IncrementalValidator
from repro.licenses.rel import loads_pool
from repro.logstore.io import load_log
from repro.logstore.record import LogRecord
from repro.validation.tree import ValidationTree
from repro.validation.tree_io import loads_grouped, loads_tree
from repro.validation.tree_validator import TreeValidator
from repro.workloads.scenarios import example1


class TestCorruptedLogFiles:
    def test_truncated_json_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"set": [1], "count": 5}\n{"set": [1, 2')
        with pytest.raises(SerializationError, match="line 2"):
            load_log(path)

    def test_negative_count(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"set": [1], "count": -5}\n')
        with pytest.raises(SerializationError):
            load_log(path)

    def test_empty_set(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"set": [], "count": 5}\n')
        with pytest.raises(SerializationError):
            load_log(path)

    def test_zero_index(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"set": [0, 1], "count": 5}\n')
        with pytest.raises(SerializationError):
            load_log(path)

    def test_non_integer_index(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"set": ["one"], "count": 5}\n')
        with pytest.raises(SerializationError):
            load_log(path)


class TestCorruptedPoolDocuments:
    def test_negative_aggregate(self):
        document = {
            "schema": {"dimensions": [{"name": "x", "kind": "interval"}]},
            "licenses": [
                {
                    "type": "redistribution",
                    "license_id": "L",
                    "content_id": "K",
                    "permission": "play",
                    "aggregate": -5,
                    "constraints": {"x": [0, 1]},
                }
            ],
        }
        # LicenseError surfaces from construction; any ReproError is fine
        # as long as it is loud.
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            loads_pool(json.dumps(document))

    def test_inverted_interval(self):
        document = {
            "schema": {"dimensions": [{"name": "x", "kind": "interval"}]},
            "licenses": [
                {
                    "type": "redistribution",
                    "license_id": "L",
                    "content_id": "K",
                    "permission": "play",
                    "aggregate": 5,
                    "constraints": {"x": [10, 1]},
                }
            ],
        }
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            loads_pool(json.dumps(document))


class TestCrossGroupCorruption:
    """A log claiming a set that spans disconnected groups is physically
    impossible (Corollary 1.1) and must be flagged, not silently divided."""

    STRUCTURE = GroupStructure((frozenset({1, 2, 4}), frozenset({3, 5})), 5)

    def test_verify_partition_detects_it(self):
        tree = ValidationTree()
        tree.insert_set((2, 3), 10)
        with pytest.raises(GroupingError):
            verify_partition(tree, self.STRUCTURE)

    def test_incremental_validator_rejects_it(self):
        incremental = IncrementalValidator.from_pool(example1().pool)
        with pytest.raises(GroupingError):
            incremental.record({2, 3}, 10)


class TestTamperedCheckpoints:
    def test_tree_checkpoint_with_shuffled_children(self):
        tampered = json.dumps(
            {
                "version": 1,
                "tree": {
                    "index": 0,
                    "count": 0,
                    "children": [
                        {"index": 5, "count": 1, "children": []},
                        {"index": 2, "count": 1, "children": []},
                    ],
                },
            }
        )
        with pytest.raises(SerializationError):
            loads_tree(tampered)

    def test_grouped_checkpoint_with_wrong_tree_count(self):
        tampered = json.dumps(
            {
                "version": 1,
                "n": 2,
                "groups": [[1], [2]],
                "trees": [{"index": 0, "count": 0, "children": []}],
            }
        )
        with pytest.raises(SerializationError):
            loads_grouped(tampered)

    def test_grouped_checkpoint_with_overlapping_groups(self):
        tampered = json.dumps(
            {
                "version": 1,
                "n": 2,
                "groups": [[1, 2], [2]],
                "trees": [
                    {"index": 0, "count": 0, "children": []},
                    {"index": 0, "count": 0, "children": []},
                ],
            }
        )
        with pytest.raises((SerializationError, GroupingError)):
            loads_grouped(tampered)


class TestValidatorMisuse:
    def test_tree_referencing_unknown_license(self):
        tree = ValidationTree()
        tree.insert_set((9,), 5)
        with pytest.raises(ValidationError):
            TreeValidator([10, 10]).validate(tree)

    def test_record_with_bool_count(self):
        with pytest.raises(LogError):
            LogRecord(frozenset({1}), True)
