"""Integration tests: the full pipeline over synthetic workloads.

license generation -> instance matching -> logging -> tree construction ->
overlap grouping -> division/remap -> grouped validation, cross-checked
against the ungrouped baseline and the flow oracle.
"""

import pytest

from repro.core.division import verify_partition
from repro.core.grouping import form_groups, form_groups_networkx
from repro.core.overlap import OverlapGraph
from repro.core.validator import GroupedValidator
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.naive import ScanValidator
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.validation.zeta import ZetaValidator
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.mark.parametrize("seed", range(5))
def test_full_pipeline_all_engines_agree(seed):
    """Every engine reaches the same verdict on realistic workloads."""
    config = WorkloadConfig(
        n_licenses=10,
        seed=seed,
        n_records=300,
        aggregate_range=(1000, 4000),  # tight enough to see violations
    )
    workload = WorkloadGenerator(config).generate()
    aggregates = workload.aggregates
    counts = workload.log.counts_by_mask()

    grouped = GroupedValidator.from_pool(workload.pool).validate(workload.log)
    baseline = TreeValidator(aggregates).validate(
        ValidationTree.from_log(workload.log)
    )
    scan = ScanValidator(aggregates).validate_counts(counts)
    zeta = ZetaValidator(aggregates).validate_counts(counts)
    flow_feasible = FlowFeasibilityOracle(aggregates).feasible(counts)

    assert baseline.violations == scan.violations
    assert baseline.violations == zeta.violations
    assert grouped.is_valid == baseline.is_valid == flow_feasible


@pytest.mark.parametrize("seed", range(3))
def test_division_preserves_counts_and_partition(seed):
    workload = WorkloadGenerator(
        WorkloadConfig(n_licenses=14, seed=seed, n_records=250)
    ).generate()
    validator = GroupedValidator.from_pool(workload.pool)
    structure = validator.structure

    tree = ValidationTree.from_log(workload.log)
    verify_partition(tree, structure)
    total_before = tree.subset_sum((1 << len(workload.pool)) - 1)

    grouped = validator.divide(tree)
    total_after = sum(
        part.subset_sum((1 << size) - 1)
        for part, size in zip(grouped.trees, structure.sizes)
    )
    assert total_before == total_after == workload.log.total_count


@pytest.mark.parametrize("n", [1, 2, 5, 9, 16, 23])
def test_group_formation_matches_networkx_on_workloads(n):
    workload = WorkloadGenerator(
        WorkloadConfig(n_licenses=n, seed=n, n_records=0)
    ).generate()
    graph = OverlapGraph.from_pool(workload.pool)
    assert form_groups(graph) == form_groups_networkx(graph)


def test_equation_savings_on_clustered_workload():
    """A clustered pool yields a strict equation-count reduction."""
    workload = WorkloadGenerator(
        WorkloadConfig(n_licenses=16, seed=2, n_records=0, target_groups=4)
    ).generate()
    validator = GroupedValidator.from_pool(workload.pool)
    assert validator.structure.count >= 4
    assert validator.equations_required < validator.equations_baseline
    assert validator.theoretical_gain > 100  # 2^16-1 vs a few hundred


def test_single_license_degenerate_case():
    workload = WorkloadGenerator(
        WorkloadConfig(n_licenses=1, seed=0, n_records=40)
    ).generate()
    validator = GroupedValidator.from_pool(workload.pool)
    assert validator.structure.count == 1
    assert validator.equations_required == 1
    assert validator.theoretical_gain == 1.0
    report = validator.validate(workload.log)
    baseline = TreeValidator(workload.aggregates).validate(
        ValidationTree.from_log(workload.log)
    )
    assert report.is_valid == baseline.is_valid


def test_headroom_consistent_with_flow_on_workload():
    workload = WorkloadGenerator(
        WorkloadConfig(n_licenses=8, seed=5, n_records=150)
    ).generate()
    validator = GroupedValidator.from_pool(workload.pool)
    if not validator.validate(workload.log).is_valid:
        pytest.skip("workload not feasible; headroom semantics differ")
    oracle = FlowFeasibilityOracle(workload.aggregates)
    counts = workload.log.counts_by_mask()
    # Probe headroom for a handful of logged sets.
    for license_set in list(workload.log.counts_by_set())[:5]:
        mask = 0
        for index in license_set:
            mask |= 1 << (index - 1)
        assert validator.headroom(workload.log, license_set) == (
            oracle.remaining_capacity(counts, mask)
        )


def test_serialization_round_trip_preserves_validation():
    """Persist pool + log, reload, and get the identical report."""
    import io

    from repro.licenses.rel import dumps_pool, loads_pool
    from repro.logstore.io import read_records, write_records
    from repro.logstore.log import ValidationLog

    workload = WorkloadGenerator(
        WorkloadConfig(n_licenses=7, seed=8, n_records=120)
    ).generate()
    pool_json = dumps_pool(workload.pool, workload.schema)
    buffer = io.StringIO()
    write_records(workload.log, buffer)
    buffer.seek(0)

    pool, _schema = loads_pool(pool_json)
    log = ValidationLog()
    log.extend(read_records(buffer))

    original = GroupedValidator.from_pool(workload.pool).validate(workload.log)
    reloaded = GroupedValidator.from_pool(pool).validate(log)
    assert original.is_valid == reloaded.is_valid
    assert original.violations == reloaded.violations
    assert original.equations_checked == reloaded.equations_checked
