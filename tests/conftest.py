"""Shared fixtures: the paper's scenarios and small synthetic workloads."""

from __future__ import annotations

import pytest

from repro.core.validator import GroupedValidator
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import (
    example1,
    example1_log,
    figure2_pool,
    figure2_usages,
)


@pytest.fixture
def scenario():
    """The paper's Example 1 (pool + two usage licenses)."""
    return example1()


@pytest.fixture
def table2_log():
    """The issuance log of Table 2."""
    return example1_log()


@pytest.fixture
def fig2_pool():
    """The 2-D numeric realization of Figure 2."""
    return figure2_pool()


@pytest.fixture
def fig2_usages():
    """Figure 2's usage licenses (one inside L_D^4, one inside nothing)."""
    return figure2_usages()


@pytest.fixture
def example1_validator(scenario):
    """A grouped validator over the Example 1 pool."""
    return GroupedValidator.from_pool(scenario.pool)


@pytest.fixture
def small_workload():
    """A small deterministic synthetic workload (N=8, 200 records)."""
    config = WorkloadConfig(n_licenses=8, seed=7, n_records=200)
    return WorkloadGenerator(config).generate()


@pytest.fixture
def medium_workload():
    """A medium synthetic workload (N=12, 600 records)."""
    config = WorkloadConfig(n_licenses=12, seed=11, n_records=600)
    return WorkloadGenerator(config).generate()
