"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "-n", "5"])
        assert args.command == "generate"
        assert args.licenses == 5

    def test_experiment_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "11"])


class TestDemo:
    def test_demo_prints_paper_numbers(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "3.1" in output
        assert "VALID" in output
        assert "[1, 2, 4]" in output


class TestGenerateAndValidate:
    def test_round_trip(self, tmp_path, capsys):
        pool_path = tmp_path / "pool.json"
        log_path = tmp_path / "log.jsonl"
        code = main(
            [
                "generate",
                "-n",
                "6",
                "--records",
                "80",
                "--seed",
                "3",
                "--pool-out",
                str(pool_path),
                "--log-out",
                str(log_path),
            ]
        )
        assert code == 0
        document = json.loads(pool_path.read_text())
        assert len(document["licenses"]) == 6
        assert len(log_path.read_text().splitlines()) == 80

        for engine in ("grouped", "tree", "scan", "expansion", "zeta"):
            code = main(
                ["validate", "--pool", str(pool_path), "--log", str(log_path),
                 "--engine", engine]
            )
            output = capsys.readouterr().out
            assert f"[{ 'grouped-tree' if engine == 'grouped' else engine }]" in output
            assert code in (0, 1)

    def test_engines_agree_on_exit_code(self, tmp_path, capsys):
        pool_path = tmp_path / "pool.json"
        log_path = tmp_path / "log.jsonl"
        main(
            ["generate", "-n", "5", "--records", "60", "--seed", "1",
             "--pool-out", str(pool_path), "--log-out", str(log_path)]
        )
        capsys.readouterr()
        codes = {
            engine: main(
                ["validate", "--pool", str(pool_path), "--log", str(log_path),
                 "--engine", engine]
            )
            for engine in ("grouped", "tree", "scan", "zeta")
        }
        capsys.readouterr()
        assert len(set(codes.values())) == 1


class TestHeadroomAndDiagnose:
    @pytest.fixture
    def artifacts(self, tmp_path):
        pool_path = tmp_path / "pool.json"
        log_path = tmp_path / "log.jsonl"
        main(
            ["generate", "-n", "6", "--records", "60", "--seed", "5",
             "--pool-out", str(pool_path), "--log-out", str(log_path)]
        )
        return str(pool_path), str(log_path)

    def test_headroom_prints_counts(self, artifacts, capsys):
        pool_path, log_path = artifacts
        capsys.readouterr()
        code = main(
            ["headroom", "--pool", pool_path, "--log", log_path, "--set", "1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "headroom for" in output
        assert "counts" in output

    def test_diagnose_valid_log(self, artifacts, capsys):
        pool_path, log_path = artifacts
        capsys.readouterr()
        code = main(["diagnose", "--pool", pool_path, "--log", log_path])
        output = capsys.readouterr().out
        if code == 0:
            assert "VALID" in output
        else:
            assert "minimal violated sets" in output
            assert "minimum counts to revoke" in output

    def test_diagnose_invalid_log(self, tmp_path, capsys):
        # Hand-build a violating scenario: 1 license of capacity small.
        import json

        from repro.licenses.rel import dumps_pool
        from repro.licenses.schema import ConstraintSchema, DimensionSpec
        from repro.licenses.license import LicenseFactory
        from repro.licenses.pool import LicensePool

        schema = ConstraintSchema([DimensionSpec.numeric("x")])
        factory = LicenseFactory(schema, "K", "play")
        pool = LicensePool([factory.redistribution("L", aggregate=100, x=(0, 10))])
        pool_path = tmp_path / "pool.json"
        pool_path.write_text(dumps_pool(pool, schema))
        log_path = tmp_path / "log.jsonl"
        log_path.write_text(json.dumps({"set": [1], "count": 150}) + "\n")
        code = main(["diagnose", "--pool", str(pool_path), "--log", str(log_path)])
        output = capsys.readouterr().out
        assert code == 1
        assert "minimum counts to revoke: 50" in output


class TestConformanceCommand:
    def test_all_builtin_checks_pass(self, capsys, tmp_path):
        code = main(["conformance", "--export-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "example1: 9/9 checks passed" in output
        assert "figure2: 9/9 checks passed" in output
        assert (tmp_path / "example1.json").exists()
        assert (tmp_path / "figure2.json").exists()


class TestProfileCommand:
    def test_profile_prints_shape_and_explanation(self, tmp_path, capsys):
        pool_path = tmp_path / "pool.json"
        log_path = tmp_path / "log.jsonl"
        main(
            ["generate", "-n", "6", "--records", "80", "--seed", "4",
             "--pool-out", str(pool_path), "--log-out", str(log_path)]
        )
        capsys.readouterr()
        code = main(["profile", "--pool", str(pool_path), "--log", str(log_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "licenses: 6" in output
        assert "match-set sizes" in output
        assert "theoretical gain" in output


class TestSimulateCommand:
    def test_simulate_prints_policy_table(self, capsys):
        code = main(["simulate", "-n", "5", "--stream", "60", "--seed", "2"])
        assert code == 0
        output = capsys.readouterr().out
        for policy in ("random", "last-fit", "first-fit",
                       "greedy-max-remaining", "equation"):
            assert policy in output

    def test_equation_policy_serves_the_most(self, capsys):
        main(["simulate", "-n", "6", "--stream", "250", "--seed", "3"])
        output = capsys.readouterr().out
        served = {}
        for line in output.splitlines():
            parts = [part.strip() for part in line.split("|")]
            if len(parts) == 4 and parts[0] in (
                "random", "last-fit", "first-fit",
                "greedy-max-remaining", "equation",
            ):
                served[parts[0]] = int(parts[3])
        assert served["equation"] == max(served.values())


class TestExperimentCommand:
    @pytest.mark.parametrize("figure", ["6", "10"])
    def test_fast_figures(self, figure, capsys):
        code = main(
            ["experiment", figure, "--sweep", "2", "4",
             "--records-per-license", "10"]
        )
        assert code == 0
        assert f"Figure {figure}" in capsys.readouterr().out

    def test_figure7_prints_table_and_chart(self, capsys):
        code = main(
            ["experiment", "7", "--sweep", "2", "4",
             "--records-per-license", "10"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "log scale" in output

    @pytest.mark.parametrize("figure", ["8", "9"])
    def test_timing_figures(self, figure, capsys):
        code = main(
            ["experiment", figure, "--sweep", "2", "4",
             "--records-per-license", "10"]
        )
        assert code == 0
        assert f"Figure {figure}" in capsys.readouterr().out


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestServeBenchObservability:
    def _run(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            ["serve-bench", "-n", "12", "--stream", "80", "--seed", "5",
             "--shards", "2",
             "--trace", str(trace_path),
             "--events-out", str(events_path),
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        return trace_path, events_path, metrics_path, capsys.readouterr().out

    def test_exports_all_three_artifacts(self, tmp_path, capsys):
        trace_path, events_path, metrics_path, output = self._run(
            tmp_path, capsys
        )
        assert "wrote" in output
        assert trace_path.exists()
        assert events_path.exists()
        assert metrics_path.exists()

    def test_trace_file_covers_the_pipeline(self, tmp_path, capsys):
        from repro.obs.export import load_trace_jsonl

        trace_path, _, _, _ = self._run(tmp_path, capsys)
        names = {record.name for record in load_trace_jsonl(str(trace_path))}
        assert names >= {
            "request", "match", "queue_wait", "admission",
            "drain", "shard_batch", "revalidate",
        }

    def test_metrics_file_parses_as_prometheus(self, tmp_path, capsys):
        from repro.obs.export import parse_prometheus

        _, _, metrics_path, _ = self._run(tmp_path, capsys)
        samples = parse_prometheus(metrics_path.read_text())
        assert "repro_requests_total" in samples
        assert "repro_latency_seconds" in samples

    def test_events_file_journals_every_verdict(self, tmp_path, capsys):
        from repro.obs.events import EventLog

        _, events_path, _, _ = self._run(tmp_path, capsys)
        kinds = [
            event["kind"] for event in EventLog.iter_file(str(events_path))
        ]
        assert sum(k in ("admission", "rejection") for k in kinds) == 80


class TestServeBenchKernel:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--kernel", "gpu"])

    def test_dense_run_reports_fast_path_metric(self, capsys):
        code = main(
            ["serve-bench", "-n", "12", "--stream", "60", "--seed", "5",
             "--kernel", "dense"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "kernel_fast_path_hits" in output
        assert "kernel_fallback" not in output

    def test_dense_and_tree_verdicts_agree(self, capsys):
        tallies = []
        for kernel in ("tree", "dense"):
            assert main(
                ["serve-bench", "-n", "12", "--stream", "90", "--seed", "7",
                 "--kernel", kernel]
            ) == 0
            output = capsys.readouterr().out
            tallies.append(
                next(
                    line.split("(")[1]
                    for line in output.splitlines()
                    if "accepted," in line
                )
            )
        assert tallies[0] == tallies[1]

    def test_kernel_cap_zero_forces_fallback(self, capsys):
        code = main(
            ["serve-bench", "-n", "12", "--stream", "40", "--seed", "5",
             "--kernel", "dense", "--kernel-cap", "0"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "kernel_fallback" in output
        assert "kernel_fast_path_hits" not in output


class TestObsReportCommand:
    def test_requires_an_input(self, capsys):
        assert main(["obs-report"]) == 2
        assert "provide --trace" in capsys.readouterr().err

    def test_reports_trace_and_events(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        events_path = tmp_path / "events.jsonl"
        main(
            ["serve-bench", "-n", "12", "--stream", "60", "--seed", "5",
             "--trace", str(trace_path), "--events-out", str(events_path)]
        )
        capsys.readouterr()
        code = main(
            ["obs-report", "--trace", str(trace_path),
             "--events", str(events_path), "--top", "4", "--max-traces", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "span(s) across" in output
        assert "top 4 slowest spans" in output
        assert output.count("trace t") == 2
        assert "event(s)" in output
        assert "admission" in output

    def test_sample_rate_thins_the_trace(self, tmp_path, capsys):
        from repro.obs.export import load_trace_jsonl

        full_path = tmp_path / "full.jsonl"
        thin_path = tmp_path / "thin.jsonl"
        for path, rate in ((full_path, "1.0"), (thin_path, "0.25")):
            main(
                ["serve-bench", "-n", "12", "--stream", "60", "--seed", "5",
                 "--trace", str(path), "--sample-rate", rate]
            )
        capsys.readouterr()
        full = load_trace_jsonl(str(full_path))
        thin = load_trace_jsonl(str(thin_path))
        assert 0 < len(thin) < len(full)


class TestServeBenchMonitoring:
    def _run(self, tmp_path, capsys, extra=()):
        health_path = tmp_path / "health.json"
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            ["serve-bench", "-n", "12", "--stream", "80", "--seed", "5",
             "--shards", "2",
             "--slo", "availability:0.999",
             "--slo", "latency:0.95:0.05",
             "--health-out", str(health_path),
             "--events-out", str(events_path),
             "--metrics-out", str(metrics_path),
             *extra]
        )
        assert code == 0
        return health_path, events_path, metrics_path, capsys.readouterr().out

    def test_monitored_run_reports_and_snapshots(self, tmp_path, capsys):
        health_path, _, _, output = self._run(tmp_path, capsys)
        assert "slos:" in output
        assert "wrote health snapshot" in output
        snapshot = json.loads(health_path.read_text())
        assert snapshot["status"] in ("ok", "warn", "critical")
        assert {s["name"] for s in snapshot["slos"]} == {
            "availability", "latency",
        }
        assert snapshot["ticks"] >= 1

    def test_monitor_gauges_land_in_metrics_export(self, tmp_path, capsys):
        from repro.obs.export import parse_prometheus

        _, _, metrics_path, _ = self._run(tmp_path, capsys)
        samples = parse_prometheus(metrics_path.read_text())
        assert "repro_alert_state" in samples
        assert "repro_slo_compliance" in samples
        assert "repro_slo_burn_rate" in samples

    def test_health_out_alone_enables_monitoring(self, tmp_path, capsys):
        health_path = tmp_path / "health.json"
        code = main(
            ["serve-bench", "-n", "8", "--stream", "40", "--seed", "1",
             "--health-out", str(health_path)]
        )
        assert code == 0
        capsys.readouterr()
        assert json.loads(health_path.read_text())["ticks"] >= 1

    def test_monitored_compare_sweep_still_works(self, tmp_path, capsys):
        self._run(tmp_path, capsys, extra=("--compare",))

    def test_bad_slo_spec_is_rejected(self, tmp_path):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            main(
                ["serve-bench", "-n", "8", "--stream", "10",
                 "--slo", "durability:0.9"]
            )


class TestMonitorReport:
    def _artifacts(self, tmp_path, capsys):
        health_path = tmp_path / "health.json"
        events_path = tmp_path / "events.jsonl"
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            ["serve-bench", "-n", "12", "--stream", "80", "--seed", "5",
             "--slo", "availability:0.999",
             "--health-out", str(health_path),
             "--events-out", str(events_path),
             "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        capsys.readouterr()
        return health_path, events_path, metrics_path

    def test_no_inputs_exits_two(self, capsys):
        assert main(["monitor-report"]) == 2
        assert "provide --health" in capsys.readouterr().err

    def test_health_section(self, tmp_path, capsys):
        health_path, _, _ = self._artifacts(tmp_path, capsys)
        assert main(["monitor-report", "--health", str(health_path)]) == 0
        output = capsys.readouterr().out
        assert output.startswith("health:")
        assert "efficiency_ratio" in output
        assert "slo availability" in output
        assert "alert queue-saturation" in output

    def test_events_section(self, tmp_path, capsys):
        _, events_path, _ = self._artifacts(tmp_path, capsys)
        assert main(["monitor-report", "--events", str(events_path)]) == 0
        assert "alert timeline:" in capsys.readouterr().out

    def test_metrics_section(self, tmp_path, capsys):
        _, _, metrics_path = self._artifacts(tmp_path, capsys)
        assert main(["monitor-report", "--metrics", str(metrics_path)]) == 0
        output = capsys.readouterr().out
        assert "monitoring gauges:" in output
        assert "repro_alert_state" in output
        assert "queue-saturation" in output

    def test_all_sections_together(self, tmp_path, capsys):
        health_path, events_path, metrics_path = self._artifacts(
            tmp_path, capsys
        )
        code = main(
            ["monitor-report",
             "--health", str(health_path),
             "--events", str(events_path),
             "--metrics", str(metrics_path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "health:" in output
        assert "alert timeline:" in output
        assert "monitoring gauges:" in output
