"""Unit tests for the brute-force instance matcher."""

import pytest

from repro.matching.matcher import BruteForceMatcher
from repro.workloads.scenarios import example1, figure2_pool, figure2_usages


@pytest.fixture
def scenario():
    return example1()


class TestExample1:
    def test_lu1_matches_ld1_and_ld2(self, scenario):
        # Paper: L_U^1 satisfies all instance constraints of L_D^1, L_D^2.
        matcher = BruteForceMatcher(scenario.pool)
        assert matcher.match(scenario.usages[0]) == frozenset({1, 2})

    def test_lu2_matches_only_ld2(self, scenario):
        # Paper: L_U^2 satisfies the instance constraints only of L_D^2.
        matcher = BruteForceMatcher(scenario.pool)
        assert matcher.match(scenario.usages[1]) == frozenset({2})

    def test_instance_valid_flags(self, scenario):
        matcher = BruteForceMatcher(scenario.pool)
        assert matcher.is_instance_valid(scenario.usages[0])
        assert matcher.is_instance_valid(scenario.usages[1])

    def test_pool_accessor(self, scenario):
        assert BruteForceMatcher(scenario.pool).pool is scenario.pool


class TestFigure2:
    def test_lu1_inside_ld4_only(self):
        # Paper Figure 2: the hyper-rectangle of L_U^1 is completely
        # within L_D^4 only.
        matcher = BruteForceMatcher(figure2_pool())
        usages = figure2_usages()
        assert matcher.match(usages[0]) == frozenset({4})

    def test_lu2_inside_nothing(self):
        # Paper Figure 2: L_U^2 is not completely within any license and
        # is therefore invalid.
        matcher = BruteForceMatcher(figure2_pool())
        usages = figure2_usages()
        assert matcher.match(usages[1]) == frozenset()
        assert not matcher.is_instance_valid(usages[1])
