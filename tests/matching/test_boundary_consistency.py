"""Randomized boundary-touching cross-check of all three matchers.

Satellite of the serving PR: containment is *closed* (``lows <= q.low``
and ``q.high <= highs``), so a query edge exactly on a license edge must
match -- and each matcher realizes the comparison differently (Python
``<=``, numpy broadcast ``<=``, ``bisect_right``/``bisect_left`` cut
points).  Off-by-one disagreements between them would silently desync
the serving layer's cached match sets from the offline reference, so we
fuzz exactly the risky inputs: probes whose bounds coincide with license
bounds (full-box coincidence, single-edge touches, degenerate points on
corners) plus probes nudged one unit outside, and require extensional
agreement via :func:`repro.matching.audit.cross_check`.
"""

import random

import pytest

from repro.licenses.license import LicenseFactory
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.matching.audit import cross_check

SEEDS = [1, 7, 23]


def build_pool(rng, n_licenses=14, span=60):
    """A pool of random integer boxes over two numeric dimensions."""
    schema = ConstraintSchema(
        [DimensionSpec.numeric("window"), DimensionSpec.numeric("zone")]
    )
    factory = LicenseFactory(schema, content_id="K", permission="play")
    pool = LicensePool()
    for serial in range(1, n_licenses + 1):
        bounds = []
        for _dim in range(2):
            low = rng.randint(0, span - 1)
            high = rng.randint(low, span)
            bounds.append((low, high))
        pool.add(
            factory.redistribution(
                f"LD{serial}",
                aggregate=100,
                window=bounds[0],
                zone=bounds[1],
            )
        )
    return factory, pool


def boundary_probes(rng, factory, pool, per_license=6):
    """Queries engineered to touch license edges exactly.

    For each license: its exact box, degenerate corner points, probes
    sharing one edge, and probes nudged one unit past an edge (which must
    *not* match that edge's closed bound).
    """
    probes = []
    serial = 0

    def probe(window, zone):
        nonlocal serial
        if window[0] > window[1] or zone[0] > zone[1]:
            return
        serial += 1
        probes.append(
            factory.usage(f"q{serial}", count=1, window=window, zone=zone)
        )

    for _index, lic in pool.enumerate():
        (w_low, w_high), (z_low, z_high) = (
            (extent.low, extent.high) for extent in lic.box.extents
        )
        # Full coincidence: the license's own box must match itself.
        probe((w_low, w_high), (z_low, z_high))
        # Degenerate corner points sit on two closed bounds at once.
        probe((w_low, w_low), (z_low, z_low))
        probe((w_high, w_high), (z_high, z_high))
        for _ in range(per_license):
            # A random sub-box pinned to one randomly chosen edge.
            pinned_low = rng.random() < 0.5
            inner_w = sorted(rng.sample(range(w_low, w_high + 1), 1) * 2)
            probe(
                (w_low, inner_w[1]) if pinned_low else (inner_w[0], w_high),
                (
                    rng.randint(z_low, z_high),
                    z_high,
                ),
            )
        # One unit outside each window edge: closed containment by this
        # license must fail, and all matchers must agree it fails.
        probe((w_low - 1, w_low), (z_low, z_low))
        probe((w_high, w_high + 1), (z_high, z_high))
    return probes


@pytest.mark.parametrize("seed", SEEDS)
def test_matchers_agree_on_boundary_touching_probes(seed):
    rng = random.Random(seed)
    factory, pool = build_pool(rng)
    probes = boundary_probes(rng, factory, pool)
    assert len(probes) >= 100  # the fuzz actually generated coverage
    checked, disagreements = cross_check(pool, probes)
    assert checked == len(probes)
    assert not disagreements, "\n".join(str(d) for d in disagreements)


def test_exact_edge_is_a_match_and_one_past_is_not():
    """Spot-check the closed-containment convention itself."""
    rng = random.Random(0)
    factory, _pool = build_pool(rng, n_licenses=0)
    pool = LicensePool()
    pool.add(
        factory.redistribution(
            "LD1", aggregate=10, window=(10, 20), zone=(30, 40)
        )
    )
    on_edge = factory.usage("edge", count=1, window=(10, 20), zone=(30, 40))
    past_edge = factory.usage("past", count=1, window=(10, 21), zone=(30, 40))
    checked, disagreements = cross_check(pool, [on_edge, past_edge])
    assert checked == 2 and not disagreements
    from repro.matching.matcher import BruteForceMatcher

    matcher = BruteForceMatcher(pool)
    assert matcher.match(on_edge) == frozenset({1})
    assert matcher.match(past_edge) == frozenset()
