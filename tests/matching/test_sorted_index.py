"""Unit tests for the sorted-candidate (selectivity-pruning) matcher."""

import pytest

from repro.errors import DimensionMismatchError
from repro.licenses.license import LicenseFactory
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.matching.matcher import BruteForceMatcher
from repro.matching.sorted_index import SortedCandidateMatcher
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import example1, figure2_pool, figure2_usages


class TestAgainstExamples:
    def test_example1(self):
        scenario = example1()
        matcher = SortedCandidateMatcher(scenario.pool)
        assert matcher.match(scenario.usages[0]) == frozenset({1, 2})
        assert matcher.match(scenario.usages[1]) == frozenset({2})

    def test_figure2(self):
        matcher = SortedCandidateMatcher(figure2_pool())
        usages = figure2_usages()
        assert matcher.match(usages[0]) == frozenset({4})
        assert matcher.match(usages[1]) == frozenset()
        assert not matcher.is_instance_valid(usages[1])


class TestEdgeCases:
    def test_empty_pool(self):
        scenario = example1()
        assert SortedCandidateMatcher(LicensePool()).match(
            scenario.usages[0]
        ) == frozenset()

    def test_scope_mismatch(self):
        scenario = example1()
        matcher = SortedCandidateMatcher(scenario.pool)
        other = LicenseFactory(scenario.schema, content_id="OTHER", permission="play")
        foreign = other.usage(
            "LU", count=1, validity=("16/03/09", "17/03/09"), region=["india"]
        )
        assert matcher.match(foreign) == frozenset()

    def test_unknown_atom_short_circuits(self):
        scenario = example1()
        matcher = SortedCandidateMatcher(scenario.pool)
        factory = LicenseFactory(scenario.schema, content_id="K", permission="play")
        usage = factory.usage(
            "LU", count=1, validity=("16/03/09", "17/03/09"), region=["fiji"]
        )
        assert matcher.match(usage) == frozenset()

    def test_dimension_mismatch(self):
        scenario = example1()
        matcher = SortedCandidateMatcher(scenario.pool)
        one_dim = ConstraintSchema([DimensionSpec.numeric("x")])
        factory = LicenseFactory(one_dim, content_id="K", permission="play")
        with pytest.raises(DimensionMismatchError):
            matcher.match(factory.usage("LU", count=1, x=(0, 1)))


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_on_generated_workloads(self, seed):
        config = WorkloadConfig(n_licenses=14, seed=seed, n_records=0)
        generator = WorkloadGenerator(config)
        pool = generator.generate_pool()
        brute = BruteForceMatcher(pool)
        pruned = SortedCandidateMatcher(pool)
        for usage in generator.issue_stream(pool, 60):
            assert pruned.match(usage) == brute.match(usage)

    def test_query_outside_every_interval(self):
        schema = ConstraintSchema([DimensionSpec.numeric("x")])
        factory = LicenseFactory(schema, "K", "play")
        pool = LicensePool(
            [factory.redistribution("a", aggregate=1, x=(0, 10))]
        )
        matcher = SortedCandidateMatcher(pool)
        assert matcher.match(factory.usage("u", count=1, x=(20, 30))) == frozenset()
        assert matcher.match(factory.usage("u2", count=1, x=(-5, 5))) == frozenset()
