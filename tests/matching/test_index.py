"""Unit tests for the vectorized indexed matcher."""

import pytest

from repro.errors import DimensionMismatchError
from repro.licenses.license import LicenseFactory
from repro.licenses.pool import LicensePool
from repro.licenses.regions import WORLD
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.matching.index import IndexedMatcher
from repro.matching.matcher import BruteForceMatcher
from repro.workloads.scenarios import example1, figure2_pool, figure2_usages


class TestAgainstExamples:
    def test_example1_match_sets(self):
        scenario = example1()
        matcher = IndexedMatcher(scenario.pool)
        assert matcher.match(scenario.usages[0]) == frozenset({1, 2})
        assert matcher.match(scenario.usages[1]) == frozenset({2})

    def test_figure2_match_sets(self):
        matcher = IndexedMatcher(figure2_pool())
        usages = figure2_usages()
        assert matcher.match(usages[0]) == frozenset({4})
        assert matcher.match(usages[1]) == frozenset()

    def test_agrees_with_brute_force_on_example1(self):
        scenario = example1()
        indexed = IndexedMatcher(scenario.pool)
        brute = BruteForceMatcher(scenario.pool)
        for usage in scenario.usages:
            assert indexed.match(usage) == brute.match(usage)


class TestEdgeCases:
    def test_empty_pool(self):
        scenario = example1()
        matcher = IndexedMatcher(LicensePool())
        assert matcher.match(scenario.usages[0]) == frozenset()

    def test_scope_mismatch_returns_empty(self):
        scenario = example1()
        matcher = IndexedMatcher(scenario.pool)
        other = LicenseFactory(scenario.schema, content_id="OTHER", permission="play")
        foreign = other.usage(
            "LU", count=1, validity=("16/03/09", "17/03/09"), region=["india"]
        )
        assert matcher.match(foreign) == frozenset()

    def test_unknown_atom_returns_empty(self):
        # A region no pool license allows at all short-circuits to empty.
        scenario = example1()
        matcher = IndexedMatcher(scenario.pool)
        factory = LicenseFactory(scenario.schema, content_id="K", permission="play")
        usage = factory.usage(
            "LU", count=1, validity=("16/03/09", "17/03/09"), region=["australia"]
        )
        assert matcher.match(usage) == frozenset()

    def test_dimension_mismatch_raises(self):
        scenario = example1()
        matcher = IndexedMatcher(scenario.pool)
        one_dim = ConstraintSchema([DimensionSpec.numeric("x")])
        factory = LicenseFactory(one_dim, content_id="K", permission="play")
        with pytest.raises(DimensionMismatchError):
            matcher.match(factory.usage("LU", count=1, x=(0, 1)))

    def test_is_instance_valid(self):
        scenario = example1()
        matcher = IndexedMatcher(scenario.pool)
        assert matcher.is_instance_valid(scenario.usages[0])

    def test_discrete_superset_required(self):
        # Usage region {india, france} needs a license allowing BOTH.
        scenario = example1()
        matcher = IndexedMatcher(scenario.pool)
        factory = LicenseFactory(scenario.schema, content_id="K", permission="play")
        usage = factory.usage(
            "LU",
            count=1,
            validity=("16/03/09", "17/03/09"),
            region=["india", "france"],
        )
        # Only L_D^1 ([Asia, Europe]) allows both leaves.
        assert matcher.match(usage) == frozenset({1})
