"""Matching over mixed interval/discrete pools: all three matchers agree
and reject kind-mismatched queries consistently."""

import pytest

from repro.errors import DimensionMismatchError
from repro.geometry.box import Box
from repro.geometry.discrete import DiscreteSet
from repro.geometry.interval import Interval
from repro.licenses.license import LicenseFactory, UsageLicense
from repro.licenses.permission import Permission
from repro.licenses.pool import LicensePool
from repro.licenses.schema import ConstraintSchema, DimensionSpec
from repro.matching.index import IndexedMatcher
from repro.matching.matcher import BruteForceMatcher
from repro.matching.sorted_index import SortedCandidateMatcher


@pytest.fixture
def mixed_pool():
    schema = ConstraintSchema(
        [DimensionSpec.numeric("window"), DimensionSpec.categorical("device")]
    )
    factory = LicenseFactory(schema, "K", "play")
    pool = LicensePool(
        [
            factory.redistribution(
                "a", aggregate=10, window=(0, 50), device=["tv", "phone"]
            ),
            factory.redistribution(
                "b", aggregate=10, window=(25, 100), device=["phone"]
            ),
            factory.redistribution(
                "c", aggregate=10, window=(0, 100), device=["tv"]
            ),
        ]
    )
    return schema, factory, pool


ALL_MATCHERS = [BruteForceMatcher, IndexedMatcher, SortedCandidateMatcher]


@pytest.mark.parametrize("matcher_cls", ALL_MATCHERS)
class TestMixedAxes:
    def test_interval_and_discrete_both_constrain(self, mixed_pool, matcher_cls):
        _schema, factory, pool = mixed_pool
        matcher = matcher_cls(pool)
        # window (30, 40) fits a, b, c; device phone fits a, b.
        phone = factory.usage("u1", count=1, window=(30, 40), device=["phone"])
        assert matcher.match(phone) == frozenset({1, 2})
        # device tv fits a, c.
        tv = factory.usage("u2", count=1, window=(30, 40), device=["tv"])
        assert matcher.match(tv) == frozenset({1, 3})

    def test_multi_atom_query_needs_superset(self, mixed_pool, matcher_cls):
        _schema, factory, pool = mixed_pool
        matcher = matcher_cls(pool)
        both = factory.usage(
            "u", count=1, window=(30, 40), device=["tv", "phone"]
        )
        assert matcher.match(both) == frozenset({1})

    def test_unknown_device_matches_nothing(self, mixed_pool, matcher_cls):
        _schema, factory, pool = mixed_pool
        matcher = matcher_cls(pool)
        vr = factory.usage("u", count=1, window=(30, 40), device=["vr-headset"])
        assert matcher.match(vr) == frozenset()


@pytest.mark.parametrize("matcher_cls", [IndexedMatcher, SortedCandidateMatcher])
class TestKindMismatch:
    def test_swapped_axis_kinds_raise(self, mixed_pool, matcher_cls):
        _schema, _factory, pool = mixed_pool
        matcher = matcher_cls(pool)
        # Same dimensionality, wrong extent kinds (interval <-> discrete).
        swapped = UsageLicense(
            license_id="u",
            content_id="K",
            permission=Permission.PLAY,
            box=Box([DiscreteSet({"tv"}), Interval(0, 1)]),
            count=1,
        )
        with pytest.raises(DimensionMismatchError):
            matcher.match(swapped)
