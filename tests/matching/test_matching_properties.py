"""Property tests: the two matchers agree on randomized pools/queries."""

from hypothesis import given, settings, strategies as st

from repro.geometry.box import Box
from repro.geometry.interval import Interval
from repro.licenses.license import RedistributionLicense, UsageLicense
from repro.licenses.permission import Permission
from repro.licenses.pool import LicensePool
from repro.matching.index import IndexedMatcher
from repro.matching.matcher import BruteForceMatcher


@st.composite
def interval_boxes(draw, dims):
    extents = []
    for _ in range(dims):
        low = draw(st.integers(min_value=0, max_value=60))
        length = draw(st.integers(min_value=0, max_value=40))
        extents.append(Interval(low, low + length))
    return Box(extents)


@st.composite
def pools_and_queries(draw):
    dims = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=1, max_value=10))
    pool = LicensePool()
    for serial in range(1, n + 1):
        pool.add(
            RedistributionLicense(
                license_id=f"LD{serial}",
                content_id="K",
                permission=Permission.PLAY,
                box=draw(interval_boxes(dims)),
                aggregate=100,
            )
        )
    queries = [
        UsageLicense(
            license_id=f"LU{i}",
            content_id="K",
            permission=Permission.PLAY,
            box=draw(interval_boxes(dims)),
            count=1,
        )
        for i in range(draw(st.integers(min_value=1, max_value=5)))
    ]
    return pool, queries


@settings(max_examples=60, deadline=None)
@given(pools_and_queries())
def test_all_matchers_agree(pool_and_queries):
    from repro.matching.sorted_index import SortedCandidateMatcher

    pool, queries = pool_and_queries
    indexed = IndexedMatcher(pool)
    brute = BruteForceMatcher(pool)
    pruned = SortedCandidateMatcher(pool)
    for usage in queries:
        expected = brute.match(usage)
        assert indexed.match(usage) == expected
        assert pruned.match(usage) == expected


@settings(max_examples=60, deadline=None)
@given(pools_and_queries())
def test_match_set_is_mutually_overlapping(pool_and_queries):
    """Licenses of a match set all contain the query box, hence they all
    pairwise overlap -- the clique property behind Corollary 1.1 (a match
    set can never span two disconnected groups)."""
    pool, queries = pool_and_queries
    matcher = BruteForceMatcher(pool)
    for usage in queries:
        matched = sorted(matcher.match(usage))
        for position, i in enumerate(matched):
            for j in matched[position + 1:]:
                assert pool[i].box.overlaps(pool[j].box)
