"""Ablation A4: incremental (dirty-group) validation vs full revalidation.

A validation authority revalidating after every batch of issuances can
either rebuild + divide + validate from scratch (the paper's offline
pipeline) or keep per-group trees and revalidate only the groups touched
since the last pass (Theorem 2 makes the per-group verdicts independent).
This ablation measures the steady-state cost of one "revalidate after a
few records" cycle under both designs.
"""

import itertools

import pytest

from repro.analysis.tables import render_table
from repro.core.incremental import IncrementalValidator
from repro.core.validator import GroupedValidator
from repro.logstore.log import ValidationLog

N = 18
BATCH = 5  # records between revalidations


@pytest.fixture(scope="module")
def workload(wide_suite):
    return wide_suite.workload(N)


def test_batch_revalidation_cycle(benchmark, workload):
    """Rebuild-everything cycle: tree from full log + divide + validate."""
    validator = GroupedValidator.from_pool(workload.pool)
    log = ValidationLog()
    log.extend(workload.log)
    extra = list(itertools.islice(itertools.cycle(workload.log), BATCH))

    def cycle():
        for record in extra:
            log.append(record)
        return validator.validate(log)

    report = benchmark(cycle)
    assert report.equations_checked == validator.equations_required


def test_incremental_revalidation_cycle(benchmark, workload):
    """Dirty-group cycle: insert BATCH records, revalidate touched groups."""
    incremental = IncrementalValidator.from_pool(workload.pool)
    incremental.replay(workload.log)
    incremental.validate()  # prime caches
    extra = list(itertools.islice(itertools.cycle(workload.log), BATCH))

    def cycle():
        for record in extra:
            incremental.append(record)
        return incremental.validate()

    report = benchmark(cycle)
    # Only the touched groups' equations were evaluated.
    total = GroupedValidator.from_pool(workload.pool).equations_required
    assert 0 < report.equations_checked <= total


def test_incremental_matches_batch_verdict(benchmark, workload, report):
    incremental = IncrementalValidator.from_pool(workload.pool)
    batch = GroupedValidator.from_pool(workload.pool)

    def run():
        incremental.replay(workload.log)
        return incremental.validate(), batch.validate(workload.log)

    fresh, reference = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(fresh.violations) == set(reference.violations)
    report(
        "ablation_incremental",
        render_table(
            ["engine", "equations / cycle"],
            [
                ["full grouped revalidation", reference.equations_checked],
                ["incremental (all groups dirty)", fresh.equations_checked],
            ],
            title=f"Ablation A4: revalidation cost at N={N}",
        ),
    )
