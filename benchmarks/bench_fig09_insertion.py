"""Figure 9: single-record insertion time vs tree-division time D_T.

The paper's point: D_T is only a small constant multiple (3-4x in their
setup) of inserting ONE log record, and it is paid once per offline
validation versus thousands of insertions -- so the division overhead is
negligible.  Our constant differs (Python, different tree sizes) but the
"small multiple of one insertion, amortized over thousands" relationship
must hold.
"""

import pytest

from repro.analysis.experiments import render_figure9
from repro.core.validator import GroupedValidator
from repro.logstore.record import LogRecord
from repro.validation.tree import ValidationTree

POINTS = (8, 16, 30)


@pytest.mark.parametrize("n", POINTS)
def test_insert_one_record(benchmark, wide_suite, n):
    """Algorithm 1: one record into an already-populated tree."""
    workload = wide_suite.workload(n)
    tree = ValidationTree.from_log(workload.log)
    record = workload.log[0]
    benchmark(lambda: tree.insert(record))


@pytest.mark.parametrize("n", POINTS)
def test_tree_construction(benchmark, wide_suite, n):
    """C_T: building the whole tree from the log."""
    workload = wide_suite.workload(n)
    tree = benchmark(lambda: ValidationTree.from_log(workload.log))
    assert tree.node_count() > 0


def test_figure9_table(benchmark, suite, report):
    """Regenerate Figure 9 and assert the amortization argument."""
    rows = benchmark.pedantic(
        lambda: suite.figure9(insert_samples=500), rounds=1, iterations=1
    )
    report("figure09_insertion", render_figure9(rows))
    from repro.analysis.export import figure9_csv
    from benchmarks.conftest import RESULTS_DIR

    figure9_csv(rows, RESULTS_DIR / "figure09_insertion.csv")
    for row in rows:
        # D_T is a bounded multiple of one insertion...
        assert row.ratio < 2000
        # ...and far below the cost of inserting a paper-sized log
        # (630 records per license, Section 5), which is what amortizes it.
        paper_records = 630 * row.n
        assert row.division_dt < row.insert_one * paper_records
