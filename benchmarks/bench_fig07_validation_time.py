"""Figure 7: validation time -- original validation tree vs the proposed
grouped method (V_T alone and V_T + D_T).

The paper's result: the baseline's 2^N - 1 equations make its validation
time explode exponentially in N, while the grouped method tracks
Σ_k (2^{N_k} - 1) and stays flat when groups are small.  Scale note: our
pure-Python baseline is swept to N = 18 (the paper's Java sweep reaches
N = 35; both are exponential -- see EXPERIMENTS.md).
"""

import pytest

from repro.analysis.experiments import render_figure7
from repro.core.validator import GroupedValidator
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator

BASELINE_POINTS = (8, 12, 16, 18)
GROUPED_POINTS = (8, 12, 16, 18, 22, 26, 30)


@pytest.mark.parametrize("n", BASELINE_POINTS)
def test_baseline_validation(benchmark, wide_suite, n):
    """The 2^N - 1 equation baseline of [10] (Algorithm 2 on one tree)."""
    workload = wide_suite.workload(n)
    tree = ValidationTree.from_log(workload.log)
    validator = TreeValidator(workload.aggregates)
    report = benchmark(lambda: validator.validate(tree))
    assert report.equations_checked == (1 << n) - 1


@pytest.mark.parametrize("n", GROUPED_POINTS)
def test_grouped_validation(benchmark, wide_suite, n):
    """The proposed method's V_T (validation only; division done once)."""
    workload = wide_suite.workload(n)
    validator = GroupedValidator.from_pool(workload.pool)
    grouped = validator.build(workload.log)
    report = benchmark(grouped.validate)
    assert report.equations_checked == validator.equations_required


@pytest.mark.parametrize("n", GROUPED_POINTS)
def test_division_dt(benchmark, wide_suite, n):
    """D_T: group identification + tree division + index remapping.

    Division consumes its input tree, so each timed round gets a fresh
    tree from an (untimed) setup -- tree construction is C_T, not D_T.
    """
    workload = wide_suite.workload(n)
    boxes = workload.pool.boxes()
    aggregates = workload.aggregates

    def setup():
        return (ValidationTree.from_log(workload.log),), {}

    def divide(tree):
        return GroupedValidator(boxes, aggregates).divide(tree)

    grouped = benchmark.pedantic(divide, setup=setup, rounds=30, iterations=1)
    assert grouped.node_count() > 0


def test_figure7_table(benchmark, suite, report):
    """Regenerate the Figure 7 series and check the paper's shape."""
    rows = benchmark.pedantic(lambda: suite.figure7(repeats=1), rounds=1, iterations=1)
    report("figure07_validation_time", render_figure7(rows))
    from repro.analysis.charts import timing_chart
    from repro.analysis.export import figure7_csv
    from benchmarks.conftest import RESULTS_DIR

    figure7_csv(rows, RESULTS_DIR / "figure07_validation_time.csv")
    report("figure07_chart", timing_chart(rows, title="Figure 7"))
    by_n = {row.n: row for row in rows}
    # Exponential baseline: each +4 licenses multiplies time by >~4.
    assert by_n[16].baseline_vt > 8 * by_n[8].baseline_vt
    assert by_n[18].baseline_vt > by_n[12].baseline_vt * 10
    # Proposed method stays orders of magnitude below the baseline at scale.
    assert by_n[18].grouped_vt * 50 < by_n[18].baseline_vt
    # The paper: D_T becomes small relative to baseline V_T for N > 2 --
    # and even V_T + D_T beats the baseline by a wide margin at scale.
    assert by_n[18].grouped_total < by_n[18].baseline_vt / 10
