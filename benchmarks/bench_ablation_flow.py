"""Ablation A3: max-flow oracle vs equation validation.

The flow oracle answers the yes/no feasibility question in polynomial
time -- asymptotically it must beat every 2^N engine, but it cannot name
the violated sets.  This ablation measures the crossover and verifies the
verdicts always agree (the Gale-Hoffman equivalence the test suite
property-checks at small N).
"""

import pytest

from repro.analysis.tables import format_seconds, render_table
from repro.analysis.timing import time_callable
from repro.core.validator import GroupedValidator
from repro.validation.flow import FlowFeasibilityOracle
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator

POINTS = (8, 14, 18)


@pytest.mark.parametrize("n", POINTS)
def test_flow_oracle(benchmark, wide_suite, n):
    workload = wide_suite.workload(n)
    oracle = FlowFeasibilityOracle(workload.aggregates)
    counts = workload.log.counts_by_mask()
    benchmark(lambda: oracle.feasible(counts))


@pytest.mark.parametrize("n", POINTS)
def test_grouped_equations(benchmark, wide_suite, n):
    workload = wide_suite.workload(n)
    validator = GroupedValidator.from_pool(workload.pool)
    grouped = validator.build(workload.log)
    benchmark(grouped.validate)


def test_flow_agrees_with_equations(benchmark, wide_suite, report):
    rows = []

    def run():
        agreement = True
        for n in POINTS:
            workload = wide_suite.workload(n)
            counts = workload.log.counts_by_mask()
            oracle = FlowFeasibilityOracle(workload.aggregates)
            flow_time, feasible = time_callable(lambda: oracle.feasible(counts))
            tree = ValidationTree.from_log(workload.log)
            validator = TreeValidator(workload.aggregates)
            eq_time, eq_report = time_callable(lambda: validator.validate(tree))
            agreement &= feasible == eq_report.is_valid
            rows.append(
                [n, format_seconds(flow_time), format_seconds(eq_time),
                 "yes" if feasible else "no"]
            )
        return agreement

    agreement = benchmark.pedantic(run, rounds=1, iterations=1)
    assert agreement
    report(
        "ablation_flow",
        render_table(
            ["N", "flow oracle", "2^N equations", "feasible"],
            rows,
            title="Ablation A3: polynomial flow oracle vs exponential equations",
        ),
    )
