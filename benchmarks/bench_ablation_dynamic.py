"""Ablation A5: dynamic group maintenance vs batch recomputation.

Section 5.A of the paper discusses the group count evolving as licenses
are acquired.  This ablation measures maintaining the partition with the
union-find grouper (one overlap pass per arrival) against recomputing
Algorithm 3 from the adjacency matrix after every arrival.
"""

import pytest

from repro.core.dynamic import DynamicGrouper
from repro.core.grouping import form_groups
from repro.core.overlap import OverlapGraph
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

N = 35


@pytest.fixture(scope="module")
def licenses():
    config = WorkloadConfig(n_licenses=N, seed=0, n_records=0)
    return list(WorkloadGenerator(config).generate_pool())


def test_dynamic_maintenance(benchmark, licenses):
    """Union-find: add all N licenses one at a time."""

    def run():
        grouper = DynamicGrouper()
        for lic in licenses:
            grouper.add(lic)
        return grouper.group_count

    groups = benchmark(run)
    assert groups >= 1


def test_batch_recompute_each_arrival(benchmark, licenses):
    """Recompute Algorithm 3 from scratch after every arrival."""

    def run():
        boxes = []
        count = 0
        for lic in licenses:
            boxes.append(lic.box)
            count = form_groups(OverlapGraph.from_boxes(boxes)).count
        return count

    groups = benchmark(run)
    assert groups >= 1


def test_both_agree(benchmark, licenses):
    def run():
        grouper = DynamicGrouper()
        for lic in licenses:
            grouper.add(lic)
        boxes = [lic.box for lic in licenses]
        return grouper.structure(), form_groups(OverlapGraph.from_boxes(boxes))

    dynamic, batch = benchmark.pedantic(run, rounds=1, iterations=1)
    assert dynamic == batch
