"""Figure 10: storage -- original validation tree vs divided trees.

The paper's claim: division creates no new nodes except the g group roots,
so storage is essentially unchanged.  We regenerate the series and assert
the exact node accounting, and benchmark the storage-metric computation
itself (a full tree walk).
"""

import pytest

from repro.analysis.experiments import render_figure10
from repro.analysis.storage import tree_storage
from repro.validation.tree import ValidationTree

POINTS = (8, 16, 30)


@pytest.mark.parametrize("n", POINTS)
def test_storage_walk(benchmark, wide_suite, n):
    """Cost of the node-count walk used by the storage metric."""
    workload = wide_suite.workload(n)
    tree = ValidationTree.from_log(workload.log)
    stats = benchmark(lambda: tree_storage(tree))
    assert stats.nodes > 0


def test_figure10_table(benchmark, wide_suite, report):
    """Regenerate Figure 10 and assert the paper's storage claim."""
    rows = benchmark.pedantic(wide_suite.figure10, rounds=1, iterations=1)
    report("figure10_storage", render_figure10(rows))
    from repro.analysis.export import figure10_csv
    from benchmarks.conftest import RESULTS_DIR

    figure10_csv(rows, RESULTS_DIR / "figure10_storage.csv")
    from repro.analysis.storage import NODE_COST_BYTES

    for row in rows:
        # Identical shared nodes; only the g-1 extra roots differ.
        assert row.divided.nodes == row.original.nodes
        extra_roots = row.divided.roots - row.original.roots
        assert 0 <= extra_roots < 10
        # The byte delta is exactly those extra roots...
        delta = row.divided.model_bytes - row.original.model_bytes
        assert delta == extra_roots * NODE_COST_BYTES
        # ...which is negligible once trees hold a realistic log volume.
        if row.n >= 8:
            assert row.divided.model_bytes <= row.original.model_bytes * 1.10
