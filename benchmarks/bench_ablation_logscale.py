"""Ablation A7: validation cost vs log volume.

The equation count depends only on N, but each tree traversal's cost
scales with the number of tree nodes, which grows with the number of
*distinct* logged sets.  This ablation sweeps the record volume at fixed
N and measures construction time (C_T) and grouped validation time (V_T),
confirming that V_T saturates once the distinct-set population stops
growing -- the reason offline validation stays cheap even for
paper-sized (630·N-record) logs.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.validator import GroupedValidator
from repro.validation.tree import ValidationTree
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

N = 16
VOLUMES = (200, 2000, 10000)


@pytest.fixture(scope="module")
def workloads():
    out = {}
    for volume in VOLUMES:
        config = WorkloadConfig(n_licenses=N, seed=0, n_records=volume)
        out[volume] = WorkloadGenerator(config).generate()
    return out


@pytest.mark.parametrize("volume", VOLUMES)
def test_tree_construction_scales_with_records(benchmark, workloads, volume):
    workload = workloads[volume]
    tree = benchmark(lambda: ValidationTree.from_log(workload.log))
    assert tree.node_count() > 0


@pytest.mark.parametrize("volume", VOLUMES)
def test_grouped_validation_vs_volume(benchmark, workloads, volume):
    workload = workloads[volume]
    validator = GroupedValidator.from_pool(workload.pool)
    grouped = validator.build(workload.log)
    report = benchmark(grouped.validate)
    assert report.equations_checked == validator.equations_required


def test_volume_report(benchmark, workloads, report):
    def collect():
        rows = []
        for volume in VOLUMES:
            workload = workloads[volume]
            tree = ValidationTree.from_log(workload.log)
            rows.append(
                [
                    volume,
                    workload.log.distinct_sets,
                    tree.node_count(),
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "ablation_logscale",
        render_table(
            ["records", "distinct sets", "tree nodes"],
            rows,
            title=f"Ablation A7: tree size vs log volume at N={N}",
        ),
    )
    # Distinct sets (and hence per-equation traversal cost) grow far
    # slower than records: the log dedups into the subset lattice.
    assert rows[-1][1] < rows[-1][0] / 10
