"""Dense headroom kernel vs validation-tree walk: the perf headline.

Three measurements back the kernel's claim sheet, all written to
``BENCH_kernel.json`` for the CI gate:

* **Admission headroom latency** -- per-probe p50/p99 for the tree
  walk's superset enumeration vs the kernel's single ``H`` lookup, at
  paper-scale group sizes.  The gated headline: dense admission p99 is
  >= 10x lower at ``N_k >= 14`` (in practice it is orders of magnitude
  lower; 10x is the regression floor, not the observation).
* **Update cost vs |T|** -- cone masks touched per insert is exactly
  ``2^{N_k - |T|}`` (deterministic, gated exactly), so *larger* matched
  sets are *cheaper* to absorb -- the inverse of the tree walk's cost
  shape.
* **Crossover vs N_k** -- end-to-end insert+revalidate streams for both
  engines across group sizes, with byte-identical verdicts asserted and
  the verdict-parity flag gated exactly.

Set ``REPRO_BENCH_SMOKE=1`` to shrink probe counts for CI smoke runs
(the group sizes stay the same: the quantities gated exactly are
deterministic in N, and the 10x floor needs paper scale to be
meaningful).
"""

import os
import time

from repro.core.grouping import GroupStructure
from repro.core.incremental import GroupSlice
from repro.core.kernel import KERNEL_DENSE, KERNEL_TREE, DenseHeadroomKernel
from repro.validation.capacity import headroom as tree_headroom
from repro.validation.tree import ValidationTree
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Group sizes for the admission-latency comparison, with per-size probe
#: counts (each probe timed individually).  14 is the paper scale the
#: acceptance floor is pinned at; 18 shows the gap widening.  Probe
#: counts shrink as N grows because the *tree* side's superset
#: enumeration is exponential in N -- the dense side would happily take
#: millions.
ADMISSION_PROBES = (
    {10: 200, 14: 200} if SMOKE else {10: 1000, 14: 500, 18: 60}
)
#: Records preloaded before probing (admission against live state).
PRELOAD = 40
#: Fixed N for the update-cost sweep; |T| sweeps 1..N.
UPDATE_N = 12
UPDATE_SET_SIZES = (1, 2, 4, 8, 12)
#: Group sizes for the end-to-end crossover stream.
CROSSOVER_SIZES = (4, 8, 12) if SMOKE else (4, 8, 12, 16)
CROSSOVER_STREAM = 120 if SMOKE else 400
SEED = 0


def _rng_state(seed):
    """Tiny deterministic LCG so probe sets do not depend on stdlib
    ``random`` (keeps the gated deterministic quantities bit-stable)."""
    state = seed * 2654435761 % (1 << 32)
    while True:
        state = (1103515245 * state + 12345) % (1 << 31)
        yield state


def _member_sets(n, count, seed, max_size=3):
    """Deterministic stream of small member sets over a size-n group
    (small sets = the expensive case for the tree walk's cone)."""
    rng = _rng_state(seed)
    sets = []
    for _ in range(count):
        size = 1 + next(rng) % max_size
        members = sorted({1 + next(rng) % n for _ in range(size)})
        sets.append(tuple(members))
    return sets


def _mask(members):
    mask = 0
    for member in members:
        mask |= 1 << (member - 1)
    return mask


def _aggregates(n, seed):
    rng = _rng_state(seed + 17)
    return [300 + next(rng) % 900 for _ in range(n)]


def _percentiles(samples):
    ordered = sorted(samples)
    def pick(q):
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]
    return pick(0.50), pick(0.99)


def test_admission_headroom_latency(report, kernel_bench_json):
    """Single H-lookup admission vs superset-enumerating tree walk."""
    sections = {}
    lines = [
        f"admission headroom latency: dense H-lookup vs tree walk "
        f"({PRELOAD} preloaded records)",
        "",
        "  N_k | tree p50   | tree p99   | dense p50  | dense p99  | p99 speedup",
        "  ----+------------+------------+------------+------------+------------",
    ]
    for n, probe_count in ADMISSION_PROBES.items():
        aggregates = _aggregates(n, SEED)
        kernel = DenseHeadroomKernel(aggregates)
        tree = ValidationTree()
        for members in _member_sets(n, PRELOAD, SEED + 1):
            kernel.insert(_mask(members), 2)
            tree.insert_set(members, 2)
        probes = _member_sets(n, probe_count, SEED + 2)

        tree_samples = []
        dense_samples = []
        expected = []
        for members in probes:
            mask = _mask(members)
            started = time.perf_counter()
            value = tree_headroom(tree, aggregates, mask)
            tree_samples.append(time.perf_counter() - started)
            expected.append(value)
        for position, members in enumerate(probes):
            mask = _mask(members)
            started = time.perf_counter()
            value = kernel.headroom(mask)
            dense_samples.append(time.perf_counter() - started)
            assert value == expected[position], (
                f"headroom diverged at N={n}, probe {members}"
            )

        tree_p50, tree_p99 = _percentiles(tree_samples)
        dense_p50, dense_p99 = _percentiles(dense_samples)
        speedup_p99 = tree_p99 / dense_p99
        lines.append(
            f"  {n:3d} | {tree_p50 * 1e6:7.1f} us | {tree_p99 * 1e6:7.1f} us"
            f" | {dense_p50 * 1e6:7.1f} us | {dense_p99 * 1e6:7.1f} us"
            f" | {speedup_p99:9.0f}x"
        )
        # The acceptance floor: >= 10x lower admission p99 at paper
        # scale.  Observed ratios are far higher; 10x only trips when
        # the fast path stops being a table lookup.
        if n >= 14:
            assert speedup_p99 >= 10, (
                f"dense admission p99 should be >= 10x lower at N={n}, "
                f"got {speedup_p99:.1f}x"
            )
        sections[str(n)] = {
            "probes": probe_count,
            "tree_p50": tree_p50,
            "tree_p99": tree_p99,
            "dense_p50": dense_p50,
            "dense_p99": dense_p99,
            "speedup_p99": speedup_p99,
        }
    report("kernel_admission_latency", "\n".join(lines))
    kernel_bench_json(
        "kernel_admission", {"smoke": SMOKE, "sizes": sections}
    )


def test_update_cost_vs_set_size(report, kernel_bench_json):
    """Cone updates shrink as 2^(N-|T|): big sets are cheap inserts."""
    aggregates = _aggregates(UPDATE_N, SEED)
    lines = [
        f"incremental update cost vs matched-set size (N_k = {UPDATE_N})",
        "",
        "  |T| | cone masks touched | predicted 2^(N-|T|)",
        "  ----+--------------------+--------------------",
    ]
    sections = {}
    for set_size in UPDATE_SET_SIZES:
        kernel = DenseHeadroomKernel(aggregates)
        members = tuple(range(1, set_size + 1))
        touched = kernel.insert(_mask(members), 1)
        predicted = 1 << (UPDATE_N - set_size)
        assert touched == predicted, (
            f"cone size off at |T|={set_size}: {touched} != {predicted}"
        )
        kernel.check_invariants()
        lines.append(f"  {set_size:3d} | {touched:18d} | {predicted:18d}")
        sections[str(set_size)] = {"masks_touched": touched}
    report("kernel_update_cost", "\n".join(lines))
    kernel_bench_json(
        "kernel_update_cost",
        {"smoke": SMOKE, "n": UPDATE_N, "set_sizes": sections},
    )


def test_crossover_vs_group_size(report, kernel_bench_json):
    """End-to-end insert+revalidate streams: identical verdicts, the
    dense engine pulling ahead as N_k grows."""
    lines = [
        f"end-to-end crossover: {CROSSOVER_STREAM}-record streams, "
        f"revalidate every 8 records",
        "",
        "  N_k | tree total | dense total | speedup | verdicts",
        "  ----+------------+-------------+---------+---------",
    ]
    sections = {}
    for n in CROSSOVER_SIZES:
        aggregates = _aggregates(n, SEED + n)
        structure = GroupStructure((frozenset(range(1, n + 1)),), n)
        stream = _member_sets(n, CROSSOVER_STREAM, SEED + 3)
        totals = {}
        verdict_streams = {}
        for kernel_name in (KERNEL_TREE, KERNEL_DENSE):
            gslice = GroupSlice(structure, aggregates, 0, kernel=kernel_name)
            verdicts = []
            started = time.perf_counter()
            for position, members in enumerate(stream):
                slack = gslice.headroom(members)
                if slack >= 2:
                    gslice.insert(members, 2)
                    verdicts.append("A")
                else:
                    verdicts.append("r")
                if position % 8 == 7:
                    report_obj, _ = gslice.revalidate()
                    verdicts.append("V" if report_obj.is_valid else "x")
            totals[kernel_name] = time.perf_counter() - started
            verdict_streams[kernel_name] = "".join(verdicts)
        identical = (
            verdict_streams[KERNEL_TREE] == verdict_streams[KERNEL_DENSE]
        )
        assert identical, f"verdict streams diverged at N={n}"
        speedup = totals[KERNEL_TREE] / totals[KERNEL_DENSE]
        lines.append(
            f"  {n:3d} | {totals[KERNEL_TREE] * 1e3:7.2f} ms "
            f"| {totals[KERNEL_DENSE] * 1e3:8.2f} ms "
            f"| {speedup:6.1f}x | identical"
        )
        sections[str(n)] = {
            "tree_s": totals[KERNEL_TREE],
            "dense_s": totals[KERNEL_DENSE],
            "speedup": speedup,
            "identical": identical,
        }
    report("kernel_crossover", "\n".join(lines))
    kernel_bench_json(
        "kernel_crossover",
        {"smoke": SMOKE, "stream": CROSSOVER_STREAM, "sizes": sections},
    )
