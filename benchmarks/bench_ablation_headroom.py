"""Ablation A6: group-restricted vs full-universe headroom queries.

The online equation policy issues one headroom query per incoming
license: ``min over supersets T ⊇ S of (A[T] - C⟨T⟩)``.  Without the
paper's grouping the enumeration spans ``2^(N - |S|)`` supersets; with it
(Theorem 2) only ``2^(N_g - |S|)`` inside the set's own group.  This is
the *online* payoff of the geometric grouping, complementary to the
offline Figure 7 result.
"""

import pytest

from repro.core.validator import GroupedValidator
from repro.validation.bitset import mask_from_indexes
from repro.validation.capacity import headroom
from repro.validation.tree import ValidationTree

N = 20


@pytest.fixture(scope="module")
def setup(wide_suite):
    # Use the N=22 workload from the shared suite (above baseline cap).
    workload = wide_suite.workload(22)
    validator = GroupedValidator.from_pool(workload.pool)
    tree = ValidationTree.from_log(workload.log)
    # A target set: the first logged set (guaranteed within one group).
    target_set = next(iter(workload.log.counts_by_set()))
    target_mask = mask_from_indexes(target_set)
    group_id = validator.structure.group_of(min(target_set))
    group_mask = validator.structure.masks()[group_id]
    return workload, validator, tree, target_mask, group_mask


def test_headroom_full_universe(benchmark, setup):
    workload, _validator, tree, target_mask, _group_mask = setup
    aggregates = workload.aggregates
    result = benchmark(lambda: headroom(tree, aggregates, target_mask))
    assert result >= 0


def test_headroom_group_restricted(benchmark, setup):
    workload, _validator, tree, target_mask, group_mask = setup
    aggregates = workload.aggregates
    result = benchmark(
        lambda: headroom(tree, aggregates, target_mask, universe_mask=group_mask)
    )
    assert result >= 0


def test_restriction_preserves_answer(benchmark, setup):
    workload, _validator, tree, target_mask, group_mask = setup
    aggregates = workload.aggregates

    def both():
        return (
            headroom(tree, aggregates, target_mask),
            headroom(tree, aggregates, target_mask, universe_mask=group_mask),
        )

    full, restricted = benchmark.pedantic(both, rounds=1, iterations=1)
    assert full == restricted  # Theorem 2: cross-group equations never bind
