"""Shared benchmark fixtures.

Every figure benchmark gets a session-scoped :class:`ExperimentSuite` so
workloads are generated once, plus a ``report`` helper that writes each
regenerated figure table both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the artifacts persist across runs.

With ``--record-runs [DIR]`` (or ``REPRO_BENCH_RECORD=1``) the session
also appends one :class:`~repro.obs.runs.record.RunRecord` to the
persistent run registry (default ``benchmarks/runs/``): every rendered
results table rides along as an artifact and every ``BENCH_*.json``
section as gated data, so ``repro report`` can regenerate the text
summaries and the bench gate can attribute regressions across sessions.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentSuite
from repro.obs.runs import RunRegistry, build_bench_record

#: Sweep used by the timing figures.  The 2^N baseline is exponential in
#: pure Python, so it is swept to N=18 (≈1 s/run) while the grouped method
#: continues to N=30 -- see EXPERIMENTS.md for the scale note.
TIMED_SWEEP = (4, 8, 12, 16, 18)
GROUPED_ONLY_SWEEP = (22, 26, 30)
RESULTS_DIR = Path(__file__).parent / "results"
#: Machine-readable service benchmark results, written at the repo root so
#: CI and downstream tooling can diff throughput/overhead without parsing
#: the human-oriented tables.
BENCH_JSON_PATH = Path(__file__).parent.parent / "BENCH_service.json"
#: Machine-readable dense-kernel benchmark results (same merge protocol,
#: separate file so the kernel gate can run without the service sweep).
BENCH_KERNEL_JSON_PATH = Path(__file__).parent.parent / "BENCH_kernel.json"
#: Default persistent run-registry directory (``repro report`` reads it).
RUNS_DIR = Path(__file__).parent / "runs"


def pytest_addoption(parser):
    parser.addoption(
        "--record-runs",
        nargs="?",
        const=str(RUNS_DIR),
        default=None,
        metavar="DIR",
        help="append this benchmark session to the persistent run "
             f"registry (default DIR: {RUNS_DIR})",
    )


def _record_dir(config) -> "str | None":
    """Resolve the registry target from the option or the environment."""
    target = config.getoption("--record-runs", default=None)
    if target:
        return str(target)
    if os.environ.get("REPRO_BENCH_RECORD"):
        return os.environ.get("REPRO_BENCH_RECORD_DIR", str(RUNS_DIR))
    return None


@pytest.fixture(scope="session")
def run_sink(request):
    """Session accumulator feeding the run registry.

    ``report`` and the JSON recorders drop their outputs here; at
    teardown (after both have flushed, since they depend on this
    fixture) the session becomes one ``bench`` RunRecord -- if and only
    if recording was requested.
    """
    sink = {"artifacts": {}, "bench": {}}
    yield sink
    target = _record_dir(request.config)
    if not target or not (sink["artifacts"] or sink["bench"]):
        return
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    registry = RunRegistry(target)
    record = registry.append(
        build_bench_record(
            registry,
            sink["bench"],
            sink["artifacts"],
            config={"smoke": smoke},
            label=os.environ.get(
                "REPRO_BENCH_RECORD_LABEL", "smoke" if smoke else "full"
            ),
        )
    )
    print(f"\nrecorded {record.run_id} in {registry.path}")


@pytest.fixture(scope="session")
def suite():
    """Workload-cached experiment suite over the timed sweep."""
    return ExperimentSuite(
        n_values=TIMED_SWEEP, seed=0, records_per_license=60, baseline_cap=18
    )


@pytest.fixture(scope="session")
def wide_suite():
    """Suite including grouped-only N values beyond the baseline cap."""
    return ExperimentSuite(
        n_values=TIMED_SWEEP + GROUPED_ONLY_SWEEP,
        seed=0,
        records_per_license=60,
        baseline_cap=18,
    )


@pytest.fixture(scope="session")
def report(run_sink):
    """Return a callable persisting + printing a figure table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        run_sink["artifacts"][name] = text + "\n"
        print(f"\n{text}\n")

    return _report


def _json_recorder(path: Path, run_sink):
    """Session-scoped section recorder merging into ``path`` at teardown.

    Sections accumulate over the session and are merged into any existing
    file, so running a single benchmark file refreshes its own sections
    without clobbering the others'.  Each section is also mirrored into
    the run sink so a recorded session carries its gated data.
    """
    sections = {}

    def _record(name: str, payload) -> None:
        sections[name] = payload
        run_sink["bench"][name] = payload

    yield _record

    if not sections:
        return
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            merged = {}
    merged.update(sections)
    path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def bench_json(run_sink):
    """Return a callable recording one ``BENCH_service.json`` section."""
    yield from _json_recorder(BENCH_JSON_PATH, run_sink)


@pytest.fixture(scope="session")
def kernel_bench_json(run_sink):
    """Return a callable recording one ``BENCH_kernel.json`` section."""
    yield from _json_recorder(BENCH_KERNEL_JSON_PATH, run_sink)
