"""Shared benchmark fixtures.

Every figure benchmark gets a session-scoped :class:`ExperimentSuite` so
workloads are generated once, plus a ``report`` helper that writes each
regenerated figure table both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the artifacts persist across runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentSuite

#: Sweep used by the timing figures.  The 2^N baseline is exponential in
#: pure Python, so it is swept to N=18 (≈1 s/run) while the grouped method
#: continues to N=30 -- see EXPERIMENTS.md for the scale note.
TIMED_SWEEP = (4, 8, 12, 16, 18)
GROUPED_ONLY_SWEEP = (22, 26, 30)
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite():
    """Workload-cached experiment suite over the timed sweep."""
    return ExperimentSuite(
        n_values=TIMED_SWEEP, seed=0, records_per_license=60, baseline_cap=18
    )


@pytest.fixture(scope="session")
def wide_suite():
    """Suite including grouped-only N values beyond the baseline cap."""
    return ExperimentSuite(
        n_values=TIMED_SWEEP + GROUPED_ONLY_SWEEP,
        seed=0,
        records_per_license=60,
        baseline_cap=18,
    )


@pytest.fixture(scope="session")
def report():
    """Return a callable persisting + printing a figure table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _report
