"""Shared benchmark fixtures.

Every figure benchmark gets a session-scoped :class:`ExperimentSuite` so
workloads are generated once, plus a ``report`` helper that writes each
regenerated figure table both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the artifacts persist across runs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentSuite

#: Sweep used by the timing figures.  The 2^N baseline is exponential in
#: pure Python, so it is swept to N=18 (≈1 s/run) while the grouped method
#: continues to N=30 -- see EXPERIMENTS.md for the scale note.
TIMED_SWEEP = (4, 8, 12, 16, 18)
GROUPED_ONLY_SWEEP = (22, 26, 30)
RESULTS_DIR = Path(__file__).parent / "results"
#: Machine-readable service benchmark results, written at the repo root so
#: CI and downstream tooling can diff throughput/overhead without parsing
#: the human-oriented tables.
BENCH_JSON_PATH = Path(__file__).parent.parent / "BENCH_service.json"
#: Machine-readable dense-kernel benchmark results (same merge protocol,
#: separate file so the kernel gate can run without the service sweep).
BENCH_KERNEL_JSON_PATH = Path(__file__).parent.parent / "BENCH_kernel.json"


@pytest.fixture(scope="session")
def suite():
    """Workload-cached experiment suite over the timed sweep."""
    return ExperimentSuite(
        n_values=TIMED_SWEEP, seed=0, records_per_license=60, baseline_cap=18
    )


@pytest.fixture(scope="session")
def wide_suite():
    """Suite including grouped-only N values beyond the baseline cap."""
    return ExperimentSuite(
        n_values=TIMED_SWEEP + GROUPED_ONLY_SWEEP,
        seed=0,
        records_per_license=60,
        baseline_cap=18,
    )


@pytest.fixture(scope="session")
def report():
    """Return a callable persisting + printing a figure table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _report


def _json_recorder(path: Path):
    """Session-scoped section recorder merging into ``path`` at teardown.

    Sections accumulate over the session and are merged into any existing
    file, so running a single benchmark file refreshes its own sections
    without clobbering the others'.
    """
    sections = {}

    def _record(name: str, payload) -> None:
        sections[name] = payload

    yield _record

    if not sections:
        return
    merged = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            merged = {}
    merged.update(sections)
    path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="session")
def bench_json():
    """Return a callable recording one ``BENCH_service.json`` section."""
    yield from _json_recorder(BENCH_JSON_PATH)


@pytest.fixture(scope="session")
def kernel_bench_json():
    """Return a callable recording one ``BENCH_kernel.json`` section."""
    yield from _json_recorder(BENCH_KERNEL_JSON_PATH)
