"""Figure 8: theoretical (Eq. 3) vs experimental gain.

The paper observes the experimental gain always meets or exceeds the
theoretical equation-count ratio, because dividing the tree also removes
redundant traversal work inside each equation.  We regenerate the series
and assert that relationship at the scale points where timing noise is
negligible.
"""

import math

import pytest

from repro.analysis.experiments import render_figure8
from repro.core.gain import theoretical_gain
from repro.core.validator import GroupedValidator


@pytest.mark.parametrize("n", (12, 18, 30))
def test_gain_computation(benchmark, wide_suite, n):
    """Eq. 3 evaluation cost (trivial -- structure analysis dominates)."""
    workload = wide_suite.workload(n)
    validator = GroupedValidator.from_pool(workload.pool)
    gain = benchmark(lambda: theoretical_gain(validator.structure.sizes))
    assert gain >= 1.0


def test_figure8_table(benchmark, suite, report):
    """Regenerate the Figure 8 series (reusing a fresh Figure 7 run)."""

    def run():
        fig7 = suite.figure7(repeats=1)
        return suite.figure8(fig7)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("figure08_gain", render_figure8(rows))
    from repro.analysis.export import figure8_csv
    from benchmarks.conftest import RESULTS_DIR

    figure8_csv(rows, RESULTS_DIR / "figure08_gain.csv")
    for row in rows:
        assert row.theoretical_gain >= 1.0
        if math.isnan(row.experimental_gain):
            continue
        # At meaningful scale the experimental gain should meet or exceed
        # the theoretical ratio (paper's observation); allow a noise
        # factor of 2 at tiny N where runs are microseconds.
        if row.n >= 12:
            assert row.experimental_gain >= row.theoretical_gain / 2
    large = [row for row in rows if row.n >= 16 and not math.isnan(row.experimental_gain)]
    assert any(row.experimental_gain >= row.theoretical_gain for row in large), (
        "at scale, experimental gain should reach the theoretical gain"
    )
