"""Ablation A2: instance matching -- brute force vs vectorized index.

Instance matching runs once per issued license (tens of thousands of times
per experiment), so its constant matters for workload generation even
though it is outside the paper's timed region.
"""

import pytest

from repro.matching.index import IndexedMatcher
from repro.matching.matcher import BruteForceMatcher
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

N = 35
QUERIES = 200


@pytest.fixture(scope="module")
def pool_and_queries():
    generator = WorkloadGenerator(WorkloadConfig(n_licenses=N, seed=0, n_records=0))
    pool = generator.generate_pool()
    queries = list(generator.issue_stream(pool, QUERIES))
    return pool, queries


def test_matching_brute_force(benchmark, pool_and_queries):
    pool, queries = pool_and_queries
    matcher = BruteForceMatcher(pool)
    results = benchmark(lambda: [matcher.match(q) for q in queries])
    assert all(results)


def test_matching_indexed(benchmark, pool_and_queries):
    pool, queries = pool_and_queries
    matcher = IndexedMatcher(pool)
    results = benchmark(lambda: [matcher.match(q) for q in queries])
    assert all(results)


def test_matching_sorted_candidates(benchmark, pool_and_queries):
    from repro.matching.sorted_index import SortedCandidateMatcher

    pool, queries = pool_and_queries
    matcher = SortedCandidateMatcher(pool)
    results = benchmark(lambda: [matcher.match(q) for q in queries])
    assert all(results)


def test_matchers_agree(benchmark, pool_and_queries):
    from repro.matching.sorted_index import SortedCandidateMatcher

    pool, queries = pool_and_queries
    brute = BruteForceMatcher(pool)
    indexed = IndexedMatcher(pool)
    pruned = SortedCandidateMatcher(pool)

    def compare():
        return [
            (brute.match(q), indexed.match(q), pruned.match(q)) for q in queries
        ]

    triples = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert all(a == b == c for a, b, c in triples)
