"""Observability overhead: disabled instrumentation must be ~free.

The tracing/instrumentation hooks added to the validation hot path
(``tree_validator``, ``grouped_zeta``, ``incremental``, the service)
all follow the same pattern: the instrumented code only runs when an
``Instrumentation``/``Tracer`` object is actually passed; with the
default ``None``, the original code path executes behind a single
``is None`` branch.  This benchmark pins that claim down:

* **validator micro-bench** -- ``TreeValidator.validate`` called
  the legacy way (no keyword at all) vs. with ``instrumentation=None``.
  Both must take the same time within a generous noise margin; this is
  the per-call cost of the hook's existence.
* **service macro-bench** -- one full :class:`ValidationService` run with
  ``tracer=None`` vs. with a live :class:`Tracer` + span recording.
  Reports the *enabled* overhead too (informational), and re-asserts the
  byte-identical-verdicts guarantee with tracing on.

Minimum-of-repeats timing throughout; margins are deliberately loose so
scheduler noise cannot flake CI (the real disabled overhead is a branch
and a default-argument load, far below 1%).

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import os
import time

from repro.obs.monitor import Monitor
from repro.obs.trace import SamplingConfig, Tracer
from repro.service import ServiceConfig, ValidationService
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

N_LICENSES = 32 if SMOKE else 64
TARGET_GROUPS = 8
STREAM = 400 if SMOKE else 1600
SEED = 0
REPEATS = 3 if SMOKE else 5
#: Disabled-path overhead ceiling.  The claim is "under 5%" and quiet-
#: machine runs measure ~1.00x, but wall-clock on this shared single
#: core is noisy even with interleaved min-of-repeats, so the hard
#: assertion leaves a noise allowance on top of the 5% bar (the table
#: reports the actual ratio either way).
DISABLED_MARGIN = 1.25 if SMOKE else 1.10


def _workload():
    config = WorkloadConfig(
        n_licenses=N_LICENSES,
        seed=SEED,
        n_records=0,
        target_groups=TARGET_GROUPS,
        aggregate_range=(400, 1200),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = list(generator.issue_stream(pool, STREAM))
    return pool, stream


def _time_min(fn, repeats=REPEATS):
    """Minimum wall time of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _time_min_interleaved(fns, repeats=REPEATS):
    """Minimum wall time per function, repeats interleaved A,B,A,B,...

    Interleaving means a frequency ramp, page-cache warm-up, or noisy
    neighbour hits both variants symmetrically instead of biasing
    whichever happened to run second.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            started = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - started)
    return best


def _service_run(pool, stream, tracer, monitor=None):
    service = ValidationService(
        pool,
        ServiceConfig(shards=4, batch_size=32, queue_capacity=512),
        tracer=tracer,
        monitor=monitor,
    )
    outcomes = service.process(stream)
    service.close()
    return outcomes


def test_disabled_validator_overhead(report, bench_json):
    """``instrumentation=None`` costs one branch on the validator path."""
    n = 12 if SMOKE else 14
    tree = ValidationTree()
    for i in range(n):
        # Pairs keep the tree non-trivial (internal nodes on every path).
        pair = tuple(sorted({i + 1, ((i + 1) % n) + 1}))
        tree.insert_set(pair, (i * 131) % 97)
    validator = TreeValidator([5000] * n)
    calls = 20 if SMOKE else 40

    def legacy():
        for _ in range(calls):
            validator.validate(tree)

    def disabled():
        for _ in range(calls):
            validator.validate(tree, instrumentation=None)

    # Warm-up so neither variant pays first-touch costs inside a timing.
    legacy()
    disabled()
    legacy_s, disabled_s = _time_min_interleaved(
        [legacy, disabled], repeats=2 * REPEATS
    )
    ratio = disabled_s / legacy_s
    lines = [
        f"validator hook overhead (N={n}, {calls} full passes per timing, "
        f"min of {REPEATS})",
        "",
        f"legacy call:              {legacy_s * 1e3:8.3f} ms",
        f"instrumentation=None:     {disabled_s * 1e3:8.3f} ms",
        f"ratio:                    {ratio:8.3f}x  (ceiling {DISABLED_MARGIN}x)",
    ]
    report("obs_overhead_validator", "\n".join(lines))
    bench_json(
        "obs_overhead_validator",
        {
            "smoke": SMOKE,
            "n": n,
            "legacy_s": legacy_s,
            "disabled_s": disabled_s,
            "ratio": ratio,
        },
    )
    assert ratio < DISABLED_MARGIN, (
        f"instrumentation=None should be free, measured {ratio:.3f}x"
    )


def test_disabled_service_overhead(report, bench_json):
    """Service with ``tracer=None`` vs. full tracing; verdicts identical."""
    pool, stream = _workload()

    # Warm-up run so import costs / allocator growth hit neither timing.
    baseline_outcomes = _service_run(pool, stream, tracer=None)

    disabled_s = _time_min(lambda: _service_run(pool, stream, tracer=None))

    tracers = []

    def traced():
        tracer = Tracer(SamplingConfig(rate=1.0))
        tracers.append(tracer)
        return _service_run(pool, stream, tracer)

    traced_outcomes = traced()
    enabled_s = _time_min(traced)

    # The hard guarantee: tracing must never change a verdict.
    assert [o.accepted for o in traced_outcomes] == [
        o.accepted for o in baseline_outcomes
    ], "tracing changed the verdict stream"
    assert [o.rejection_reason for o in traced_outcomes] == [
        o.rejection_reason for o in baseline_outcomes
    ], "tracing changed rejection reasons"

    enabled_ratio = enabled_s / disabled_s
    spans = len(tracers[-1].records())
    lines = [
        f"service tracing overhead ({STREAM} requests, 4 shards, batch=32, "
        f"min of {REPEATS})",
        "",
        f"tracer=None:   {disabled_s * 1e3:8.1f} ms",
        f"tracer on:     {enabled_s * 1e3:8.1f} ms  ({spans} spans/run)",
        f"enabled cost:  {enabled_ratio:8.3f}x",
        "",
        "verdict stream byte-identical with tracing on/off: yes",
    ]
    report("obs_overhead_service", "\n".join(lines))
    bench_json(
        "obs_overhead_service",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "enabled_ratio": enabled_ratio,
            "spans_per_run": spans,
        },
    )
    # Informational bound only: even full tracing should stay within a
    # small constant factor of the untraced run on this workload.
    assert enabled_ratio < 3.0, (
        f"full tracing unexpectedly expensive: {enabled_ratio:.2f}x"
    )


def test_monitor_overhead(report, bench_json):
    """Service with ``monitor=None`` vs. a live monitor ticking per drain.

    Same contract as tracing: the ``monitor=None`` hot path is one ``is
    None`` branch (covered by the disabled-margin assertion against the
    plain legacy run), a live monitor is drain-frequency work -- not
    per-request -- so even its enabled cost stays modest, and verdict
    streams are byte-identical either way.
    """
    pool, stream = _workload()

    baseline_outcomes = _service_run(pool, stream, tracer=None)

    def plain():
        return _service_run(pool, stream, tracer=None)

    def disabled():
        return _service_run(pool, stream, tracer=None, monitor=None)

    monitors = []

    def monitored():
        monitor = Monitor()
        monitors.append(monitor)
        return _service_run(pool, stream, tracer=None, monitor=monitor)

    monitored_outcomes = monitored()
    assert [o.accepted for o in monitored_outcomes] == [
        o.accepted for o in baseline_outcomes
    ], "monitoring changed the verdict stream"
    assert [o.rejection_reason for o in monitored_outcomes] == [
        o.rejection_reason for o in baseline_outcomes
    ], "monitoring changed rejection reasons"

    plain_s, disabled_s = _time_min_interleaved(
        [plain, disabled], repeats=2 * REPEATS
    )
    monitored_s = _time_min(monitored)
    disabled_ratio = disabled_s / plain_s
    monitored_ratio = monitored_s / disabled_s
    ticks = monitors[-1].ticks
    lines = [
        f"service monitoring overhead ({STREAM} requests, 4 shards, "
        f"batch=32, min of {REPEATS})",
        "",
        f"no monitor kwarg: {plain_s * 1e3:8.1f} ms",
        f"monitor=None:     {disabled_s * 1e3:8.1f} ms  "
        f"({disabled_ratio:.3f}x, ceiling {DISABLED_MARGIN}x)",
        f"live monitor:     {monitored_s * 1e3:8.1f} ms  "
        f"({monitored_ratio:.3f}x, {ticks} tick(s)/run)",
        "",
        "verdict stream byte-identical with monitoring on/off: yes",
    ]
    report("obs_overhead_monitor", "\n".join(lines))
    bench_json(
        "obs_overhead_monitor",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "plain_s": plain_s,
            "disabled_s": disabled_s,
            "monitored_s": monitored_s,
            "disabled_ratio": disabled_ratio,
            "monitored_ratio": monitored_ratio,
            "ticks_per_run": ticks,
        },
    )
    assert disabled_ratio < DISABLED_MARGIN, (
        f"monitor=None should be free, measured {disabled_ratio:.3f}x"
    )
    # Informational bound: per-drain evaluation, not per-request.
    assert monitored_ratio < 3.0, (
        f"live monitoring unexpectedly expensive: {monitored_ratio:.2f}x"
    )
