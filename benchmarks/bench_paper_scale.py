"""Paper-scale benchmark: the full Section 5 workload (N=35, 22050 records).

The paper's largest experimental point.  The 2^35-equation baseline is
infeasible for any implementation (it is the reason the paper exists), so
this suite times what *is* tractable at that scale: log generation,
matching, tree construction, the grouped pipeline and both grouped
engines.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.grouped_zeta import GroupedZetaValidator
from repro.core.validator import GroupedValidator
from repro.matching.index import IndexedMatcher
from repro.validation.tree import ValidationTree
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def paper():
    config = WorkloadConfig(n_licenses=35, seed=0)  # 630 * 35 = 22050 records
    workload = WorkloadGenerator(config).generate()
    return workload


def test_tree_construction_22k_records(benchmark, paper):
    tree = benchmark(lambda: ValidationTree.from_log(paper.log))
    assert tree.subset_sum((1 << 35) - 1) == paper.log.total_count


def test_matching_throughput(benchmark, paper):
    generator = WorkloadGenerator(WorkloadConfig(n_licenses=35, seed=1, n_records=0))
    matcher = IndexedMatcher(paper.pool)
    queries = list(generator.issue_stream(paper.pool, 500))
    results = benchmark(lambda: [matcher.match(q) for q in queries])
    assert all(results)


def test_grouped_pipeline_end_to_end(benchmark, paper):
    validator = GroupedValidator.from_pool(paper.pool)

    def run():
        return validator.validate(paper.log)

    report = benchmark(run)
    assert report.equations_checked == validator.equations_required


def test_grouped_zeta_end_to_end(benchmark, paper):
    validator = GroupedZetaValidator.from_pool(paper.pool)
    report = benchmark(lambda: validator.validate(paper.log))
    assert report.equations_checked > 0


def test_scale_report(benchmark, paper, report):
    def analyze():
        validator = GroupedValidator.from_pool(paper.pool)
        return validator

    validator = benchmark.pedantic(analyze, rounds=1, iterations=1)
    report(
        "paper_scale",
        render_table(
            ["metric", "value"],
            [
                ["licenses (N)", 35],
                ["log records", len(paper.log)],
                ["distinct sets", paper.log.distinct_sets],
                ["groups", validator.structure.count],
                ["group sizes", "+".join(map(str, validator.structure.sizes))],
                ["equations (ungrouped)", f"{validator.equations_baseline:,}"],
                ["equations (grouped)", f"{validator.equations_required:,}"],
                ["Eq. 3 gain", f"{validator.theoretical_gain:,.0f}x"],
            ],
            title="Paper-scale workload (Section 5 maximum: N=35, 630N records)",
        ),
    )
    assert validator.equations_baseline == 2**35 - 1
