"""Service throughput: requests/sec vs shard count and batch size.

Drives one fixed multi-group workload through the
:class:`repro.service.ValidationService` under varying shard counts
({1, 2, 4, 8}), executor backends, and admission batch sizes, reporting
requests/sec, latency percentiles, and the incremental-revalidation
equation counts.

Two effects are measured:

* **Sharding** -- more shards means each shard's admission batches are
  denser in its own groups, so far fewer ``Σ_dirty (2^{N_k} - 1)``
  revalidation passes run per request (a deterministic, hardware-
  independent win), plus executor concurrency across shards on
  multi-core hosts.  The verdict stream must stay byte-identical for
  every shard count (group independence, Theorem 2).
* **Batching** -- larger batches amortize the per-batch revalidation
  pass over more requests; ``equations_checked_total`` falls roughly
  linearly in the batch size.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import os
import time

from repro.service import ServiceConfig, ValidationService
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Pool size / group structure / stream length of the fixed workload.
#: 64 licenses across 8 groups gives ~8 members per group, so each
#: revalidation pass costs ~2^8 - 1 equations and the pass-skipping
#: effect of sharding/batching dominates wall time.
N_LICENSES = 32 if SMOKE else 64
TARGET_GROUPS = 8
STREAM = 600 if SMOKE else 2400
SEED = 0
SHARD_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (1, 8, 32)
#: Timing repeats per configuration; the minimum elapsed is reported
#: (standard practice to suppress scheduler noise on shared hosts).
REPEATS = 1 if SMOKE else 2


def _workload():
    config = WorkloadConfig(
        n_licenses=N_LICENSES,
        seed=SEED,
        n_records=0,
        target_groups=TARGET_GROUPS,
        aggregate_range=(400, 1200),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = list(generator.issue_stream(pool, STREAM))
    return pool, stream


def _run(pool, stream, shards, batch, executor, repeats=REPEATS, kernel="tree"):
    """Run the stream through a fresh service ``repeats`` times.

    Returns plain scalars only (never the service object itself) so the
    sweep loops do not keep earlier runs' shard trees and histogram
    windows alive while later runs are being timed.  The minimum elapsed
    across repeats is reported; verdicts and metric totals are identical
    on every repeat (the service is deterministic).
    """
    elapsed = float("inf")
    for _ in range(max(1, repeats)):
        service = ValidationService(
            pool,
            ServiceConfig(
                shards=shards,
                batch_size=batch,
                queue_capacity=max(64, STREAM // 4),
                executor=executor,
                kernel=kernel,
            ),
        )
        started = time.perf_counter()
        outcomes = service.process(stream)
        elapsed = min(elapsed, time.perf_counter() - started)
        service.close()
    verdicts = "".join(
        "A" if outcome.accepted else (outcome.rejection_reason or "?")[0]
        for outcome in outcomes
    )
    latency = service.metrics.histogram("latency_seconds").summary()
    executor_obj = service._executor
    backend = service.executor_backend
    if hasattr(executor_obj, "workers"):
        max_workers = executor_obj.workers
    elif backend == "serial":
        max_workers = 1
    else:
        max_workers = service.shard_count
    run = {
        "groups": service.group_count,
        "verdicts": verdicts,
        "elapsed": elapsed,
        "rps": len(stream) / elapsed,
        "equations": service.metrics.counter("equations_checked_total").total(),
        "batches": service.metrics.counter("batches_total").total(),
        "accepted": service.metrics.counter("requests_total").value(("accepted",)),
        "p50": latency["p50"],
        "p95": latency["p95"],
        "p99": latency["p99"],
        # Hardware/backend context: invisible rps comparisons across
        # machines were the motivating bug (a committed process-executor
        # row measured at cpu_count=1 looked like a backend regression).
        "executor": backend,
        "max_workers": max_workers,
        "cpu_count": os.cpu_count(),
    }
    if hasattr(executor_obj, "bytes_shipped_total"):
        drains = max(1, executor_obj.drains)
        # O(batch) proof: per-drain IPC for the resident backend; see
        # test_resident_ipc for the state-independence assertion.
        run["bytes_shipped_per_drain"] = (
            executor_obj.bytes_shipped_total // drains
        )
        run["drains"] = executor_obj.drains
    return run


#: Scalar fields persisted for every run row (see satellite note in
#: _run: executor/max_workers/cpu_count contextualize rps trajectories).
_ROW_FIELDS = (
    "rps", "elapsed", "equations", "batches", "accepted",
    "p50", "p95", "p99", "executor", "max_workers", "cpu_count",
)


def _json_row(run):
    """Strip a run dict to the scalar fields worth persisting as JSON."""
    row = {key: run[key] for key in _ROW_FIELDS}
    for optional in ("bytes_shipped_per_drain", "drains"):
        if optional in run:
            row[optional] = run[optional]
    return row


def test_throughput_vs_shards(report, bench_json):
    """Shard sweep: req/s up, equations down, verdicts byte-identical."""
    pool, stream = _workload()
    runs = {}
    for shards in SHARD_COUNTS:
        runs[shards] = _run(pool, stream, shards, batch=32, executor="serial")
    lines = [
        f"service throughput vs shard count (serial executor, "
        f"{N_LICENSES} licenses, {runs[1]['groups']} groups, "
        f"{STREAM} requests, batch=32)",
        "",
        "shards | req/s    | equations | p50 ms  | p95 ms  | p99 ms",
        "-------+----------+-----------+---------+---------+--------",
    ]
    for shards, run in runs.items():
        lines.append(
            f"{shards:6d} | {run['rps']:8,.0f} | {run['equations']:9d} | "
            f"{run['p50'] * 1e3:7.3f} | {run['p95'] * 1e3:7.3f} | "
            f"{run['p99'] * 1e3:7.3f}"
        )

    # The hard guarantee: the verdict stream is byte-identical for every
    # shard count (disconnected groups share no equations -- Theorem 2).
    reference = runs[1]["verdicts"]
    for shards in SHARD_COUNTS[1:]:
        assert runs[shards]["verdicts"] == reference, (
            f"verdict stream changed at {shards} shards"
        )
    lines.append("")
    lines.append(f"verdict streams byte-identical across shard counts: yes")

    # Sharding makes batches group-denser: strictly less audit work with
    # 8 shards than 1 (deterministic, so asserted unconditionally).
    assert runs[8]["equations"] < runs[1]["equations"], (
        f"sharding should cut revalidation work: "
        f"{runs[8]['equations']} !< {runs[1]['equations']}"
    )
    best_rps = max(runs[s]["rps"] for s in SHARD_COUNTS[1:])
    speedup = best_rps / runs[1]["rps"]
    lines.append(f"best multi-shard speedup over 1 shard: {speedup:.2f}x")
    report("service_throughput_shards", "\n".join(lines))
    bench_json(
        "throughput_vs_shards",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "licenses": N_LICENSES,
            "batch": 32,
            "executor": "serial",
            "speedup_best_vs_1": speedup,
            "runs": {str(s): _json_row(run) for s, run in runs.items()},
        },
    )
    # Wall-clock follows the equation reduction even on one core; keep a
    # generous margin so scheduler noise cannot flake the suite.
    assert speedup > 1.02, f"expected measurable multi-shard speedup, got {speedup:.3f}x"


def test_throughput_vs_executor(report, bench_json):
    """Executor backends must agree verdict-for-verdict; report their cost."""
    pool, stream = _workload()
    backends = ["serial", "thread", "resident"]
    if not SMOKE:
        backends.append("process-roundtrip")
    runs = {
        backend: _run(pool, stream, shards=4, batch=32, executor=backend)
        for backend in backends
    }
    reference = runs["serial"]["verdicts"]
    for backend, run in runs.items():
        assert run["verdicts"] == reference, f"{backend} diverged from serial"
    lines = [
        f"executor comparison (4 shards, batch=32, {STREAM} requests, "
        f"{os.cpu_count()} cpu core(s))",
        "",
        "executor          | req/s    | p95 ms | ipc B/drain",
        "------------------+----------+--------+------------",
    ]
    for backend, run in runs.items():
        per_drain = run.get("bytes_shipped_per_drain")
        lines.append(
            f"{backend:17s} | {run['rps']:8,.0f} | {run['p95'] * 1e3:6.3f} | "
            f"{per_drain if per_drain is not None else '-':>11}"
        )
    lines.append("")
    lines.append(
        "note: process parallelism pays off on multi-core hosts; on a "
        "single core the serial backend is optimal and the others "
        "measure pure coordination overhead.  The resident backend's "
        "per-drain IPC is O(batch) -- the round-trip backend pickles "
        "whole shard states (O(state)) every drain."
    )
    report("service_throughput_executors", "\n".join(lines))
    bench_json(
        "throughput_vs_executor",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "shards": 4,
            "batch": 32,
            "cpu_count": os.cpu_count(),
            "runs": {backend: _json_row(run) for backend, run in runs.items()},
        },
    )
    # The acceptance criterion is inherently about hardware: with one
    # core there is no parallelism to win, only coordination overhead,
    # so the floor is asserted on multi-core runners only.
    if (os.cpu_count() or 1) >= 2:
        assert runs["resident"]["rps"] >= runs["serial"]["rps"], (
            "resident backend should not lose to serial on multi-core: "
            f"{runs['resident']['rps']:,.0f} < {runs['serial']['rps']:,.0f} rps"
        )


def test_resident_ipc(report, bench_json):
    """Per-drain IPC of the resident backend is O(batch), not O(state).

    Two proofs, both deterministic:

    * the *same workload* served with ``kernel="tree"`` vs
      ``kernel="dense"`` ships per-drain traffic equal to within pickle
      integer-width jitter (the dense stats reply carries larger
      ``kernel_fast_path_hits`` counters, a few bytes), even though the
      dense configuration keeps up to ``2 x 8 * 2^{N_k}`` bytes of
      resident kernel state per group -- state never crosses the pipe
      (it lives in shared memory / in-worker);
    * verdicts are byte-identical to the serial reference either way.
    """
    pool, stream = _workload()
    serial = _run(pool, stream, shards=4, batch=32, executor="serial")
    by_kernel = {
        kernel: _run(
            pool, stream, shards=4, batch=32, executor="resident",
            kernel=kernel,
        )
        for kernel in ("tree", "dense")
    }
    parity = all(
        run["verdicts"] == serial["verdicts"] for run in by_kernel.values()
    )
    # 64 B absolute tolerance: counter-width jitter is single bytes,
    # while the dense tables that must NOT cross the pipe are KiB-MiB.
    state_independent = (
        abs(
            by_kernel["tree"]["bytes_shipped_per_drain"]
            - by_kernel["dense"]["bytes_shipped_per_drain"]
        )
        <= 64
    )
    assert parity, "resident verdicts diverged from serial"
    assert state_independent, (
        "per-drain IPC must not depend on kernel state size: "
        f"tree={by_kernel['tree']['bytes_shipped_per_drain']} B vs "
        f"dense={by_kernel['dense']['bytes_shipped_per_drain']} B"
    )
    lines = [
        f"resident backend IPC (4 shards, batch=32, {STREAM} requests)",
        "",
        "kernel | ipc B/drain | drains | req/s",
        "-------+-------------+--------+---------",
    ]
    for kernel, run in by_kernel.items():
        lines.append(
            f"{kernel:6s} | {run['bytes_shipped_per_drain']:11,d} | "
            f"{run['drains']:6d} | {run['rps']:8,.0f}"
        )
    lines.append("")
    lines.append(
        "per-drain bytes equal across kernels (within integer-width "
        "jitter): the drain ships the pending batch only; kernel tables "
        "stay resident in the workers (dense ones in shared memory, "
        "readable by the coordinator zero-copy)."
    )
    report("service_resident_ipc", "\n".join(lines))
    bench_json(
        "resident_ipc",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "shards": 4,
            "batch": 32,
            "cpu_count": os.cpu_count(),
            "parity": parity,
            "state_independent": state_independent,
            "runs": {
                kernel: _json_row(run) for kernel, run in by_kernel.items()
            },
        },
    )


def test_throughput_vs_batch(report, bench_json):
    """Batch sweep: the per-batch revalidation pass amortizes."""
    pool, stream = _workload()
    runs = {
        batch: _run(pool, stream, shards=4, batch=batch, executor="serial")
        for batch in BATCH_SIZES
    }
    reference = runs[BATCH_SIZES[0]]["verdicts"]
    lines = [
        f"service throughput vs batch size (4 shards, serial executor, "
        f"{STREAM} requests)",
        "",
        "batch | req/s    | batches | equations",
        "------+----------+---------+----------",
    ]
    for batch, run in runs.items():
        assert run["verdicts"] == reference, (
            f"verdicts must not depend on batch boundaries (batch={batch})"
        )
        lines.append(
            f"{batch:5d} | {run['rps']:8,.0f} | {run['batches']:7d} | "
            f"{run['equations']:9d}"
        )
    # Deterministic amortization: one revalidation pass per batch, so
    # equations checked fall as batches coalesce.
    assert runs[32]["equations"] < runs[1]["equations"] / 4, (
        "batching should amortize the revalidation pass"
    )
    report("service_throughput_batching", "\n".join(lines))
    bench_json(
        "throughput_vs_batch",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "shards": 4,
            "executor": "serial",
            "runs": {str(b): _json_row(run) for b, run in runs.items()},
        },
    )
