"""Service throughput: requests/sec vs shard count and batch size.

Drives one fixed multi-group workload through the
:class:`repro.service.ValidationService` under varying shard counts
({1, 2, 4, 8}), executor backends, and admission batch sizes, reporting
requests/sec, latency percentiles, and the incremental-revalidation
equation counts.

Two effects are measured:

* **Sharding** -- more shards means each shard's admission batches are
  denser in its own groups, so far fewer ``Σ_dirty (2^{N_k} - 1)``
  revalidation passes run per request (a deterministic, hardware-
  independent win), plus executor concurrency across shards on
  multi-core hosts.  The verdict stream must stay byte-identical for
  every shard count (group independence, Theorem 2).
* **Batching** -- larger batches amortize the per-batch revalidation
  pass over more requests; ``equations_checked_total`` falls roughly
  linearly in the batch size.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import os
import time

from repro.service import ServiceConfig, ValidationService
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Pool size / group structure / stream length of the fixed workload.
#: 64 licenses across 8 groups gives ~8 members per group, so each
#: revalidation pass costs ~2^8 - 1 equations and the pass-skipping
#: effect of sharding/batching dominates wall time.
N_LICENSES = 32 if SMOKE else 64
TARGET_GROUPS = 8
STREAM = 600 if SMOKE else 2400
SEED = 0
SHARD_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (1, 8, 32)
#: Timing repeats per configuration; the minimum elapsed is reported
#: (standard practice to suppress scheduler noise on shared hosts).
REPEATS = 1 if SMOKE else 2


def _workload():
    config = WorkloadConfig(
        n_licenses=N_LICENSES,
        seed=SEED,
        n_records=0,
        target_groups=TARGET_GROUPS,
        aggregate_range=(400, 1200),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = list(generator.issue_stream(pool, STREAM))
    return pool, stream


def _run(pool, stream, shards, batch, executor, repeats=REPEATS):
    """Run the stream through a fresh service ``repeats`` times.

    Returns plain scalars only (never the service object itself) so the
    sweep loops do not keep earlier runs' shard trees and histogram
    windows alive while later runs are being timed.  The minimum elapsed
    across repeats is reported; verdicts and metric totals are identical
    on every repeat (the service is deterministic).
    """
    elapsed = float("inf")
    for _ in range(max(1, repeats)):
        service = ValidationService(
            pool,
            ServiceConfig(
                shards=shards,
                batch_size=batch,
                queue_capacity=max(64, STREAM // 4),
                executor=executor,
            ),
        )
        started = time.perf_counter()
        outcomes = service.process(stream)
        elapsed = min(elapsed, time.perf_counter() - started)
        service.close()
    verdicts = "".join(
        "A" if outcome.accepted else (outcome.rejection_reason or "?")[0]
        for outcome in outcomes
    )
    latency = service.metrics.histogram("latency_seconds").summary()
    return {
        "groups": service.group_count,
        "verdicts": verdicts,
        "elapsed": elapsed,
        "rps": len(stream) / elapsed,
        "equations": service.metrics.counter("equations_checked_total").total(),
        "batches": service.metrics.counter("batches_total").total(),
        "accepted": service.metrics.counter("requests_total").value(("accepted",)),
        "p50": latency["p50"],
        "p95": latency["p95"],
        "p99": latency["p99"],
    }


def _json_row(run):
    """Strip a run dict to the scalar fields worth persisting as JSON."""
    return {
        key: run[key]
        for key in (
            "rps", "elapsed", "equations", "batches", "accepted",
            "p50", "p95", "p99",
        )
    }


def test_throughput_vs_shards(report, bench_json):
    """Shard sweep: req/s up, equations down, verdicts byte-identical."""
    pool, stream = _workload()
    runs = {}
    for shards in SHARD_COUNTS:
        runs[shards] = _run(pool, stream, shards, batch=32, executor="serial")
    lines = [
        f"service throughput vs shard count (serial executor, "
        f"{N_LICENSES} licenses, {runs[1]['groups']} groups, "
        f"{STREAM} requests, batch=32)",
        "",
        "shards | req/s    | equations | p50 ms  | p95 ms  | p99 ms",
        "-------+----------+-----------+---------+---------+--------",
    ]
    for shards, run in runs.items():
        lines.append(
            f"{shards:6d} | {run['rps']:8,.0f} | {run['equations']:9d} | "
            f"{run['p50'] * 1e3:7.3f} | {run['p95'] * 1e3:7.3f} | "
            f"{run['p99'] * 1e3:7.3f}"
        )

    # The hard guarantee: the verdict stream is byte-identical for every
    # shard count (disconnected groups share no equations -- Theorem 2).
    reference = runs[1]["verdicts"]
    for shards in SHARD_COUNTS[1:]:
        assert runs[shards]["verdicts"] == reference, (
            f"verdict stream changed at {shards} shards"
        )
    lines.append("")
    lines.append(f"verdict streams byte-identical across shard counts: yes")

    # Sharding makes batches group-denser: strictly less audit work with
    # 8 shards than 1 (deterministic, so asserted unconditionally).
    assert runs[8]["equations"] < runs[1]["equations"], (
        f"sharding should cut revalidation work: "
        f"{runs[8]['equations']} !< {runs[1]['equations']}"
    )
    best_rps = max(runs[s]["rps"] for s in SHARD_COUNTS[1:])
    speedup = best_rps / runs[1]["rps"]
    lines.append(f"best multi-shard speedup over 1 shard: {speedup:.2f}x")
    report("service_throughput_shards", "\n".join(lines))
    bench_json(
        "throughput_vs_shards",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "licenses": N_LICENSES,
            "batch": 32,
            "executor": "serial",
            "speedup_best_vs_1": speedup,
            "runs": {str(s): _json_row(run) for s, run in runs.items()},
        },
    )
    # Wall-clock follows the equation reduction even on one core; keep a
    # generous margin so scheduler noise cannot flake the suite.
    assert speedup > 1.02, f"expected measurable multi-shard speedup, got {speedup:.3f}x"


def test_throughput_vs_executor(report, bench_json):
    """Executor backends must agree verdict-for-verdict; report their cost."""
    pool, stream = _workload()
    backends = ["serial", "thread"]
    if not SMOKE:
        backends.append("process")
    runs = {
        backend: _run(pool, stream, shards=4, batch=32, executor=backend)
        for backend in backends
    }
    reference = runs["serial"]["verdicts"]
    for backend, run in runs.items():
        assert run["verdicts"] == reference, f"{backend} diverged from serial"
    lines = [
        f"executor comparison (4 shards, batch=32, {STREAM} requests, "
        f"{os.cpu_count()} cpu core(s))",
        "",
        "executor | req/s    | p95 ms",
        "---------+----------+-------",
    ]
    for backend, run in runs.items():
        lines.append(
            f"{backend:8s} | {run['rps']:8,.0f} | {run['p95'] * 1e3:6.3f}"
        )
    lines.append("")
    lines.append(
        "note: thread/process parallelism pays off on multi-core hosts; "
        "on a single core the serial backend is optimal and the others "
        "measure pure coordination overhead."
    )
    report("service_throughput_executors", "\n".join(lines))
    bench_json(
        "throughput_vs_executor",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "shards": 4,
            "batch": 32,
            "cpu_count": os.cpu_count(),
            "runs": {backend: _json_row(run) for backend, run in runs.items()},
        },
    )


def test_throughput_vs_batch(report, bench_json):
    """Batch sweep: the per-batch revalidation pass amortizes."""
    pool, stream = _workload()
    runs = {
        batch: _run(pool, stream, shards=4, batch=batch, executor="serial")
        for batch in BATCH_SIZES
    }
    reference = runs[BATCH_SIZES[0]]["verdicts"]
    lines = [
        f"service throughput vs batch size (4 shards, serial executor, "
        f"{STREAM} requests)",
        "",
        "batch | req/s    | batches | equations",
        "------+----------+---------+----------",
    ]
    for batch, run in runs.items():
        assert run["verdicts"] == reference, (
            f"verdicts must not depend on batch boundaries (batch={batch})"
        )
        lines.append(
            f"{batch:5d} | {run['rps']:8,.0f} | {run['batches']:7d} | "
            f"{run['equations']:9d}"
        )
    # Deterministic amortization: one revalidation pass per batch, so
    # equations checked fall as batches coalesce.
    assert runs[32]["equations"] < runs[1]["equations"] / 4, (
        "batching should amortize the revalidation pass"
    )
    report("service_throughput_batching", "\n".join(lines))
    bench_json(
        "throughput_vs_batch",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "shards": 4,
            "executor": "serial",
            "runs": {str(b): _json_row(run) for b, run in runs.items()},
        },
    )
