"""Figure 6: number of groups vs number of redistribution licenses.

Regenerates the paper's group-count curve over N = 1..35 (group counts in
1..5, varying non-monotonically as licenses are added) and micro-benchmarks
the group-formation pipeline (overlap graph + DFS, Algorithm 3).
"""

import pytest

from repro.analysis.experiments import ExperimentSuite, render_figure6
from repro.core.grouping import form_groups
from repro.core.overlap import OverlapGraph
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def pools():
    """Pools for the full paper sweep (no logs needed for Figure 6)."""
    out = {}
    for n in (5, 15, 25, 35):
        config = WorkloadConfig(n_licenses=n, seed=0, n_records=0)
        out[n] = WorkloadGenerator(config).generate_pool()
    return out


@pytest.mark.parametrize("n", [5, 15, 25, 35])
def test_group_formation(benchmark, pools, n):
    """Time Algorithm 3 (incl. overlap-graph construction) at several N."""
    pool = pools[n]
    structure = benchmark(lambda: form_groups(OverlapGraph.from_pool(pool)))
    assert 1 <= structure.count <= n


def test_figure6_table(benchmark, report):
    """Regenerate the full Figure 6 series (N = 1..35)."""
    figure6_suite = ExperimentSuite(
        n_values=tuple(range(1, 36)),
        seed=0,
        records_per_license=0,
        # Slightly sparser licenses so clusters occasionally split or get
        # bridged -- reproducing the paper's non-monotone 1..5 curve.
        config_overrides={"license_extent_fraction": (0.3, 0.7)},
    )
    rows = benchmark.pedantic(figure6_suite.figure6, rounds=1, iterations=1)
    report("figure06_groups", render_figure6(rows))
    from repro.analysis.export import figure6_csv
    from benchmarks.conftest import RESULTS_DIR

    figure6_csv(rows, RESULTS_DIR / "figure06_groups.csv")
    # Shape assertions mirroring the paper: group counts live in 1..5 and
    # are not monotone in N.
    counts = [row.groups for row in rows]
    assert all(1 <= count <= 5 for count in counts)
    assert any(late < early for early, late in zip(counts, counts[1:])), (
        "group count should sometimes decrease when a license bridges groups"
    )
    assert max(counts) >= 3
