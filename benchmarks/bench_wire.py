"""End-to-end wire serving: RPS and latency through a real TCP socket.

Measures the :mod:`repro.net` stack -- framing, JSON codec, asyncio
streams, bounded in-flight window -- wrapped around the same
:class:`ValidationService` the in-process benchmarks drive directly:

* **Parity** (gated exactly): one pipelined connection replays the
  stream and every verdict must be byte-identical to
  :meth:`ValidationService.process` on the same stream.  The wire layer
  is a pure transport; if this flips, admission semantics leaked into
  the socket code.
* **Closed-loop throughput**: ``CONCURRENCY`` persistent connections
  issue back-to-back requests (saturation probe).
* **Open-loop latency**: requests depart on a fixed arrival schedule,
  so percentiles include queueing delay without coordinated omission.
* **Tracing overhead**: the same closed-loop run three ways -- a
  protocol-v1 client against a no-timing-echo server (the legacy
  baseline), a v2 client with tracing disabled (contexts absent, timing
  echo present), and a fully traced run (client + server tracers).  The
  disabled-path ratio is gated: v2 support must stay essentially free
  when nobody traces.

RPS and percentile numbers are informational in the perf gate (CI
runners cannot reproduce absolute timings); the deterministic shape
fields -- parity, accepted count of the pipelined run, measured request
counts, zero overload failures under an unsaturated window -- are gated
exactly.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload for CI smoke runs.
"""

import asyncio
import json
import os

from repro.net import protocol
from repro.net.client import AdmissionClient
from repro.net.loadgen import LoadGenerator, LoadgenConfig
from repro.net.server import AdmissionServer, WireServerConfig
from repro.obs.trace import Tracer
from repro.service import ServiceConfig, ValidationService
from repro.workloads.config import WorkloadConfig
from repro.workloads.generator import WorkloadGenerator

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

N_LICENSES = 24 if SMOKE else 48
TARGET_GROUPS = 6
STREAM = 300 if SMOKE else 1500
SEED = 0
CONCURRENCY = 4
#: Open-loop arrival rate (requests/second).  Far below the closed-loop
#: ceiling so the open run measures latency, not saturation collapse.
OPEN_RATE = 1500.0 if SMOKE else 3000.0


def _workload():
    config = WorkloadConfig(
        n_licenses=N_LICENSES,
        seed=SEED,
        n_records=0,
        target_groups=TARGET_GROUPS,
        # Tight enough that the stream exhausts capacity part-way: the
        # parity check then covers accepted AND rejected verdicts.
        aggregate_range=(150, 400),
    )
    generator = WorkloadGenerator(config)
    pool = generator.generate_pool()
    stream = list(generator.issue_stream(pool, STREAM))
    return pool, stream


def _signature(outcomes):
    return [
        json.dumps(protocol.outcome_to_payload(outcome), sort_keys=True)
        for outcome in outcomes
    ]


async def _with_server(pool, run, *, tracer=None, timing_echo=True):
    """Start a fresh service+server, run ``run(host, port)``, drain."""
    service = ValidationService(
        pool, ServiceConfig(shards=4, batch_size=32), tracer=tracer
    )
    server = AdmissionServer(
        service,
        # Window sized to the whole stream: backpressure never triggers,
        # so request counts below are deterministic and gateable.
        WireServerConfig(
            max_inflight=max(STREAM, 256), timing_echo=timing_echo
        ),
    )
    host, port = await server.start()
    try:
        result = await run(host, port)
    finally:
        await server.shutdown()
        service.close()
    return result


def _loadgen_row(report_obj):
    return {
        "concurrency": report_obj.concurrency,
        "measured": report_obj.measured,
        "overloaded_failures": report_obj.overloaded_failures,
        "retries": report_obj.retries,
        "accepted": report_obj.accepted,
        "elapsed": report_obj.elapsed,
        "rps": report_obj.rps,
        "p50": report_obj.quantile(0.50),
        "p95": report_obj.quantile(0.95),
        "p99": report_obj.quantile(0.99),
    }


def test_wire_end_to_end(report, bench_json):
    pool, stream = _workload()

    # In-process reference: the same stream through the bare service.
    service = ValidationService(pool, ServiceConfig(shards=4, batch_size=32))
    reference = _signature(service.process(stream))
    accepted_reference = sum(
        1 for line in reference if json.loads(line)["accepted"]
    )
    service.close()

    async def pipelined(host, port):
        async with AdmissionClient(host, port) as client:
            return await client.request_many(stream, window=64)

    wire_outcomes = asyncio.run(_with_server(pool, pipelined))
    parity = _signature(wire_outcomes) == reference
    assert parity, "wire verdicts diverged from in-process admission"

    async def closed(host, port):
        generator = LoadGenerator(
            LoadgenConfig(
                mode="closed",
                concurrency=CONCURRENCY,
                warmup=min(50, STREAM // 10),
            )
        )
        return await generator.run(host, port, stream)

    closed_report = asyncio.run(_with_server(pool, closed))
    assert closed_report.overloaded_failures == 0

    async def open_loop(host, port):
        generator = LoadGenerator(
            LoadgenConfig(
                mode="open",
                concurrency=CONCURRENCY,
                rate=OPEN_RATE,
                warmup=min(50, STREAM // 10),
            )
        )
        return await generator.run(host, port, stream)

    open_report = asyncio.run(_with_server(pool, open_loop))
    assert open_report.overloaded_failures == 0

    # ------------------------------------------------------------------
    # Tracing overhead: legacy v1 baseline vs v2-disabled vs fully traced
    # ------------------------------------------------------------------
    def closed_run(*, tracer=None, protocol_versions=protocol.SUPPORTED_VERSIONS):
        async def scenario(host, port):
            generator = LoadGenerator(
                LoadgenConfig(
                    mode="closed",
                    concurrency=CONCURRENCY,
                    warmup=min(50, STREAM // 10),
                ),
                tracer=tracer,
                protocol_versions=protocol_versions,
            )
            return await generator.run(host, port, stream)

        return scenario

    baseline_report = asyncio.run(
        _with_server(
            pool, closed_run(protocol_versions=(1,)), timing_echo=False
        )
    )
    untraced_report = asyncio.run(_with_server(pool, closed_run()))
    traced_report = asyncio.run(
        _with_server(pool, closed_run(tracer=Tracer()), tracer=Tracer())
    )
    for tracing_run in (baseline_report, untraced_report, traced_report):
        assert tracing_run.overloaded_failures == 0
    assert baseline_report.timed == 0  # v1: no timing echo on the wire
    assert untraced_report.timed == untraced_report.measured
    disabled_ratio = baseline_report.rps / max(untraced_report.rps, 1e-9)
    traced_ratio = baseline_report.rps / max(traced_report.rps, 1e-9)

    lines = [
        f"wire end-to-end serving ({N_LICENSES} licenses, {STREAM} requests, "
        f"4 shards, batch=32)",
        "",
        f"parity: wire verdicts byte-identical to in-process: "
        f"{'yes' if parity else 'NO'} "
        f"({accepted_reference}/{STREAM} accepted)",
        "",
        "run            | req/s    | p50 ms  | p95 ms  | p99 ms",
        "---------------+----------+---------+---------+--------",
    ]
    for name, run_report in (
        (f"closed (c={CONCURRENCY})", closed_report),
        (f"open ({OPEN_RATE:,.0f}/s)", open_report),
    ):
        lines.append(
            f"{name:14s} | {run_report.rps:8,.0f} | "
            f"{run_report.quantile(0.5) * 1e3:7.3f} | "
            f"{run_report.quantile(0.95) * 1e3:7.3f} | "
            f"{run_report.quantile(0.99) * 1e3:7.3f}"
        )
    lines += [
        "",
        "tracing overhead (closed loop, same stream):",
        f"  v1 baseline (no echo)   {baseline_report.rps:8,.0f} req/s",
        f"  v2, tracing disabled    {untraced_report.rps:8,.0f} req/s "
        f"(ratio {disabled_ratio:.3f})",
        f"  v2, fully traced        {traced_report.rps:8,.0f} req/s "
        f"(ratio {traced_ratio:.3f})",
    ]
    report("wire_end_to_end", "\n".join(lines))

    bench_json(
        "wire_end_to_end",
        {
            "smoke": SMOKE,
            "stream": STREAM,
            "licenses": N_LICENSES,
            "parity": parity,
            "accepted": accepted_reference,
            "closed": _loadgen_row(closed_report),
            "open": _loadgen_row(open_report),
            "tracing": {
                "measured": untraced_report.measured,
                "baseline_rps": baseline_report.rps,
                "untraced_rps": untraced_report.rps,
                "traced_rps": traced_report.rps,
                "disabled_ratio": disabled_ratio,
                "traced_ratio": traced_ratio,
            },
        },
    )
