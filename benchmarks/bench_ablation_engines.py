"""Ablation A1: LHS-evaluation engines.

Compares the four ways this library can evaluate all 2^N - 1 equations:

* ``expansion`` -- the fully expanded Equation 1 (3^N - 2^N term lookups),
  the cost model the validation tree of [10] was introduced to beat;
* ``scan`` -- per-equation scan over the distinct logged sets;
* ``tree`` -- the paper's validation-tree traversal;
* ``zeta`` -- the dense subset-sum transform (numpy), a modern bulk engine.

All four must return identical violation lists.
"""

import pytest

from repro.analysis.tables import render_table
from repro.validation.naive import ExpansionValidator, ScanValidator
from repro.validation.tree import ValidationTree
from repro.validation.tree_validator import TreeValidator
from repro.validation.zeta import ZetaValidator

N = 14


@pytest.fixture(scope="module")
def inputs(wide_suite):
    workload = wide_suite.workload(N)
    return (
        workload.aggregates,
        workload.log.counts_by_mask(),
        ValidationTree.from_log(workload.log),
    )


def test_engine_expansion(benchmark, inputs):
    aggregates, counts, _tree = inputs
    validator = ExpansionValidator(aggregates)
    benchmark(lambda: validator.validate_counts(counts))


def test_engine_scan(benchmark, inputs):
    aggregates, counts, _tree = inputs
    validator = ScanValidator(aggregates)
    benchmark(lambda: validator.validate_counts(counts))


def test_engine_tree(benchmark, inputs):
    aggregates, _counts, tree = inputs
    validator = TreeValidator(aggregates)
    benchmark(lambda: validator.validate(tree))


def test_engine_zeta(benchmark, inputs):
    aggregates, counts, _tree = inputs
    validator = ZetaValidator(aggregates)
    benchmark(lambda: validator.validate_counts(counts))


def test_engine_grouped_tree(benchmark, inputs, wide_suite):
    from repro.core.validator import GroupedValidator

    workload = wide_suite.workload(N)
    validator = GroupedValidator.from_pool(workload.pool)
    benchmark(lambda: validator.validate(workload.log))


def test_engine_grouped_zeta(benchmark, inputs, wide_suite):
    from repro.core.grouped_zeta import GroupedZetaValidator

    workload = wide_suite.workload(N)
    validator = GroupedZetaValidator.from_pool(workload.pool)
    benchmark(lambda: validator.validate(workload.log))


def test_grouped_engines_agree(benchmark, wide_suite):
    from repro.core.grouped_zeta import GroupedZetaValidator
    from repro.core.validator import GroupedValidator

    workload = wide_suite.workload(N)

    def run():
        return (
            GroupedValidator.from_pool(workload.pool).validate(workload.log),
            GroupedZetaValidator.from_pool(workload.pool).validate(workload.log),
        )

    tree_report, zeta_report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert set(tree_report.violations) == set(zeta_report.violations)


def test_engines_agree_and_report(benchmark, inputs, report):
    aggregates, counts, tree = inputs
    reports = benchmark.pedantic(
        lambda: {
            "expansion": ExpansionValidator(aggregates).validate_counts(counts),
            "scan": ScanValidator(aggregates).validate_counts(counts),
            "tree": TreeValidator(aggregates).validate(tree),
            "zeta": ZetaValidator(aggregates).validate_counts(counts),
        },
        rounds=1,
        iterations=1,
    )
    violations = {name: r.violations for name, r in reports.items()}
    assert len(set(violations.values())) == 1, "engines disagree"
    table = render_table(
        ["engine", "equations", "violations"],
        [[name, r.equations_checked, len(r.violations)] for name, r in reports.items()],
        title=f"Ablation A1: engine agreement at N={N}",
    )
    report("ablation_engines", table)
