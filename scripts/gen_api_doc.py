#!/usr/bin/env python
"""Regenerate docs/API.md from module docstrings and __all__ exports."""

import importlib
import pkgutil
from pathlib import Path

import repro


def main() -> None:
    lines = [
        "# API Reference",
        "",
        "Generated from module docstrings (`python scripts/gen_api_doc.py` to refresh).",
        "",
    ]
    modules = sorted(
        pkgutil.walk_packages(repro.__path__, prefix="repro."),
        key=lambda info: info.name,
    )
    for info in modules:
        module = importlib.import_module(info.name)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else "(no docstring)"
        lines.append(f"## `{info.name}`")
        lines.append("")
        lines.append(summary)
        exported = getattr(module, "__all__", None)
        if exported:
            lines.append("")
            lines.append("Public: " + ", ".join(f"`{name}`" for name in exported))
        lines.append("")
    target = Path(__file__).parent.parent / "docs" / "API.md"
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"wrote {target}")


if __name__ == "__main__":
    main()
