#!/usr/bin/env python
"""Regenerate docs/API.md from module docstrings and __all__ exports.

Default mode rewrites ``docs/API.md``.  ``--check`` renders the document
in memory and exits 1 (with a unified diff) when the committed file has
drifted from the actual modules -- a public symbol added, a signature
changed, a docstring summary edited -- without regenerating the doc.
CI runs the check so the reference can never silently go stale.
"""

import argparse
import difflib
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro  # noqa: E402

TARGET = REPO_ROOT / "docs" / "API.md"

#: Memory addresses and other run-dependent repr noise must never reach
#: the committed document (they would make --check flap).
_ADDR = re.compile(r" at 0x[0-9a-fA-F]+")


def _signature_of(obj: object) -> str:
    """Return ``name(params)`` for callables, ``name`` otherwise."""
    try:
        sig = str(inspect.signature(obj))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return ""
    return _ADDR.sub("", sig)


def build_api_markdown() -> str:
    """Render the full API reference document as a string."""
    lines = [
        "# API Reference",
        "",
        "Generated from module docstrings (`python scripts/gen_api_doc.py` "
        "to refresh; `--check` to verify without writing).",
        "",
    ]
    modules = sorted(
        pkgutil.walk_packages(repro.__path__, prefix="repro."),
        key=lambda info: info.name,
    )
    for info in modules:
        module = importlib.import_module(info.name)
        doc = (module.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else "(no docstring)"
        lines.append(f"## `{info.name}`")
        lines.append("")
        lines.append(summary)
        exported = getattr(module, "__all__", None)
        if exported:
            lines.append("")
            for name in exported:
                obj = getattr(module, name, None)
                sig = _signature_of(obj) if obj is not None else ""
                if sig and (inspect.isfunction(obj) or inspect.isclass(obj)):
                    lines.append(f"- `{name}{sig}`")
                else:
                    lines.append(f"- `{name}`")
        lines.append("")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 with a diff if docs/API.md is stale; write nothing",
    )
    args = parser.parse_args(argv)

    rendered = build_api_markdown()
    if args.check:
        committed = TARGET.read_text(encoding="utf-8") if TARGET.exists() else ""
        if committed == rendered:
            print(f"{TARGET.relative_to(REPO_ROOT)} is up to date")
            return 0
        diff = difflib.unified_diff(
            committed.splitlines(keepends=True),
            rendered.splitlines(keepends=True),
            fromfile="docs/API.md (committed)",
            tofile="docs/API.md (regenerated)",
        )
        sys.stdout.writelines(diff)
        print(
            "\ndocs/API.md is stale; run `python scripts/gen_api_doc.py` "
            "and commit the result",
            file=sys.stderr,
        )
        return 1
    TARGET.write_text(rendered, encoding="utf-8")
    print(f"wrote {TARGET}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
