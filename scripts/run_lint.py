#!/usr/bin/env python
"""Run the repro.lint invariant checker (CI entry point).

Equivalent to ``repro lint``; kept as a script so CI and pre-commit
hooks can invoke it without installing the package:

    PYTHONPATH=src python scripts/run_lint.py src

Exit codes: 0 clean, 1 findings, 2 usage/parse errors.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
