#!/usr/bin/env python
"""Run the repro.lint invariant checker (CI entry point).

Equivalent to ``repro lint``, with two repo-level conveniences baked in:

* invoked with no arguments it lints the full tooling surface --
  ``src``, ``scripts``, and ``benchmarks`` -- not just ``src``;
* unless the caller picks a location, the whole-program call graph is
  cached in ``.lint-cache/callgraph.pickle``, keyed on a content hash
  of the linted tree, so repeated local runs skip the graph build when
  nothing changed (CI always starts cold; the cache is gitignored).

    PYTHONPATH=src python scripts/run_lint.py

Exit codes: 0 clean, 1 findings, 2 usage/parse errors.
"""

import sys
from pathlib import Path
from typing import List, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.lint.cli import main  # noqa: E402

#: What a bare ``python scripts/run_lint.py`` checks.
DEFAULT_PATHS = ("src", "scripts", "benchmarks")

#: Default pickle cache for the analysis pass's call graph.
DEFAULT_CACHE = REPO_ROOT / ".lint-cache" / "callgraph.pickle"


def build_argv(raw: Sequence[str]) -> List[str]:
    """Expand a raw argv with the repo-level defaults.

    Defaults are only injected conservatively: paths when *nothing* was
    passed (so explicit invocations keep their exact meaning), the
    cache flag whenever the caller did not choose one.
    """
    argv = list(raw)
    if not argv:
        argv = list(DEFAULT_PATHS)
    if "--call-graph-cache" not in argv:
        argv += ["--call-graph-cache", str(DEFAULT_CACHE)]
    return argv


if __name__ == "__main__":
    sys.exit(main(build_argv(sys.argv[1:])))
