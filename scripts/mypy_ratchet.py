#!/usr/bin/env python
"""The mypy baseline ratchet: the permissive typing tier can only shrink.

Two typing tiers are configured in pyproject.toml (see the ``[tool.mypy]``
comment block): the strict packages (``repro.geometry`` / ``repro.core`` /
``repro.validation`` / ``repro.net`` / ``repro.lint``) must hold zero
errors, and every other package may carry at most the per-package error
count recorded in ``mypy-baseline.json``.
This script runs mypy, buckets its errors per package, and compares:

* count above baseline (or any strict-package error) -> exit 1;
* counts at/below baseline -> exit 0 (with a hint to ratchet down when
  some count shrank -- rerun with ``--write-baseline``);
* ``--write-baseline`` rewrites the baseline, refusing to *grow* any
  count of an enforcing baseline (that is the ratchet).

The committed baseline starts in ``"mode": "bootstrap"``: counts are
measured and reported but nothing fails, because this repository's
environment cannot run mypy to certify an initial state.  The first run
of ``--write-baseline`` on a machine with mypy flips it to
``"mode": "enforce"`` and arms the gate.  When mypy itself is not
installed the script skips with exit 0 (CI passes ``--require-mypy`` to
turn that into a hard error instead).
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "mypy-baseline.json"

#: Packages that must stay at zero errors once the gate is armed.
STRICT_PACKAGES = (
    "repro.geometry",
    "repro.core",
    "repro.validation",
    "repro.net",
    "repro.lint",
)

_ERROR_LINE = re.compile(r"^(?P<path>[^:]+\.py):\d+(?::\d+)?: error: ")


def mypy_available() -> bool:
    """Return whether mypy can be imported by this interpreter."""
    try:
        import mypy  # noqa: F401

        return True
    except ImportError:
        return False


def run_mypy(target: str = "src/repro") -> Tuple[int, str]:
    """Run mypy over ``target``; return ``(exit_code, stdout)``."""
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary", target],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    return proc.returncode, proc.stdout + proc.stderr


def package_of(path: str) -> str:
    """Map an error path to its package bucket (``repro.core`` ...)."""
    parts = Path(path.replace("\\", "/")).with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    dotted = ".".join(parts)
    segments = dotted.split(".")
    return ".".join(segments[:2]) if len(segments) > 1 else dotted


def bucket_errors(output: str) -> Dict[str, int]:
    """Count mypy error lines per package bucket."""
    counts: Dict[str, int] = {}
    for line in output.splitlines():
        match = _ERROR_LINE.match(line.strip())
        if match is None:
            continue
        bucket = package_of(match.group("path"))
        counts[bucket] = counts.get(bucket, 0) + 1
    return counts


def load_baseline(path: Path) -> Dict[str, object]:
    if not path.exists():
        return {"mode": "bootstrap", "strict_packages": list(STRICT_PACKAGES),
                "counts": {}}
    with open(path, "r", encoding="utf-8") as stream:
        return json.load(stream)


def write_baseline(path: Path, counts: Dict[str, int]) -> None:
    payload = {
        "mode": "enforce",
        "strict_packages": list(STRICT_PACKAGES),
        "counts": {key: counts[key] for key in sorted(counts)},
    }
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")


def compare(
    counts: Dict[str, int], baseline: Dict[str, object]
) -> Tuple[List[str], List[str]]:
    """Return ``(failures, improvements)`` vs the baseline."""
    failures: List[str] = []
    improvements: List[str] = []
    strict = tuple(baseline.get("strict_packages", STRICT_PACKAGES))
    allowed: Dict[str, int] = dict(baseline.get("counts", {}))  # type: ignore[arg-type]
    for package in sorted(set(counts) | set(allowed)):
        observed = counts.get(package, 0)
        if package in strict or any(
            package.startswith(f"{s}.") for s in strict
        ):
            if observed:
                failures.append(
                    f"{package}: {observed} error(s) in a strict package "
                    f"(must be 0)"
                )
            continue
        ceiling = allowed.get(package, 0)
        if observed > ceiling:
            failures.append(
                f"{package}: {observed} error(s) > baseline {ceiling}"
            )
        elif observed < ceiling:
            improvements.append(
                f"{package}: {observed} error(s) < baseline {ceiling}"
            )
    return failures, improvements


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"baseline JSON path (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--target", default="src/repro", help="what to type-check"
    )
    parser.add_argument(
        "--require-mypy", action="store_true",
        help="fail (exit 2) when mypy is not installed instead of skipping",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from this run (shrink-only ratchet)",
    )
    parser.add_argument(
        "--report-out", type=Path, default=None,
        help="also write the per-package counts as JSON",
    )
    args = parser.parse_args(argv)

    if not mypy_available():
        if args.require_mypy:
            print("mypy-ratchet: mypy is not installed (required)", file=sys.stderr)
            return 2
        print("mypy-ratchet: mypy not installed; skipping (install mypy "
              "from requirements-dev.txt to arm the typing gate)")
        return 0

    code, output = run_mypy(args.target)
    if code not in (0, 1):  # 2 = usage/config error
        sys.stderr.write(output)
        print("mypy-ratchet: mypy failed to run", file=sys.stderr)
        return 2
    counts = bucket_errors(output)
    total = sum(counts.values())
    baseline = load_baseline(args.baseline)

    if args.report_out is not None:
        with open(args.report_out, "w", encoding="utf-8") as stream:
            json.dump(
                {"counts": {k: counts[k] for k in sorted(counts)},
                 "total": total, "mode": baseline.get("mode")},
                stream, indent=2, sort_keys=True,
            )
            stream.write("\n")

    if args.write_baseline:
        previous: Dict[str, int] = dict(baseline.get("counts", {}))  # type: ignore[arg-type]
        if baseline.get("mode") == "enforce":
            grew = [
                f"{pkg}: {counts.get(pkg, 0)} > {previous.get(pkg, 0)}"
                for pkg in sorted(set(counts) | set(previous))
                if counts.get(pkg, 0) > previous.get(pkg, 0)
            ]
            if grew:
                print("mypy-ratchet: refusing to grow an enforcing baseline:")
                for line in grew:
                    print(f"  {line}")
                return 1
        write_baseline(args.baseline, counts)
        print(f"mypy-ratchet: wrote {args.baseline} ({total} error(s) "
              f"across {len(counts)} package(s); mode=enforce)")
        return 0

    print(f"mypy-ratchet: {total} error(s) across {len(counts)} package(s)")
    for package in sorted(counts):
        print(f"  {package}: {counts[package]}")

    if baseline.get("mode") == "bootstrap":
        print("mypy-ratchet: baseline is in bootstrap mode -- reporting only.")
        print("  Arm the gate with: python scripts/mypy_ratchet.py --write-baseline")
        return 0

    failures, improvements = compare(counts, baseline)
    for line in improvements:
        print(f"  improved -- {line}")
    if improvements and not failures:
        print("mypy-ratchet: counts shrank; ratchet down with --write-baseline")
    if failures:
        print("mypy-ratchet: typing regressions:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
