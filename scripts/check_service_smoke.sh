#!/usr/bin/env bash
# Smoke-check the serving layer end to end: unit/integration tests,
# determinism sweep, and a shrunk throughput benchmark (~30s budget).
# Used by CI and runnable locally from the repo root:
#
#   ./scripts/check_service_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"
export REPRO_BENCH_SMOKE=1

echo "== service unit + integration + determinism tests =="
python -m pytest tests/service tests/obs tests/matching/test_boundary_consistency.py -q

echo "== serve-bench CLI =="
python -m repro serve-bench -n 12 --stream 300 --shards 2 --batch 16

echo "== serve-bench with tracing + event journal + Prometheus export =="
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
python -m repro serve-bench -n 12 --stream 300 --shards 2 --batch 16 \
    --trace "$OBS_DIR/trace.jsonl" \
    --events-out "$OBS_DIR/events.jsonl" \
    --metrics-out "$OBS_DIR/metrics.prom"
test -s "$OBS_DIR/trace.jsonl"
test -s "$OBS_DIR/events.jsonl"
grep -q "repro_requests_total" "$OBS_DIR/metrics.prom"

echo "== obs-report over the exported run =="
# grep without -q so it drains the whole stream (grep -q exits on the
# first match and the early-closed pipe would kill obs-report).
python -m repro obs-report --trace "$OBS_DIR/trace.jsonl" \
    --events "$OBS_DIR/events.jsonl" --top 5 --max-traces 1 \
    | grep "slowest spans" > /dev/null

echo "== throughput + observability-overhead benchmarks (smoke sizes) =="
python -m pytest benchmarks/bench_service_throughput.py \
    benchmarks/bench_obs_overhead.py -q -p no:cacheprovider
test -s BENCH_service.json

echo "service smoke checks passed"
