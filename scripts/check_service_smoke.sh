#!/usr/bin/env bash
# Smoke-check the serving layer end to end: unit/integration tests,
# determinism sweep, and a shrunk throughput benchmark (~30s budget).
# Used by CI and runnable locally from the repo root:
#
#   ./scripts/check_service_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"
export REPRO_BENCH_SMOKE=1

echo "== service unit + integration + determinism tests =="
python -m pytest tests/service tests/matching/test_boundary_consistency.py -q

echo "== serve-bench CLI =="
python -m repro serve-bench -n 12 --stream 300 --shards 2 --batch 16

echo "== throughput benchmark (smoke sizes) =="
python -m pytest benchmarks/bench_service_throughput.py -q -p no:cacheprovider

echo "service smoke checks passed"
