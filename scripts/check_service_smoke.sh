#!/usr/bin/env bash
# Smoke-check the serving layer end to end: unit/integration tests,
# determinism sweep, and a shrunk throughput benchmark (~30s budget).
# Used by CI and runnable locally from the repo root:
#
#   ./scripts/check_service_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="${PYTHONPATH:+$PYTHONPATH:}src"
export REPRO_BENCH_SMOKE=1

echo "== service unit + integration + determinism tests =="
python -m pytest tests/service tests/net tests/obs tests/matching/test_boundary_consistency.py -q

echo "== serve-bench CLI =="
python -m repro serve-bench -n 12 --stream 300 --shards 2 --batch 16

echo "== serve-bench with resident shard workers =="
python -m repro serve-bench -n 12 --stream 300 --shards 2 --batch 16 \
    --executor resident --workers 2

echo "== serve-bench with tracing + event journal + Prometheus export =="
OBS_DIR="$(mktemp -d)"
trap 'rm -rf "$OBS_DIR"' EXIT
python -m repro serve-bench -n 12 --stream 300 --shards 2 --batch 16 \
    --trace "$OBS_DIR/trace.jsonl" \
    --events-out "$OBS_DIR/events.jsonl" \
    --metrics-out "$OBS_DIR/metrics.prom"
test -s "$OBS_DIR/trace.jsonl"
test -s "$OBS_DIR/events.jsonl"
grep -q "repro_requests_total" "$OBS_DIR/metrics.prom"

echo "== obs-report over the exported run =="
# grep without -q so it drains the whole stream (grep -q exits on the
# first match and the early-closed pipe would kill obs-report).
python -m repro obs-report --trace "$OBS_DIR/trace.jsonl" \
    --events "$OBS_DIR/events.jsonl" --top 5 --max-traces 1 \
    | grep "slowest spans" > /dev/null

echo "== wire smoke: serve on an ephemeral port, loadgen against it, drain =="
WIRE_DIR="$(mktemp -d)"
python -m repro serve -n 12 --seed 3 --clusters 4 --port 0 \
    --port-file "$WIRE_DIR/port" --monitor \
    --trace "$WIRE_DIR/server-trace.jsonl" \
    --events-out "$WIRE_DIR/server-events.jsonl" > "$WIRE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$WIRE_DIR/port" ] && break
    sleep 0.1
done
test -s "$WIRE_DIR/port" || { echo "serve never published its port"; cat "$WIRE_DIR/serve.log"; exit 1; }
WIRE_PORT="$(cat "$WIRE_DIR/port")"
python -m repro loadgen --port "$WIRE_PORT" -n 12 --seed 3 --clusters 4 \
    --stream 200 --mode closed --concurrency 4 --warmup 20 \
    --json-out "$WIRE_DIR/load.json" \
    --trace "$WIRE_DIR/client-trace.jsonl"
python -m repro loadgen --port "$WIRE_PORT" -n 12 --seed 3 --clusters 4 \
    --stream 100 --mode open --rate 2000

echo "== admin channel: live metrics/health/slo over the serving port =="
# grep without -q here too: -q exits on the first match and the
# early-closed pipe would kill the admin CLI with BrokenPipeError.
python -m repro admin metrics --port "$WIRE_PORT" \
    | grep "wire_requests_total" > /dev/null
python -m repro admin health --port "$WIRE_PORT" \
    | grep "wire_saturation" > /dev/null
python -m repro admin slo --port "$WIRE_PORT" > /dev/null
python -m repro admin slowest --port "$WIRE_PORT" --limit 3 \
    | grep '"name": "request"' > /dev/null
python -m repro admin events --port "$WIRE_PORT" \
    | grep "conn_open" > /dev/null

# Graceful drain: SIGTERM must exit 0 with nothing left in flight...
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "drained:" "$WIRE_DIR/serve.log"
grep -q " 0 in flight" "$WIRE_DIR/serve.log"
# ...and leave no stray listener behind on the port.
if python - "$WIRE_PORT" <<'PY'
import socket, sys
probe = socket.socket()
probe.settimeout(1.0)
code = probe.connect_ex(("127.0.0.1", int(sys.argv[1])))
probe.close()
sys.exit(0 if code == 0 else 1)
PY
then
    echo "stray listener still alive on port $WIRE_PORT after drain"
    exit 1
fi
test -s "$WIRE_DIR/load.json"

echo "== cross-process trace assembly from the two journals =="
test -s "$WIRE_DIR/server-trace.jsonl"
test -s "$WIRE_DIR/client-trace.jsonl"
python -m repro trace-assemble \
    --client "$WIRE_DIR/client-trace.jsonl" \
    --server "$WIRE_DIR/server-trace.jsonl" \
    --max-traces 1 --json-out "$WIRE_DIR/merged.json" \
    | grep "cross-process trace(s)" > /dev/null
python - "$WIRE_DIR/merged.json" <<'PY'
import json, sys
merged = json.load(open(sys.argv[1]))
assert merged["matched_pairs"] > 0, merged
assert merged["cross_traces"] == merged["matched_pairs"], merged
PY
rm -rf "$WIRE_DIR"

echo "== throughput + observability-overhead benchmarks (smoke sizes) =="
python -m pytest benchmarks/bench_service_throughput.py \
    benchmarks/bench_obs_overhead.py benchmarks/bench_wire.py \
    -q -p no:cacheprovider
test -s BENCH_service.json

echo "service smoke checks passed"
