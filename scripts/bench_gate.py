#!/usr/bin/env python
"""CI perf-regression gate over ``BENCH_service.json``.

Compares a freshly produced benchmark JSON against a committed baseline
(``benchmarks/baselines/``) under a declarative tolerance policy and
exits non-zero when a gated metric regresses -- the job that stops a
"small refactor" from silently re-inflating the equation count the
paper's grouping decomposition exists to shrink.

Policy file (``benchmarks/baselines/tolerances.json``)::

    {
      "default": {"mode": "informational"},
      "rules": [
        {"pattern": "*.runs.*.equations", "mode": "exact"},
        {"pattern": "obs_overhead_*.disabled_ratio",
         "mode": "max", "limit": 1.5},
        {"pattern": "*.rps", "mode": "min", "limit_ratio": 0.4},
        ...
      ]
    }

Rules are matched with :func:`fnmatch.fnmatch` against the dotted path
of every numeric/boolean leaf (e.g. ``throughput_vs_shards.runs.4.
equations``); the first matching rule wins, the ``default`` applies
otherwise.  Modes:

* ``exact`` -- value must equal the baseline.  Used for deterministic
  counters (equations checked, batches, accepted verdicts, smoke flags):
  these cannot flake, so any drift is a real behavior change.
* ``max`` -- value must stay under ``limit`` (absolute) and/or
  ``baseline * limit_ratio``.  Used for overhead ratios.
* ``min`` -- value must stay above ``limit`` and/or
  ``baseline * limit_ratio``.  Used for throughput floors.
* ``informational`` -- reported, never failing.  Used for raw
  wall-clock seconds, which CI runners cannot reproduce faithfully.

A metric present in the baseline but missing from the current run is a
failure (a silently dropped benchmark is itself a regression); new
metrics absent from the baseline are reported informationally.

When ``--runs-dir`` points at a run registry
(``benchmarks/runs/registry.jsonl``) and the gate fails, the report
gains a regression-attribution section: the registry's two newest runs
of each kind are diffed with :func:`repro.obs.runs.attribute`, naming
the phase and counters that moved.  Attribution never changes the exit
code -- it annotates a failure, it does not create or excuse one.

Exit codes: 0 clean, 1 regression(s), 2 usage/IO error.  Importable:
the test suite drives :func:`compare` with synthetic regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: The gate runs both as ``python scripts/bench_gate.py`` (CI, no
#: PYTHONPATH) and as an import from the test suite; attribution needs
#: the library either way.
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

__all__ = [
    "Finding",
    "attribution_section",
    "compare",
    "flatten",
    "load_json",
    "main",
    "render_report",
]

#: Verdicts a finding can carry.
PASS = "pass"
FAIL = "fail"
INFO = "info"


@dataclass(frozen=True)
class Finding:
    """One compared metric (or structural mismatch)."""

    path: str
    verdict: str
    mode: str
    baseline: Optional[float]
    current: Optional[float]
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "verdict": self.verdict,
            "mode": self.mode,
            "baseline": self.baseline,
            "current": self.current,
            "detail": self.detail,
        }


def load_json(path: str) -> Dict[str, object]:
    """Load one JSON file (raises on missing/malformed -- caller maps to
    exit code 2)."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def flatten(
    payload: object, prefix: str = ""
) -> Iterator[Tuple[str, object]]:
    """Yield ``(dotted path, leaf value)`` for every scalar leaf."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            inner = f"{prefix}.{key}" if prefix else str(key)
            yield from flatten(payload[key], inner)
    elif isinstance(payload, (list, tuple)):
        for index, item in enumerate(payload):
            yield from flatten(item, f"{prefix}.{index}")
    else:
        yield prefix, payload


def _match_rule(
    path: str, rules: Sequence[Dict[str, object]], default: Dict[str, object]
) -> Dict[str, object]:
    for rule in rules:
        if fnmatch(path, str(rule.get("pattern", ""))):
            return rule
    return default


def _check(
    path: str, rule: Dict[str, object], base: object, cur: object
) -> Finding:
    mode = str(rule.get("mode", "informational"))
    if mode == "exact":
        ok = base == cur
        return Finding(
            path, PASS if ok else FAIL, mode,
            base if isinstance(base, (int, float)) else None,
            cur if isinstance(cur, (int, float)) else None,
            "matches baseline" if ok
            else f"expected {base!r}, got {cur!r}",
        )
    if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
        return Finding(
            path, INFO, mode, None, None,
            f"non-numeric ({base!r} -> {cur!r}), not gated",
        )
    if mode == "informational":
        delta = cur - base
        return Finding(
            path, INFO, mode, float(base), float(cur),
            f"{base:g} -> {cur:g} ({delta:+g})",
        )
    if mode in ("max", "min"):
        bounds: List[float] = []
        if "limit" in rule:
            bounds.append(float(rule["limit"]))
        if "limit_ratio" in rule:
            bounds.append(float(base) * float(rule["limit_ratio"]))
        if not bounds:
            return Finding(
                path, FAIL, mode, float(base), float(cur),
                "rule has neither 'limit' nor 'limit_ratio'",
            )
        if mode == "max":
            bound = min(bounds)
            ok = cur <= bound
            relation = "<="
        else:
            bound = max(bounds)
            ok = cur >= bound
            relation = ">="
        return Finding(
            path, PASS if ok else FAIL, mode, float(base), float(cur),
            f"{cur:g} {relation} bound {bound:g}" if ok
            else f"{cur:g} violates bound {bound:g} (baseline {base:g})",
        )
    return Finding(
        path, FAIL, mode, None, None, f"unknown tolerance mode {mode!r}"
    )


def compare(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerances: Dict[str, object],
) -> List[Finding]:
    """Compare two benchmark payloads under a tolerance policy."""
    rules = list(tolerances.get("rules", []))
    default = dict(tolerances.get("default", {"mode": "informational"}))
    base_leaves = dict(flatten(baseline))
    cur_leaves = dict(flatten(current))
    findings: List[Finding] = []
    for path, base in base_leaves.items():
        rule = _match_rule(path, rules, default)
        if path not in cur_leaves:
            findings.append(
                Finding(
                    path, FAIL, str(rule.get("mode", "informational")),
                    base if isinstance(base, (int, float)) else None, None,
                    "metric missing from current run",
                )
            )
            continue
        findings.append(_check(path, rule, base, cur_leaves[path]))
    for path, cur in cur_leaves.items():
        if path not in base_leaves:
            findings.append(
                Finding(
                    path, INFO, "new",
                    None, cur if isinstance(cur, (int, float)) else None,
                    "not in baseline (new metric)",
                )
            )
    return findings


def render_report(findings: Sequence[Finding]) -> str:
    """Return the human-readable comparison report."""
    counts = {PASS: 0, FAIL: 0, INFO: 0}
    lines: List[str] = []
    for finding in findings:
        counts[finding.verdict] += 1
        if finding.verdict == FAIL:
            lines.append(
                f"FAIL [{finding.mode}] {finding.path}: {finding.detail}"
            )
    for finding in findings:
        if finding.verdict == INFO and finding.mode != "new":
            lines.append(
                f"info [{finding.mode}] {finding.path}: {finding.detail}"
            )
    lines.append(
        f"bench gate: {counts[PASS]} gated pass, {counts[FAIL]} fail, "
        f"{counts[INFO]} informational"
    )
    return "\n".join(lines)


def attribution_section(runs_dir: str) -> str:
    """Render regression attribution from a run registry, best-effort.

    Diffs the newest run of every kind against its predecessor.  All
    failures (no registry, single run, malformed records, incomparable
    runs) degrade to an explanatory line -- the gate's verdict must
    never depend on whether attribution could run.
    """
    try:
        from repro.errors import RunRegistryError
        from repro.obs.runs import RunRegistry, attribute
    except ImportError as exc:  # pragma: no cover - import is path-pinned
        return f"attribution unavailable: {exc}"
    registry = RunRegistry(runs_dir)
    try:
        kinds = registry.kinds()
    except RunRegistryError as exc:
        return f"attribution unavailable: {exc}"
    if not kinds:
        return f"attribution unavailable: no runs recorded in {registry.path}"
    sections: List[str] = []
    for kind in kinds:
        current = registry.latest(kind)
        baseline = registry.baseline(kind)
        if baseline is None or current is None:
            sections.append(
                f"attribution ({kind}): only one run recorded, no baseline"
            )
            continue
        try:
            sections.append(attribute(baseline, current).render())
        except RunRegistryError as exc:
            sections.append(f"attribution ({kind}) unavailable: {exc}")
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare benchmark JSON against a committed baseline."
    )
    parser.add_argument(
        "--baseline", required=True, help="committed baseline JSON"
    )
    parser.add_argument(
        "--current", required=True, help="freshly produced benchmark JSON"
    )
    parser.add_argument(
        "--tolerances", required=True, help="tolerance policy JSON"
    )
    parser.add_argument(
        "--report-out", default=None,
        help="also write the findings as JSON (CI artifact)",
    )
    parser.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="run registry directory; on failure the report gains a "
             "regression-attribution section naming the responsible "
             "phase/counter deltas (exit codes unchanged)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_json(args.baseline)
        current = load_json(args.current)
        tolerances = load_json(args.tolerances)
    except (OSError, ValueError) as exc:
        print(f"bench_gate: {exc}", file=sys.stderr)
        return 2
    findings = compare(baseline, current, tolerances)
    print(render_report(findings))
    if args.runs_dir and any(f.verdict == FAIL for f in findings):
        print()
        print(attribution_section(args.runs_dir))
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "baseline": args.baseline,
                    "current": args.current,
                    "failures": sum(f.verdict == FAIL for f in findings),
                    "findings": [f.to_dict() for f in findings],
                },
                handle, indent=2, sort_keys=True,
            )
            handle.write("\n")
    return 1 if any(f.verdict == FAIL for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
