"""Caches for the validation service: match memoization + group tables.

Two cache kinds with very different lifetimes:

* :class:`MatchCache` -- an LRU memo of instance-match results keyed by
  the request's *geometry* (scope + box extents).  Usage-license streams
  are heavily repetitive at serving scale (popular content, popular
  regions), so identical boxes recur; the match set depends only on the
  box and the pool, never on the log, making memoization exact.
* :class:`GroupTables` -- the derived lookup structures of one pool
  epoch: the group partition, the ``{license -> group}`` map, per-group
  masks and member tuples.  They are computed once per pool version and
  shared read-only by every shard; :meth:`GroupTables.refresh` bumps the
  epoch when the pool (and hence possibly the grouping) changes, which
  also invalidates any match cache wired to the same epoch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import ServiceError
from repro.core.grouping import GroupStructure, form_groups
from repro.core.overlap import OverlapGraph
from repro.geometry.interval import Interval
from repro.licenses.license import UsageLicense
from repro.licenses.pool import LicensePool
from repro.matching.index import IndexedMatcher

__all__ = ["LRUCache", "MatchCache", "GroupTables", "request_key"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A plain least-recently-used cache with hit/miss accounting.

    Examples
    --------
    >>> cache = LRUCache(2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None      # evicted: capacity 2
    True
    >>> cache.get("c")
    3
    >>> cache.hits, cache.misses
    (1, 1)
    """

    def __init__(
        self,
        maxsize: int,
        on_evict: Optional[Callable[[K, V], None]] = None,
    ):
        if maxsize < 1:
            raise ServiceError(f"LRU cache needs maxsize >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._on_evict = on_evict

    def get(self, key: K) -> Optional[V]:
        """Return the cached value (refreshing recency), or ``None``."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: K, value: V) -> None:
        """Insert a value, evicting the least-recently-used on overflow.

        Evictions invoke the ``on_evict(key, value)`` callback (when one
        was configured) *after* the entry is gone, so the callback sees a
        consistent cache."""
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.maxsize:
            evicted_key, evicted_value = self._data.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(evicted_key, evicted_value)

    def clear(self) -> None:
        """Drop every entry (accounting is preserved)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


def request_key(usage: UsageLicense) -> Tuple:
    """Return a hashable signature of a request's match-relevant fields.

    Two usage licenses with equal keys are guaranteed the same match set
    against any fixed pool: matching reads only scope (content id,
    permission) and the constraint box.
    """
    extents = []
    for extent in usage.box.extents:
        if isinstance(extent, Interval):
            extents.append(("i", extent.low, extent.high))
        else:
            extents.append(("d", tuple(sorted(extent.atoms))))
    return (usage.content_id, usage.permission, tuple(extents))


class MatchCache:
    """An :class:`IndexedMatcher` wrapped in an LRU memo.

    ``maxsize == 0`` disables memoization (every query hits the matcher),
    so callers can keep one code path for both configurations.
    """

    def __init__(
        self,
        matcher: IndexedMatcher,
        maxsize: int = 4096,
        on_evict: Optional[Callable[[Tuple, FrozenSet[int]], None]] = None,
    ):
        self._matcher = matcher
        self._cache: Optional[LRUCache[Tuple, FrozenSet[int]]] = (
            LRUCache(maxsize, on_evict) if maxsize else None
        )

    @property
    def hits(self) -> int:
        """Return cache hits (0 when caching is disabled)."""
        return self._cache.hits if self._cache else 0

    @property
    def misses(self) -> int:
        """Return cache misses (0 when caching is disabled)."""
        return self._cache.misses if self._cache else 0

    @property
    def evictions(self) -> int:
        """Return LRU evictions (0 when caching is disabled)."""
        return self._cache.evictions if self._cache else 0

    def match(self, usage: UsageLicense) -> FrozenSet[int]:
        """Return the match set, memoized by request geometry."""
        if self._cache is None:
            return self._matcher.match(usage)
        key = request_key(usage)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._matcher.match(usage)
        self._cache.put(key, result)
        return result

    def invalidate(self) -> None:
        """Drop all memoized match sets (pool changed)."""
        if self._cache is not None:
            self._cache.clear()


class GroupTables:
    """Derived group-lookup tables for one pool epoch.

    Built once per pool version and shared read-only: the group
    partition, the bulk ``{license index -> group id}`` map, per-group
    bitmasks and sorted member tuples.  :meth:`refresh` recomputes
    everything and bumps :attr:`epoch` so dependent caches know their
    entries are stale.
    """

    def __init__(self, pool: LicensePool):
        self._pool = pool
        self.epoch = 0
        #: Optional ``callback(old_group_count, new_group_count, epoch)``
        #: invoked after :meth:`refresh` -- the hook the observability
        #: layer uses to journal group split/merge events.
        self.on_refresh: Optional[Callable[[int, int, int], None]] = None
        self._build()

    def _build(self) -> None:
        self.structure: GroupStructure = form_groups(
            OverlapGraph.from_boxes(self._pool.boxes())
        )
        self.aggregates = self._pool.aggregate_array()
        self.group_of: Dict[int, int] = self.structure.group_lookup()
        self.masks: Tuple[int, ...] = self.structure.masks()
        self.members: Tuple[Tuple[int, ...], ...] = tuple(
            self.structure.sorted_members(k) for k in range(self.structure.count)
        )

    @property
    def group_count(self) -> int:
        """Return the number of disconnected groups."""
        return self.structure.count

    def refresh(self) -> int:
        """Recompute all tables from the pool; return the new epoch."""
        old_count = self.group_count
        self._build()
        self.epoch += 1
        if self.on_refresh is not None:
            self.on_refresh(old_count, self.group_count, self.epoch)
        return self.epoch
