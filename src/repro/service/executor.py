"""Executor backends: how shard drains are scheduled onto hardware.

Every backend obeys the same contract: given the shards that currently
have pending work, run each shard's :meth:`GroupShard.process_pending`
exactly once, never running the same shard from two workers, and return
``{shard_id: (results, stats)}``.  Because one drain of one shard is a
single task, per-shard serialization is structural -- no locks needed.

* :class:`SerialExecutor` -- runs shards in-caller, ascending shard id.
  The reference backend: zero overhead, fully deterministic scheduling.
* :class:`ThreadExecutor` -- a ``ThreadPoolExecutor`` with one task per
  shard.  Concurrency across groups; true parallelism arrives on
  free-threaded CPython builds (under the GIL it still overlaps any
  releases inside numpy-backed matching).
* :class:`ProcessExecutor` (backend name ``process-roundtrip``) -- ships
  each busy shard to a worker process and replaces the local shard
  object with the mutated copy that comes back.  State round-trips by
  pickle each drain -- O(state) IPC -- which is why it lost to serial
  and is now superseded; it stays for one release so the parity suite
  can pin all four backends byte-identical.
* :class:`~repro.service.resident.ResidentProcessExecutor` (backend
  name ``resident``; ``process`` is an alias) -- long-lived workers own
  their shards' state, only pending batches and verdicts cross the
  pipe: O(batch) IPC per drain.  See :mod:`repro.service.resident`.

All backends produce identical verdict streams for identical inputs
(the determinism and parity tests pin this).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.service.shard import GroupShard, ShardResult, ShardSpec, ShardStats

__all__ = [
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "resolve_backend",
]

#: One shard's drain output.
DrainOutput = Tuple[List[ShardResult], ShardStats]


def _drain_shard(shard: GroupShard) -> DrainOutput:
    return shard.process_pending()


def _drain_shard_roundtrip(shard: GroupShard) -> Tuple[GroupShard, DrainOutput]:
    # Round-trip backend: the worker mutates its pickled copy of the
    # shard, so the mutated object must travel back to the coordinator.
    return shard, shard.process_pending()


class SerialExecutor:
    """Run busy shards one after another in the calling thread."""

    name = "serial"

    def drain(self, shards: List[GroupShard]) -> Dict[int, DrainOutput]:
        """Drain each shard; return ``{shard_id: (results, stats)}``."""
        return {shard.shard_id: _drain_shard(shard) for shard in shards}

    def close(self) -> None:
        """No resources to release."""


class ThreadExecutor:
    """Drain shards concurrently on a thread pool (one task per shard)."""

    name = "thread"

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-shard"
        )

    def drain(self, shards: List[GroupShard]) -> Dict[int, DrainOutput]:
        """Drain each shard on the pool; block until all complete."""
        futures = {
            shard.shard_id: self._pool.submit(_drain_shard, shard)
            for shard in shards
        }
        return {shard_id: future.result() for shard_id, future in futures.items()}

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight drains."""
        self._pool.shutdown(wait=True)


class ProcessExecutor:
    """Drain shards on worker processes, round-tripping shard state.

    Stateless workers: each drain pickles the shard out, processes it in
    the worker, and pickles the mutated shard back.  The coordinator then
    adopts the returned object as the shard's new state, so successive
    drains compose exactly as in the serial backend.

    Adoption is **all-or-nothing**: every worker future is resolved
    before any mutated shard replaces the caller's copy, so if any
    shard's drain raises, the coordinator's shard table is left exactly
    as it was before the drain -- no partially-adopted state (their
    pending queues were consumed inside throwaway pickled copies, so
    the originals still hold every request).
    """

    name = "process-roundtrip"

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self._pool = ProcessPoolExecutor(max_workers=max_workers)

    def drain(self, shards: List[GroupShard]) -> Dict[int, DrainOutput]:
        """Drain each shard in a worker process; adopt returned state.

        The mutated shards replace the caller's copies **in place in the
        provided list**, so the service's shard table stays current --
        but only after *every* future has resolved successfully (see the
        class docstring for the all-or-nothing contract).
        """
        futures = {
            position: self._pool.submit(_drain_shard_roundtrip, shard)
            for position, shard in enumerate(shards)
        }
        resolved: List[Tuple[int, GroupShard, DrainOutput]] = []
        error: Optional[BaseException] = None
        for position, future in futures.items():
            try:
                mutated, output = future.result()
            except BaseException as exc:  # collect, keep resolving the rest
                if error is None:
                    error = exc
                continue
            resolved.append((position, mutated, output))
        if error is not None:
            raise error
        outputs: Dict[int, DrainOutput] = {}
        for position, mutated, output in resolved:
            shards[position] = mutated
            outputs[mutated.shard_id] = output
        return outputs

    def close(self) -> None:
        """Shut the worker pool down."""
        self._pool.shutdown(wait=True)


#: Deprecated aliases accepted by :func:`resolve_backend`.  ``process``
#: now means the resident backend -- the round-trip implementation it
#: used to name survives one release as ``process-roundtrip``.
_BACKEND_ALIASES = {"process": "resident"}


def resolve_backend(backend: str) -> str:
    """Return the canonical backend name (resolving aliases)."""
    return _BACKEND_ALIASES.get(backend, backend)


def make_executor(
    backend: str,
    max_workers: int,
    specs: Optional[Sequence[ShardSpec]] = None,
):
    """Build the executor for a backend name (see module docstring).

    ``specs`` is required by (and only by) the resident backend, which
    rebuilds its shards inside the workers at startup.
    """
    backend = resolve_backend(backend)
    if backend == "serial":
        return SerialExecutor()
    if backend == "thread":
        return ThreadExecutor(max_workers)
    if backend == "process-roundtrip":
        return ProcessExecutor(max_workers)
    if backend == "resident":
        if specs is None:
            raise ServiceError(
                "resident backend needs shard specs (workers rebuild "
                "their shards from them at startup)"
            )
        from repro.service.resident import ResidentProcessExecutor

        return ResidentProcessExecutor(specs, max_workers)
    raise ServiceError(f"unknown executor backend {backend!r}")
