"""Metrics for the validation service: counters, gauges, histograms, hooks.

A tiny, dependency-free registry shaped like the usual production metric
kinds:

* :class:`Counter` -- monotone totals, optionally split by a label tuple
  (``requests_total{result=rejected, reason=equation}``);
* :class:`Gauge` -- last-written values (per-shard queue depths);
* :class:`Histogram` -- latency samples with p50/p95/p99 summaries.

Every observation also fans out to registered *hooks* --
``hook(metric, labels, value)`` callables -- so benchmarks and the
:mod:`repro.analysis` layer can stream service events without polling the
registry.  The registry itself is intentionally not thread-safe per metric
*cell*; the service routes all observations through its coordinator
thread, and Python-level ``dict``/`int`` updates of distinct metrics are
safe under concurrent shard workers.

Examples
--------
>>> registry = MetricsRegistry()
>>> registry.counter("requests_total").inc(("accepted",))
>>> registry.counter("requests_total").inc(("rejected", "instance"), 2)
>>> registry.counter("requests_total").total()
3
>>> registry.histogram("latency_seconds").observe(0.25)
>>> registry.histogram("latency_seconds").quantile(0.5)
0.25
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.obs.quantiles import nearest_rank

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricHook",
]

#: Signature of an event hook: ``(metric_name, labels, value)``.
MetricHook = Callable[[str, Tuple[str, ...], float], None]

#: Labels applied when an observation carries none.
_NO_LABELS: Tuple[str, ...] = ()


class Counter:
    """A monotone counter, optionally partitioned by a label tuple."""

    def __init__(self, name: str, emit: MetricHook):
        self.name = name
        self._emit = emit
        self._cells: Dict[Tuple[str, ...], int] = {}

    def inc(self, labels: Tuple[str, ...] = _NO_LABELS, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the labelled cell."""
        if amount < 0:
            raise ServiceError(f"counter {self.name} cannot decrease by {amount}")
        self._cells[labels] = self._cells.get(labels, 0) + amount
        self._emit(self.name, labels, float(amount))

    def value(self, labels: Tuple[str, ...] = _NO_LABELS) -> int:
        """Return one labelled cell (0 if never incremented)."""
        return self._cells.get(labels, 0)

    def total(self) -> int:
        """Return the sum across all label cells."""
        return sum(self._cells.values())

    def cells(self) -> Dict[Tuple[str, ...], int]:
        """Return a copy of the per-label cells."""
        return dict(self._cells)


class Gauge:
    """A last-value gauge, optionally partitioned by a label tuple."""

    def __init__(self, name: str, emit: MetricHook):
        self.name = name
        self._emit = emit
        self._cells: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, labels: Tuple[str, ...] = _NO_LABELS) -> None:
        """Overwrite the labelled cell."""
        self._cells[labels] = value
        self._emit(self.name, labels, float(value))

    def value(self, labels: Tuple[str, ...] = _NO_LABELS) -> float:
        """Return one labelled cell (0.0 if never set)."""
        return self._cells.get(labels, 0.0)

    def cells(self) -> Dict[Tuple[str, ...], float]:
        """Return a copy of the per-label cells."""
        return dict(self._cells)


class Histogram:
    """A sample histogram with exact quantiles over a bounded window.

    Samples are kept sorted (insertion via ``bisect``); beyond
    ``max_samples`` the *earliest-inserted* samples are forgotten, making
    quantiles/``max`` a sliding window rather than an all-time aggregate.
    The histogram therefore carries **two scopes** and :meth:`summary`
    reports both explicitly:

    * all-time: ``count``, ``sum``, ``mean`` -- monotone totals over every
      sample ever observed (what Prometheus ``_count``/``_sum`` series
      mean);
    * window: ``window_count``, ``window_sum``, ``p50``/``p95``/``p99``,
      ``max`` -- computed over at most the ``max_samples`` most recent
      samples.

    The two scopes coincide until the window first overflows.
    """

    def __init__(self, name: str, emit: MetricHook, max_samples: int = 65536):
        if max_samples < 1:
            raise ServiceError(f"histogram {name} needs max_samples >= 1")
        self.name = name
        self._emit = emit
        self._max = max_samples
        self._sorted: List[float] = []
        # Insertion order for window eviction; a deque so evicting the
        # oldest sample is O(1) instead of list.pop(0)'s O(n).
        self._order: Deque[float] = deque()
        self.count = 0
        self.sum = 0.0
        self.window_sum = 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.sum += float(value)
        self.window_sum += float(value)
        insort(self._sorted, float(value))
        self._order.append(float(value))
        if len(self._order) > self._max:
            oldest = self._order.popleft()
            self._sorted.pop(bisect_left(self._sorted, oldest))
            self.window_sum -= oldest
        self._emit(self.name, _NO_LABELS, float(value))

    @property
    def window_count(self) -> int:
        """Return how many samples the sliding window currently holds."""
        return len(self._order)

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (nearest-rank) of the current window.

        Returns 0.0 on an empty histogram.  Delegates to the shared
        :func:`repro.obs.quantiles.nearest_rank` (round convention) --
        the window list is kept sorted, so no re-sort happens here.
        """
        if not 0.0 <= q <= 1.0:
            raise ServiceError(f"quantile {q} outside [0, 1]")
        return nearest_rank(self._sorted, q, presorted=True)

    def summary(self) -> Dict[str, float]:
        """Return both scopes of the histogram in one flat dict.

        All-time: ``count``, ``sum``, ``mean``.  Window-scoped (the most
        recent ``max_samples`` samples): ``window_count``, ``window_sum``,
        ``p50``/``p95``/``p99``, ``max``.
        """
        mean = self.sum / self.count if self.count else 0.0
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": mean,
            "window_count": float(self.window_count),
            "window_sum": self.window_sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self._sorted[-1] if self._sorted else 0.0,
        }


class MetricsRegistry:
    """Create-or-lookup registry of named metrics plus event hooks."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._hooks: List[MetricHook] = []

    # ------------------------------------------------------------------
    # Metric access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Return the named counter, creating it on first use."""
        if name not in self._counters:
            self._counters[name] = Counter(name, self._fanout)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Return the named gauge, creating it on first use."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, self._fanout)
        return self._gauges[name]

    def histogram(self, name: str, max_samples: int = 65536) -> Histogram:
        """Return the named histogram, creating it on first use."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, self._fanout, max_samples)
        return self._histograms[name]

    def counters(self) -> Dict[str, Counter]:
        """Return a copy of the registered counters by name."""
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        """Return a copy of the registered gauges by name."""
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        """Return a copy of the registered histograms by name."""
        return dict(self._histograms)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def add_hook(self, hook: MetricHook) -> None:
        """Register a callable invoked on every metric observation."""
        self._hooks.append(hook)

    def _fanout(self, name: str, labels: Tuple[str, ...], value: float) -> None:
        for hook in self._hooks:
            hook(name, labels, value)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Return a plain-dict dump of every metric (JSON-friendly)."""
        return {
            "counters": {
                name: {",".join(labels) or "_": count
                       for labels, count in counter.cells().items()}
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: {",".join(labels) or "_": value
                       for labels, value in gauge.cells().items()}
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def render(self, title: Optional[str] = None) -> str:
        """Return a human-readable metrics report."""
        lines: List[str] = []
        if title:
            lines.append(title)
            lines.append("=" * len(title))
        for name, counter in sorted(self._counters.items()):
            for labels, count in sorted(counter.cells().items()):
                suffix = "{" + ",".join(labels) + "}" if labels else ""
                lines.append(f"{name}{suffix} {count}")
        for name, gauge in sorted(self._gauges.items()):
            for labels, value in sorted(gauge.cells().items()):
                suffix = "{" + ",".join(labels) + "}" if labels else ""
                lines.append(f"{name}{suffix} {value:g}")
        for name, histogram in sorted(self._histograms.items()):
            summary = histogram.summary()
            lines.append(
                f"{name} count={int(summary['count'])} "
                f"window={int(summary['window_count'])} "
                f"mean={summary['mean']:.6f} "
                f"p50={summary['p50']:.6f} p95={summary['p95']:.6f} "
                f"p99={summary['p99']:.6f} max={summary['max']:.6f}"
            )
        return "\n".join(lines)
