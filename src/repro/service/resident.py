"""Resident shard workers: zero-copy process parallelism for drains.

The round-trip process backend (:class:`repro.service.executor
.ProcessExecutor`) pickles every busy shard's *entire* state out and
back on every drain -- including the dense kernel's ``C``/``H`` int64
tables, up to ``2 x 8 MiB`` per group at ``kernel_cap=20`` -- so its
per-drain cost is O(state), not O(batch).  This module replaces that
with **resident workers**:

* Each long-lived worker process permanently owns a fixed set of
  shards, rebuilt in-worker once at startup from a
  :class:`~repro.service.shard.ShardSpec` (small, static: group
  structure + aggregates + preload log + shared-plane names).
* A drain ships only the pending :class:`ShardRequest` batches, encoded
  as compact tuples over a per-worker pipe, and gets back
  :class:`ShardResult` rows plus :class:`ShardStats` -- per-drain IPC
  is O(batch size) regardless of group size (the benchmark's
  ``bytes_shipped_per_drain`` counter pins this).
* Dense-kernel groups sit on coordinator-created
  ``multiprocessing.shared_memory`` planes
  (:class:`repro.core.kernel.KernelPlane`): the owning worker writes
  them, the coordinator reads kernel occupancy zero-copy for
  admin/monitor queries -- no worker round-trip.

Ownership and ordering contract (see DESIGN.md "Serving architecture"):

* A shard is mutated by exactly one worker, always from its message
  loop -- per-shard serialization is structural, as in every other
  backend, so verdict streams are byte-identical to serial.
* Drains are two-phase: the coordinator sends every involved worker its
  batch first, then collects every reply, so workers run concurrently.
* On any worker error the coordinator requeues the taken requests (its
  own view returns to exactly the pre-drain state), marks the executor
  failed -- the erroring worker's state can no longer be trusted -- and
  raises :class:`~repro.errors.ServiceError` carrying the worker
  traceback.
* Shutdown: workers close (never unlink) their attached planes and
  exit on the ``close`` message; the coordinator joins them *before*
  the service unlinks the shared segments, so no worker ever maps a
  vanished name.
"""

from __future__ import annotations

import pickle
import threading
import traceback
from multiprocessing import Pipe, Process
from multiprocessing.connection import Connection
from typing import Dict, List, Sequence, Tuple

from repro.errors import ServiceError
from repro.service.shard import (
    BatchTiming,
    GroupShard,
    RevalidationTiming,
    ShardRequest,
    ShardResult,
    ShardSpec,
    ShardStats,
)

__all__ = [
    "ResidentProcessExecutor",
    "decode_request",
    "decode_result",
    "decode_stats",
    "encode_request",
    "encode_result",
    "encode_stats",
]

#: One shard's drain output (mirrors ``executor.DrainOutput``).
DrainOutput = Tuple[List[ShardResult], ShardStats]

#: Wire rows are plain tuples; pickle protocol pinned for stable framing.
_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Compact wire aliases (documentation only -- everything is tuples).
RequestRow = Tuple[int, str, int, Tuple[int, ...], int, float]
ResultRow = Tuple[
    int, str, int, Tuple[int, ...], int, bool, object, int, float, float, float
]


# ----------------------------------------------------------------------
# Wire format: requests / results / stats as compact tuples
# ----------------------------------------------------------------------
def encode_request(request: ShardRequest) -> RequestRow:
    """Flatten one pending request into its wire tuple."""
    return (
        request.seq,
        request.usage_id,
        request.group_id,
        request.members,
        request.count,
        request.submitted_at,
    )


def decode_request(row: RequestRow) -> ShardRequest:
    """Rebuild a :class:`ShardRequest` from its wire tuple."""
    return ShardRequest(
        seq=row[0],
        usage_id=row[1],
        group_id=row[2],
        members=tuple(row[3]),
        count=row[4],
        submitted_at=row[5],
    )


def encode_result(result: ShardResult) -> Tuple[object, ...]:
    """Flatten one verdict into its wire tuple."""
    return (
        result.seq,
        result.usage_id,
        result.group_id,
        result.members,
        result.count,
        result.accepted,
        result.reason,
        result.headroom,
        result.service_time,
        result.submitted_at,
        result.processed_at,
    )


def decode_result(row: Sequence[object]) -> ShardResult:
    """Rebuild a :class:`ShardResult` from its wire tuple."""
    return ShardResult(*row)  # type: ignore[arg-type]


def encode_stats(stats: ShardStats) -> Tuple[object, ...]:
    """Flatten one drain's :class:`ShardStats` into its wire tuple.

    ``per_group`` travels as sorted items and ``batch_timings`` as
    nested tuples, so the payload stays deterministic and O(batch).
    """
    return (
        stats.processed,
        stats.accepted,
        stats.rejected,
        stats.batches,
        stats.equations_checked,
        stats.audit_violations,
        stats.kernel_fast_path_hits,
        stats.kernel_fallback,
        tuple(sorted(stats.per_group.items())),
        tuple(
            (
                timing.shard_id,
                timing.size,
                timing.started,
                timing.duration,
                tuple(
                    (
                        reval.group_id,
                        reval.equations_checked,
                        reval.violations,
                        reval.started,
                        reval.duration,
                    )
                    for reval in timing.revalidations
                ),
            )
            for timing in stats.batch_timings
        ),
    )


def decode_stats(row: Sequence[object]) -> ShardStats:
    """Rebuild :class:`ShardStats` from its wire tuple."""
    per_group = dict(row[8])  # type: ignore[call-overload]
    timings = [
        BatchTiming(
            shard_id=t[0],
            size=t[1],
            started=t[2],
            duration=t[3],
            revalidations=tuple(
                RevalidationTiming(
                    group_id=r[0],
                    equations_checked=r[1],
                    violations=r[2],
                    started=r[3],
                    duration=r[4],
                )
                for r in t[4]
            ),
        )
        for t in row[9]  # type: ignore[union-attr]
    ]
    return ShardStats(
        processed=row[0],  # type: ignore[arg-type]
        accepted=row[1],  # type: ignore[arg-type]
        rejected=row[2],  # type: ignore[arg-type]
        batches=row[3],  # type: ignore[arg-type]
        equations_checked=row[4],  # type: ignore[arg-type]
        audit_violations=row[5],  # type: ignore[arg-type]
        kernel_fast_path_hits=row[6],  # type: ignore[arg-type]
        kernel_fallback=row[7],  # type: ignore[arg-type]
        per_group=per_group,
        batch_timings=timings,
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _worker_main(conn: Connection, specs: Sequence[ShardSpec]) -> None:
    """Message loop of one resident worker process.

    Rebuilds its shards from the specs (attaching to shared kernel
    planes where named), acknowledges readiness, then serves drains
    until the ``close`` message or a dropped pipe.  Every reply is one
    pickled tuple; errors travel back as ``("error", traceback)`` so
    the coordinator can raise them as :class:`ServiceError`.
    """
    shards: Dict[int, GroupShard] = {}
    try:
        try:
            for spec in specs:
                shards[spec.shard_id] = GroupShard.from_spec(spec)
        except BaseException:
            conn.send_bytes(
                pickle.dumps(("error", traceback.format_exc()), _PROTOCOL)
            )
            return
        conn.send_bytes(pickle.dumps(("ready", sorted(shards)), _PROTOCOL))
        while True:
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                break  # coordinator vanished; daemon exit
            message = pickle.loads(payload)
            kind = message[0]
            if kind == "close":
                conn.send_bytes(pickle.dumps(("closed",), _PROTOCOL))
                break
            if kind == "timings":
                for shard in shards.values():
                    shard.collect_timings = bool(message[1])
                conn.send_bytes(pickle.dumps(("ok",), _PROTOCOL))
                continue
            if kind == "drain":
                try:
                    sections: List[Tuple[int, object, object]] = []
                    for shard_id, rows in message[1]:
                        shard = shards[shard_id]
                        for row in rows:
                            shard.enqueue(decode_request(row))
                        results, stats = shard.process_pending()
                        sections.append(
                            (
                                shard_id,
                                tuple(encode_result(r) for r in results),
                                encode_stats(stats),
                            )
                        )
                    reply = pickle.dumps(("done", sections), _PROTOCOL)
                except BaseException:
                    reply = pickle.dumps(
                        ("error", traceback.format_exc()), _PROTOCOL
                    )
                conn.send_bytes(reply)
                continue
            conn.send_bytes(
                pickle.dumps(
                    ("error", f"unknown message kind {kind!r}"), _PROTOCOL
                )
            )
    finally:
        for shard in shards.values():
            shard.close_planes()
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class ResidentProcessExecutor:
    """Drain shards on long-lived worker processes that own their state.

    Construction ships each worker its :class:`ShardSpec` set exactly
    once (fork inherits it; spawn pickles it -- either way, specs are
    O(config + preload log), never live kernel tables) and blocks until
    every worker acknowledges readiness.  Thereafter
    :meth:`drain` moves only pending batches and verdicts.

    The coordinator's ``shards`` list keeps its *original* (stale)
    shard objects: queue management still happens there, but equation
    state advances only inside the owning worker.  A service using this
    backend therefore reads group/kernel state through the shared
    planes, not through its local slices.
    """

    name = "resident"

    def __init__(self, specs: Sequence[ShardSpec], max_workers: int):
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        if not specs:
            raise ServiceError("resident executor needs at least one shard spec")
        self._lock = threading.Lock()
        workers = min(max_workers, len(specs))
        #: shard_id -> worker index (round-robin over ascending shard id).
        self._owner: Dict[int, int] = {
            spec.shard_id: position % workers
            for position, spec in enumerate(
                sorted(specs, key=lambda spec: spec.shard_id)
            )
        }
        assignments: List[List[ShardSpec]] = [[] for _ in range(workers)]
        for spec in sorted(specs, key=lambda spec: spec.shard_id):
            assignments[self._owner[spec.shard_id]].append(spec)
        self._conns: List[Connection] = []
        self._procs: List[Process] = []
        self._failed = False
        self._closed = False
        self._drains = 0
        self._bytes_shipped_total = 0
        self._last_drain_bytes = 0
        for worker_specs in assignments:
            parent_conn, child_conn = Pipe()
            proc = Process(
                target=_worker_main,
                args=(child_conn, tuple(worker_specs)),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        for conn in self._conns:
            ack = self._recv(conn)
            if ack[0] != "ready":
                with self._lock:
                    self._failed = True
                raise ServiceError(
                    f"resident worker failed to start: {ack[1]}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Return the number of resident worker processes."""
        return len(self._procs)

    @property
    def drains(self) -> int:
        """Return how many drains this executor has served."""
        return self._drains

    @property
    def last_drain_bytes(self) -> int:
        """Return the IPC bytes (requests out + replies in) of the most
        recent drain -- the O(batch) quantity the benchmark records."""
        return self._last_drain_bytes

    @property
    def bytes_shipped_total(self) -> int:
        """Return cumulative IPC bytes across all drains."""
        return self._bytes_shipped_total

    # ------------------------------------------------------------------
    # Contract methods
    # ------------------------------------------------------------------
    def drain(self, shards: List[GroupShard]) -> Dict[int, DrainOutput]:
        """Ship each busy shard's pending batch to its owning worker.

        Two-phase: all sends, then all receives, so workers overlap.
        On any failure the taken requests are requeued (coordinator
        state returns to exactly pre-drain) and the executor is marked
        failed -- worker state may have diverged and no further drains
        are accepted.
        """
        with self._lock:
            if self._failed or self._closed:
                raise ServiceError(
                    "resident executor is closed or failed; restart the service"
                )
            taken: Dict[int, List[ShardRequest]] = {}
            by_worker: Dict[int, List[Tuple[int, Tuple[RequestRow, ...]]]] = {}
            shard_index: Dict[int, GroupShard] = {}
            try:
                for shard in shards:
                    worker = self._owner.get(shard.shard_id)
                    if worker is None:
                        raise ServiceError(
                            f"shard {shard.shard_id} has no resident worker "
                            f"(executor built for shards {sorted(self._owner)})"
                        )
                    rows = shard.take_pending()
                    taken[shard.shard_id] = rows
                    shard_index[shard.shard_id] = shard
                    by_worker.setdefault(worker, []).append(
                        (
                            shard.shard_id,
                            tuple(encode_request(r) for r in rows),
                        )
                    )
                shipped = 0
                for worker, sections in sorted(by_worker.items()):
                    payload = pickle.dumps(("drain", sections), _PROTOCOL)
                    shipped += len(payload)
                    self._send(self._conns[worker], payload)
                outputs: Dict[int, DrainOutput] = {}
                for worker in sorted(by_worker):
                    reply, size = self._recv_sized(self._conns[worker])
                    shipped += size
                    if reply[0] != "done":
                        raise ServiceError(
                            f"resident worker {worker} drain failed: {reply[1]}"
                        )
                    for shard_id, result_rows, stats_row in reply[1]:
                        outputs[shard_id] = (
                            [decode_result(row) for row in result_rows],
                            decode_stats(stats_row),
                        )
            except BaseException:
                self._failed = True
                for shard_id, rows in taken.items():
                    shard_index[shard_id].requeue(rows)
                raise
            self._drains += 1
            self._last_drain_bytes = shipped
            self._bytes_shipped_total += shipped
            return outputs

    def set_collect_timings(self, flag: bool) -> None:
        """Broadcast the timing-collection flag to every worker."""
        with self._lock:
            if self._failed or self._closed:
                return
            payload = pickle.dumps(("timings", bool(flag)), _PROTOCOL)
            for conn in self._conns:
                self._send(conn, payload)
            for conn in self._conns:
                self._recv(conn)

    def close(self) -> None:
        """Stop every worker: polite ``close`` message, join, then
        terminate stragglers.  Safe to call repeatedly; must run before
        the plane allocator unlinks the shared segments."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            payload = pickle.dumps(("close",), _PROTOCOL)
            for conn in self._conns:
                try:
                    conn.send_bytes(payload)
                except (BrokenPipeError, OSError):
                    pass
            for conn in self._conns:
                try:
                    if conn.poll(1.0):
                        conn.recv_bytes()
                except (EOFError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join(timeout=1.0)
            for conn in self._conns:
                conn.close()

    # ------------------------------------------------------------------
    # Pipe helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _send(conn: Connection, payload: bytes) -> None:
        try:
            conn.send_bytes(payload)
        except (BrokenPipeError, OSError) as exc:
            raise ServiceError(f"resident worker pipe broken: {exc}") from exc

    @classmethod
    def _recv(cls, conn: Connection) -> Tuple[object, ...]:
        return cls._recv_sized(conn)[0]

    @staticmethod
    def _recv_sized(conn: Connection) -> Tuple[Tuple[object, ...], int]:
        try:
            payload = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise ServiceError(
                f"resident worker died mid-drain: {exc}"
            ) from exc
        return pickle.loads(payload), len(payload)
