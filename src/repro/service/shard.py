"""Group shards: serialized per-group work queues with batched admission.

A :class:`GroupShard` owns the :class:`~repro.core.incremental.GroupSlice`
state of every overlap group assigned to it.  All mutations of a group's
equation state happen inside its shard's (single-threaded) processing
loop, so requests touching *different* shards validate concurrently while
per-group state stays race-free -- the serving-architecture reading of
Theorem 2: disconnected groups share no validation equations, hence no
state, hence no locks.

Admission runs in batches: up to ``batch_size`` pending requests are
drained, each admitted or rejected by an exact group-restricted headroom
query, and the batch ends with **one** incremental revalidation pass over
the slices it dirtied.  The per-request decision is exact either way; the
batch pass is the authority's periodic Algorithm 2 audit, and batching
amortizes its ``Σ_dirty (2^{N_k} - 1)`` equation cost over the whole
batch instead of paying it per request.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError, ServiceOverloadedError
from repro.core.grouping import GroupStructure
from repro.core.incremental import GroupSlice
from repro.core.kernel import KERNEL_DENSE, KernelPlane

__all__ = [
    "BatchTiming",
    "GroupShard",
    "RevalidationTiming",
    "ShardRequest",
    "ShardResult",
    "ShardSpec",
    "ShardStats",
]

#: Rejection reason reported for headroom shortfalls at admission.
REASON_EQUATION = "equation"


@dataclass(frozen=True)
class ShardRequest:
    """One admission request routed to a shard.

    ``seq`` is the service-wide submission sequence number; per-shard FIFO
    processing of ascending ``seq`` values is what makes verdict streams
    independent of the shard count.
    """

    seq: int
    usage_id: str
    group_id: int
    members: Tuple[int, ...]
    count: int
    submitted_at: float


@dataclass(frozen=True)
class ShardResult:
    """The shard's verdict on one request."""

    seq: int
    usage_id: str
    group_id: int
    members: Tuple[int, ...]
    count: int
    accepted: bool
    #: ``None`` when accepted, else a rejection reason code.
    reason: str | None
    #: Headroom observed at admission time (before any insert).
    headroom: int
    #: In-shard processing time of this request, seconds.
    service_time: float
    #: Submission timestamp, echoed back for latency accounting.
    submitted_at: float
    #: When in-shard processing of this request began (monotonic clock);
    #: ``processed_at - submitted_at`` is the queue wait.
    processed_at: float = 0.0


@dataclass(frozen=True)
class RevalidationTiming:
    """Timing of one per-group incremental revalidation (plain data, so
    it survives the pickle round-trip of the process executor)."""

    group_id: int
    equations_checked: int
    violations: int
    started: float
    duration: float


@dataclass(frozen=True)
class BatchTiming:
    """Timing of one admission batch plus its revalidation passes."""

    shard_id: int
    size: int
    started: float
    duration: float
    revalidations: Tuple[RevalidationTiming, ...]


@dataclass
class ShardStats:
    """Aggregate accounting of one processing drain."""

    processed: int = 0
    accepted: int = 0
    rejected: int = 0
    batches: int = 0
    equations_checked: int = 0
    audit_violations: int = 0
    #: Admissions answered by a dense headroom kernel (O(1) table probes).
    kernel_fast_path_hits: int = 0
    #: Admissions that *asked* for the dense kernel but were answered by
    #: the tree walk because the group exceeded the kernel cap.
    kernel_fallback: int = 0
    per_group: Dict[int, int] = field(default_factory=dict)
    #: Batch/revalidation timings, collected only when the owning shard
    #: has ``collect_timings`` set (i.e. the service is tracing).
    batch_timings: List[BatchTiming] = field(default_factory=list)


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to rebuild one shard in place.

    The resident executor ships a spec **once** at startup instead of
    pickling live shard state per drain: the worker reconstructs the
    shard's :class:`~repro.core.incremental.GroupSlice` objects from the
    (small, static) group structure + aggregates, then replays
    ``preloads`` -- except for groups listed in ``plane_names``, whose
    dense ``C``/``H`` tables live in coordinator-created shared memory
    that already holds the replayed state; the worker *attaches* and
    adopts those tables as-is (``adopt_planes=True``), so state is never
    shipped twice in any form.
    """

    shard_id: int
    group_ids: Tuple[int, ...]
    batch_size: int
    queue_capacity: int
    kernel: str
    kernel_cap: int
    structure: GroupStructure
    aggregates: Tuple[int, ...]
    #: Already-admitted records ``(group_id, members, count)`` to replay
    #: into tree/fallback groups (plane-backed groups skip these).
    preloads: Tuple[Tuple[int, Tuple[int, ...], int], ...]
    #: ``{group_id: (C_name, H_name)}`` shared-memory plane names for the
    #: dense groups the coordinator allocated; empty when planes are off.
    plane_names: Dict[int, Tuple[str, str]]
    collect_timings: bool = False


class GroupShard:
    """One serialized lane of the service (see module docstring)."""

    def __init__(
        self,
        shard_id: int,
        slices: Dict[int, GroupSlice],
        batch_size: int,
        queue_capacity: int,
    ):
        if batch_size < 1:
            raise ServiceError(f"batch_size must be >= 1, got {batch_size}")
        if queue_capacity < 1:
            raise ServiceError(f"queue_capacity must be >= 1, got {queue_capacity}")
        self.shard_id = shard_id
        self._slices = slices
        self._batch_size = batch_size
        self._capacity = queue_capacity
        self._pending: Deque[ShardRequest] = deque()
        #: Replayed records, kept so a :class:`ShardSpec` built later can
        #: carry them to a worker (coordinator side only; workers never
        #: re-record the preloads they replay).
        self._preloads: List[Tuple[int, Tuple[int, ...], int]] = []
        #: Shared planes this shard attached to (worker side only),
        #: closed -- never unlinked -- on worker shutdown.
        self._attached_planes: List[KernelPlane] = []
        #: When True, :meth:`process_pending` fills
        #: :attr:`ShardStats.batch_timings` (set by a tracing service;
        #: costs one extra clock read per batch + per revalidation).
        self.collect_timings = False

    @classmethod
    def from_spec(cls, spec: ShardSpec) -> "GroupShard":
        """Rebuild a shard inside a worker process from its spec.

        Groups named in ``spec.plane_names`` get slices whose dense
        kernels *attach* to the coordinator's shared ``C``/``H`` planes
        and adopt their live contents (the coordinator already replayed
        the preload log into them); all other groups are rebuilt from
        the aggregates and replay their preloads locally.  Either way
        the resulting equation state is byte-identical to the
        coordinator's at spec time.
        """
        slices: Dict[int, GroupSlice] = {}
        attached: List[KernelPlane] = []
        plane_groups = set()
        for group_id in spec.group_ids:
            planes: Optional[Tuple[KernelPlane, KernelPlane]] = None
            names = spec.plane_names.get(group_id)
            if names is not None:
                length = 1 << len(
                    spec.structure.groups[group_id]
                )
                planes = (
                    KernelPlane.attach(names[0], length),
                    KernelPlane.attach(names[1], length),
                )
                attached.extend(planes)
                plane_groups.add(group_id)
            slices[group_id] = GroupSlice(
                spec.structure,
                list(spec.aggregates),
                group_id,
                kernel=spec.kernel,
                kernel_cap=spec.kernel_cap,
                planes=planes,
                adopt_planes=planes is not None,
            )
        shard = cls(
            spec.shard_id, slices, spec.batch_size, spec.queue_capacity
        )
        shard.collect_timings = spec.collect_timings
        shard._attached_planes = attached
        for group_id, members, count in spec.preloads:
            if group_id in plane_groups:
                continue  # state already lives in the adopted planes
            shard.preload(group_id, members, count)
        # Replayed records are the coordinator's provenance, not this
        # worker's; keep the worker-side list empty.
        shard._preloads.clear()
        return shard

    # ------------------------------------------------------------------
    # Queue management (called from the service coordinator only)
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Return the current pending-queue depth."""
        return len(self._pending)

    @property
    def group_ids(self) -> Tuple[int, ...]:
        """Return the 0-based group ids assigned to this shard."""
        return tuple(sorted(self._slices))

    def slices(self) -> Tuple[GroupSlice, ...]:
        """Return this shard's group slices, ascending group id (shared,
        mutable -- read-only use outside the processing loop)."""
        return tuple(
            self._slices[group_id] for group_id in sorted(self._slices)
        )

    def enqueue(self, request: ShardRequest) -> None:
        """Queue a request, enforcing the bounded-queue backpressure.

        Raises
        ------
        ServiceOverloadedError
            When the queue already holds ``queue_capacity`` requests.
        """
        if len(self._pending) >= self._capacity:
            raise ServiceOverloadedError(self.shard_id, len(self._pending))
        if request.group_id not in self._slices:
            raise ServiceError(
                f"request {request.usage_id} for group {request.group_id + 1} "
                f"routed to shard {self.shard_id}, which owns groups "
                f"{[g + 1 for g in self.group_ids]}"
            )
        self._pending.append(request)

    def preload(self, group_id: int, members: Sequence[int], count: int) -> None:
        """Insert an already-validated record into a group's state.

        Used when replaying a restarting authority's journal: the record
        was admitted in a previous life, so no headroom check is run.
        """
        if group_id not in self._slices:
            raise ServiceError(
                f"group {group_id + 1} is not owned by shard {self.shard_id}"
            )
        self._slices[group_id].insert(members, count)
        self._preloads.append((group_id, tuple(members), count))

    def take_pending(self) -> List[ShardRequest]:
        """Drain and return the pending queue (coordinator side).

        The resident executor ships exactly this list -- the batch --
        across the process boundary; the shard's own queue is left empty
        so a failed drain can repopulate it atomically.
        """
        taken = list(self._pending)
        self._pending.clear()
        return taken

    def requeue(self, requests: Sequence[ShardRequest]) -> None:
        """Put back requests taken by :meth:`take_pending` (front of the
        queue, original order) after a failed drain -- capacity checks
        are skipped because the requests were already admitted to the
        queue once."""
        self._pending.extendleft(reversed(list(requests)))

    @property
    def preloads(self) -> Tuple[Tuple[int, Tuple[int, ...], int], ...]:
        """Return replayed records recorded by :meth:`preload` (the
        coordinator reads these when building a :class:`ShardSpec`)."""
        return tuple(self._preloads)

    def close_planes(self) -> None:
        """Close (never unlink) shared planes this shard attached to --
        the worker half of the plane lifecycle discipline."""
        for plane in self._attached_planes:
            plane.close()
        self._attached_planes = []

    # ------------------------------------------------------------------
    # Processing (runs inside the executor worker)
    # ------------------------------------------------------------------
    def process_pending(self) -> Tuple[List[ShardResult], ShardStats]:
        """Drain the queue in batches; return verdicts + batch accounting.

        Safe to run on a worker thread/process: only this shard's slices
        are touched.  FIFO order is preserved, so verdicts depend only on
        the submission order within each group.
        """
        results: List[ShardResult] = []
        stats = ShardStats()
        collect = self.collect_timings
        while self._pending:
            batch = [
                self._pending.popleft()
                for _ in range(min(self._batch_size, len(self._pending)))
            ]
            batch_started = time.perf_counter()
            touched: Dict[int, GroupSlice] = {}
            # Dense-kernel batch prefetch: answer every headroom query of
            # the batch with one vectorized H-table gather per group.  A
            # prefetched value is only *used* while the slice's mutation
            # counter still matches the gather -- an interleaved insert
            # (accepted earlier request in the same group) invalidates the
            # rest of that group's prefetch, which falls back to fresh O(1)
            # lookups.  Verdicts are therefore byte-identical to strictly
            # sequential processing.
            prefetched: Dict[int, Tuple[int, Dict[int, int]]] = {}
            by_group: Dict[int, List[int]] = {}
            for position, request in enumerate(batch):
                by_group.setdefault(request.group_id, []).append(position)
            for group_id, positions in by_group.items():
                gslice = self._slices[group_id]
                if gslice.kernel_name != KERNEL_DENSE or len(positions) < 2:
                    continue
                slacks = gslice.headroom_batch(
                    [batch[position].members for position in positions]
                )
                prefetched[group_id] = (
                    gslice.version,
                    dict(zip(positions, slacks)),
                )
            for position, request in enumerate(batch):
                started = time.perf_counter()
                gslice = self._slices[request.group_id]
                cached = prefetched.get(request.group_id)
                if cached is not None and cached[0] == gslice.version:
                    slack = cached[1][position]
                else:
                    slack = gslice.headroom(request.members)
                if gslice.kernel_name == KERNEL_DENSE:
                    stats.kernel_fast_path_hits += 1
                elif gslice.kernel_fallback:
                    stats.kernel_fallback += 1
                accepted = slack >= request.count
                if accepted:
                    gslice.insert(request.members, request.count)
                    touched[request.group_id] = gslice
                    stats.accepted += 1
                else:
                    stats.rejected += 1
                stats.processed += 1
                stats.per_group[request.group_id] = (
                    stats.per_group.get(request.group_id, 0) + 1
                )
                results.append(
                    ShardResult(
                        seq=request.seq,
                        usage_id=request.usage_id,
                        group_id=request.group_id,
                        members=request.members,
                        count=request.count,
                        accepted=accepted,
                        reason=None if accepted else REASON_EQUATION,
                        headroom=slack,
                        service_time=time.perf_counter() - started,
                        submitted_at=request.submitted_at,
                        processed_at=started,
                    )
                )
            # One incremental revalidation pass per batch: the audit cost
            # is paid once for every slice the batch dirtied.
            stats.batches += 1
            revalidations: List[RevalidationTiming] = []
            for gslice in touched.values():
                reval_started = time.perf_counter()
                report, checked = gslice.revalidate()
                stats.equations_checked += checked
                stats.audit_violations += len(report.violations)
                if collect:
                    revalidations.append(
                        RevalidationTiming(
                            group_id=gslice.group_id,
                            equations_checked=checked,
                            violations=len(report.violations),
                            started=reval_started,
                            duration=time.perf_counter() - reval_started,
                        )
                    )
            if collect:
                stats.batch_timings.append(
                    BatchTiming(
                        shard_id=self.shard_id,
                        size=len(batch),
                        started=batch_started,
                        duration=time.perf_counter() - batch_started,
                        revalidations=tuple(revalidations),
                    )
                )
        return results, stats
