"""The validation service: concurrent, batched, cached license serving.

:class:`ValidationService` is the serving-architecture composition of the
whole library -- the ROADMAP's "heavy traffic" layer built directly on
Theorem 2:

1. **match** -- the request's instance-match set is resolved against the
   pool through an LRU memo (:class:`repro.service.cache.MatchCache`);
   an empty set is an instant ``instance`` rejection, never queued;
2. **route** -- the match set belongs to exactly one overlap group
   (Corollary 1.1), and groups are assigned to shards round-robin, so
   the request lands on a single shard's bounded queue (a full queue
   raises :class:`repro.errors.ServiceOverloadedError` -- backpressure);
3. **admit** -- :meth:`drain` runs every busy shard through the
   configured executor; shards process their queues in FIFO batches with
   exact group-restricted headroom admission and one incremental
   revalidation pass per batch;
4. **account** -- counters (accepted / rejected-by-reason / overload),
   end-to-end latency histograms (p50/p95/p99), per-shard queue-depth
   gauges, and cache statistics land in a
   :class:`repro.service.metrics.MetricsRegistry` with pluggable hooks.

Verdicts depend only on the per-group submission order, so the outcome
stream (ordered by sequence number) is byte-identical for every shard
count and executor backend -- the determinism property the test suite
pins down.

Examples
--------
>>> from repro.workloads.scenarios import example1
>>> scenario = example1()
>>> service = ValidationService(scenario.pool)
>>> [service.issue(usage).accepted for usage in scenario.usages]
[True, True]
>>> service.metrics.counter("requests_total").value(("accepted",))
2
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.errors import ServiceError, ServiceOverloadedError, ValidationError
from repro.core.incremental import GroupSlice
from repro.core.kernel import KERNEL_DENSE, KernelPlane, KernelPlaneAllocator
from repro.licenses.license import UsageLicense
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.matching.index import IndexedMatcher
from repro.obs.events import (
    EVENT_ADMISSION,
    EVENT_BACKPRESSURE,
    EVENT_CACHE_EVICTION,
    EVENT_EPOCH_CHANGE,
    EVENT_REJECTION,
    EventLog,
)
from repro.obs.distrib import ServerTiming
from repro.obs.trace import NULL_SPAN, Tracer
from repro.online.session import IssuanceOutcome
from repro.service.cache import GroupTables, MatchCache
from repro.service.config import ServiceConfig
from repro.service.executor import make_executor, resolve_backend
from repro.service.metrics import MetricsRegistry
from repro.service.shard import (
    GroupShard,
    ShardRequest,
    ShardResult,
    ShardSpec,
)

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    from repro.obs.monitor import Monitor

__all__ = ["ValidationService"]

#: Rejection reason for requests with an empty instance-match set.
REASON_INSTANCE = "instance"
#: Label used on the overload counter and outcome streams.
REASON_OVERLOAD = "overload"


class ValidationService:
    """Group-sharded issuance/validation service over one license pool.

    Parameters
    ----------
    pool:
        The redistribution licenses being served.
    config:
        Tuning knobs; defaults to a single-shard serial service.
    initial_log:
        Previously accepted issuances to replay into the shard state
        before serving (a restarting authority's journal).
    metrics:
        An externally owned registry (e.g. shared across services of one
        distributor); a fresh one is created when omitted.
    tracer:
        Optional :class:`repro.obs.trace.Tracer`.  When given, every
        request grows a span tree (request -> match/queue_wait/admission)
        and every drain one (drain -> shard_batch -> revalidate with
        ``equations_checked``).  Tracing is strictly out-of-band: verdict
        streams are byte-identical with it on or off.
    events:
        Optional :class:`repro.obs.events.EventLog` receiving the
        structured admission/rejection/backpressure/cache-eviction/
        epoch-change journal.
    monitor:
        Optional :class:`repro.obs.monitor.Monitor`.  When given, it is
        attached to this service's registry at construction and ticked
        once per drain, turning the raw telemetry into health
        indicators, SLO grades, and alerts.  Like tracing, monitoring
        is strictly out-of-band: verdict streams are byte-identical
        with a monitor attached or ``monitor=None``.
    """

    def __init__(
        self,
        pool: LicensePool,
        config: Optional[ServiceConfig] = None,
        *,
        initial_log: Optional[ValidationLog] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        events: Optional[EventLog] = None,
        monitor: Optional["Monitor"] = None,
    ):
        if not pool:
            raise ValidationError("service needs a non-empty pool")
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.events = events
        self._pool = pool
        self._tables = GroupTables(pool)
        if events is not None:
            self._tables.on_refresh = self._on_epoch_change
        self._matcher = MatchCache(
            IndexedMatcher(pool),
            self.config.match_cache_size,
            on_evict=self._on_cache_evict if events is not None else None,
        )
        self._shard_count = min(self.config.shards, self._tables.group_count)
        #: Canonical executor backend (``process`` resolves to
        #: ``resident``); drives plane allocation and spec shipping.
        self._backend = resolve_backend(self.config.executor)
        # Resident backend + dense kernel: back each eligible group's
        # C/H tables with coordinator-owned shared-memory planes.  The
        # coordinator's own slices get the *create*-mode views (its
        # reads are zero-copy); workers attach by name via ShardSpec.
        self._plane_allocator: Optional[KernelPlaneAllocator] = None
        if self._backend == "resident" and self.config.kernel == KERNEL_DENSE:
            self._plane_allocator = KernelPlaneAllocator(shared=True)
        slices_by_shard: Dict[int, Dict[int, GroupSlice]] = {
            shard_id: {} for shard_id in range(self._shard_count)
        }
        for group_id in range(self._tables.group_count):
            planes: Optional[Tuple[KernelPlane, KernelPlane]] = None
            if self._plane_allocator is not None:
                group_size = len(self._tables.structure.groups[group_id])
                if group_size <= self.config.kernel_cap:
                    planes = self._plane_allocator.pair_for(
                        group_id, 1 << group_size
                    )
            slices_by_shard[group_id % self._shard_count][group_id] = GroupSlice(
                self._tables.structure,
                self._tables.aggregates,
                group_id,
                kernel=self.config.kernel,
                kernel_cap=self.config.kernel_cap,
                planes=planes,
            )
        self._shards: List[GroupShard] = [
            GroupShard(
                shard_id,
                slices_by_shard[shard_id],
                self.config.batch_size,
                self.config.queue_capacity,
            )
            for shard_id in range(self._shard_count)
        ]
        if tracer is not None:
            for shard in self._shards:
                shard.collect_timings = True
        self._kernel_by_group: Dict[int, str] = {
            group_id: gslice.kernel_name
            for shard_slices in slices_by_shard.values()
            for group_id, gslice in shard_slices.items()
        }
        self._timings_enabled = False
        self._request_timings: Dict[int, ServerTiming] = {}
        self._match_us: Dict[int, int] = {}
        self._latency = self.metrics.histogram(
            "latency_seconds", self.config.latency_window
        )
        self._seq = 0
        self._request_spans: Dict[int, object] = {}
        self._pending_outcomes: Dict[int, IssuanceOutcome] = {}
        self._log = ValidationLog()
        self._closed = False
        # Replay BEFORE spawning any executor workers: resident workers
        # rebuild shard state from the specs, which must carry the full
        # preload log (and the shared planes must already hold it).
        if initial_log is not None:
            self._replay(initial_log)
        if self._backend == "resident":
            self._executor = make_executor(
                self._backend,
                self.config.workers or self._shard_count,
                specs=self._build_specs(),
            )
        else:
            self._executor = make_executor(self._backend, self._shard_count)
        self.monitor = monitor
        if monitor is not None:
            monitor.attach(self)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def pool(self) -> LicensePool:
        """Return the pool being served."""
        return self._pool

    @property
    def shard_count(self) -> int:
        """Return the effective shard count (clamped to the group count)."""
        return self._shard_count

    @property
    def group_count(self) -> int:
        """Return the number of disconnected overlap groups."""
        return self._tables.group_count

    @property
    def group_sizes(self) -> List[int]:
        """Return the member count of each overlap group (the ``N_k`` of
        the paper's Equation 3 denominator)."""
        return list(self._tables.structure.sizes)

    def match_cache_stats(self) -> Tuple[int, int, int]:
        """Return ``(hits, misses, evictions)`` of the match cache."""
        return (self._matcher.hits, self._matcher.misses, self._matcher.evictions)

    @property
    def log(self) -> ValidationLog:
        """Return the log of issuances *this service* accepted (replayed
        initial records are not repeated here)."""
        return self._log

    @property
    def pending(self) -> int:
        """Return the number of queued, not-yet-drained requests."""
        return sum(shard.depth for shard in self._shards)

    def queue_depths(self) -> Dict[int, int]:
        """Return ``{shard_id: depth}`` for all shards."""
        return {shard.shard_id: shard.depth for shard in self._shards}

    @property
    def executor_backend(self) -> str:
        """Return the canonical executor backend actually running
        (``process`` resolves to ``resident``)."""
        return self._backend

    def kernel_occupancy(self) -> Dict[int, Dict[str, int]]:
        """Return ``{group_id: occupancy}`` for every dense-kernel group.

        Under the resident backend the coordinator's slices view the
        workers' live ``C``/``H`` tables through shared-memory planes,
        so this is a **zero-copy** read -- no worker round-trip, no
        drain required.  Values may be torn mid-batch; they feed
        monitoring, never admission.  Tree-only configs return ``{}``.
        """
        occupancy: Dict[int, Dict[str, int]] = {}
        for shard in self._shards:
            for gslice in shard.slices():
                occ = gslice.kernel_occupancy()
                if occ is not None:
                    occupancy[gslice.group_id] = occ
        return occupancy

    # ------------------------------------------------------------------
    # Per-request timing breakdown (wire timing echo)
    # ------------------------------------------------------------------
    @property
    def request_timings_enabled(self) -> bool:
        """Whether per-request :class:`~repro.obs.distrib.ServerTiming`
        breakdowns are being collected."""
        return self._timings_enabled

    def enable_request_timings(self) -> None:
        """Start collecting a per-request phase breakdown.

        Every completed sequence id then owns one
        :class:`~repro.obs.distrib.ServerTiming`, claimable exactly once
        via :meth:`pop_request_timing`.  The admission verdicts are
        byte-identical with collection on or off; only clocks are read.
        Enabled by :class:`repro.net.server.AdmissionServer` when its
        config asks for the v2 timing echo.
        """
        self._timings_enabled = True
        for shard in self._shards:
            shard.collect_timings = True
        # Resident workers own live shard state in other processes;
        # broadcast the flag so their drains collect timings too.
        broadcast = getattr(self._executor, "set_collect_timings", None)
        if broadcast is not None:
            broadcast(True)

    def pop_request_timing(self, seq: int) -> Optional[ServerTiming]:
        """Claim (and forget) the timing breakdown for ``seq``.

        Returns ``None`` when collection is disabled, the seq is
        unknown, or the timing was already claimed -- callers must pop
        every completed seq to keep the buffer from growing.
        """
        return self._request_timings.pop(seq, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release executor resources.  Submitting afterwards raises.

        Ordering matters for the resident backend: workers are joined
        *first* (they close their plane attachments on exit), and only
        then does the coordinator unlink the shared-memory segments --
        no worker ever maps a vanished name.
        """
        if not self._closed:
            self._executor.close()
            if self._plane_allocator is not None:
                self._plane_allocator.close()
            self._closed = True

    def __enter__(self) -> "ValidationService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(
        self,
        usage: UsageLicense,
        *,
        trace_context: Optional[object] = None,
    ) -> int:
        """Match, route, and enqueue one request; return its sequence id.

        Instance rejections are decided immediately (no shard owns them);
        everything else waits for the next :meth:`drain`.

        ``trace_context`` optionally parents this request's span under a
        *remote* span -- any object exposing ``trace_id``/``span_id``
        attributes works (e.g. :class:`repro.obs.distrib.TraceContext`
        decoded from a wire frame), making the request one trace across
        the process boundary.  Ignored when no tracer is configured.

        Raises
        ------
        ServiceOverloadedError
            When the target shard's queue is full.  The request is NOT
            recorded; the caller should drain and resubmit (which
            :meth:`process` automates).
        """
        if self._closed:
            raise ServiceError("service is closed")
        tracer = self.tracer
        span = (
            tracer.start_span(
                "request", parent=trace_context, usage_id=usage.license_id
            )
            if tracer is not None
            else NULL_SPAN
        )
        if trace_context is not None and span:
            # Both processes draw span ids from identical seeded
            # counters, so the id alone cannot prove a parent lives in
            # another journal; the assembler keys on this marker.
            span.set_attr("remote_parent", True)
        match_started = time.perf_counter() if self._timings_enabled else 0.0
        if tracer is not None:
            hits_before = self._matcher.hits
            with tracer.span("match", parent=span) as match_span:
                matched = tuple(sorted(self._matcher.match(usage)))
                match_span.set_attr(
                    "cache_hit", self._matcher.hits > hits_before
                )
                match_span.set_attr("matched", len(matched))
        else:
            matched = tuple(sorted(self._matcher.match(usage)))
        match_us = (
            max(0, int((time.perf_counter() - match_started) * 1e6))
            if self._timings_enabled
            else 0
        )
        seq = self._seq
        span.set_attr("seq", seq)
        if not matched:
            self._seq += 1
            outcome = IssuanceOutcome(
                usage.license_id,
                usage.count,
                matched,
                False,
                REASON_INSTANCE,
                rejection_detail="no redistribution license contains the request",
            )
            self._pending_outcomes[seq] = outcome
            self._count_outcome(outcome)
            self._emit_outcome_event(seq, outcome)
            if self._timings_enabled:
                # Instance rejections never reach a shard: queue /
                # admission / revalidate phases are structurally zero.
                self._request_timings[seq] = ServerTiming(
                    queue_us=0,
                    match_us=match_us,
                    admission_us=0,
                    revalidate_us=0,
                    shard_id=-1,
                    kernel="none",
                )
            span.set_attr("outcome", "rejected")
            span.set_attr("reason", REASON_INSTANCE)
            span.end()
            return seq
        group_id = self._tables.group_of[matched[0]]
        shard = self._shards[group_id % self._shard_count]
        request = ShardRequest(
            seq=seq,
            usage_id=usage.license_id,
            group_id=group_id,
            members=matched,
            count=usage.count,
            submitted_at=time.perf_counter(),
        )
        try:
            shard.enqueue(request)
        except ServiceOverloadedError:
            self.metrics.counter("overload_total").inc((f"shard{shard.shard_id}",))
            if self.events is not None:
                self.events.emit(
                    EVENT_BACKPRESSURE,
                    usage_id=usage.license_id,
                    shard=shard.shard_id,
                    depth=shard.depth,
                )
            span.set_attr("outcome", REASON_OVERLOAD)
            span.end()
            raise
        self._seq += 1
        if self._timings_enabled:
            self._match_us[seq] = match_us
        if span:
            span.set_attr("group_id", group_id)
            span.set_attr("shard", shard.shard_id)
            self._request_spans[seq] = span
        self.metrics.gauge("queue_depth").set(
            shard.depth, (f"shard{shard.shard_id}",)
        )
        return seq

    def drain(self) -> List[IssuanceOutcome]:
        """Process every queued request; return all newly completed
        outcomes (instant rejects included) in submission order."""
        return [outcome for _seq, outcome in self._drain_completed()]

    def issue(self, usage: UsageLicense) -> IssuanceOutcome:
        """Single-request convenience: submit, drain, return the verdict.

        Matches the :class:`repro.online.session.IssuanceSession.issue`
        shape, so a session can delegate to a service one-for-one.  Any
        outcomes of interleaved :meth:`submit` calls completed by the
        same drain are re-buffered for the next :meth:`drain`.
        """
        seq = self.submit(usage)
        target: Optional[IssuanceOutcome] = None
        for completed_seq, outcome in self._drain_completed():
            if completed_seq == seq:
                target = outcome
            else:
                self._pending_outcomes[completed_seq] = outcome
        assert target is not None  # its shard was just drained
        return target

    def process(
        self, usages: Iterable[UsageLicense]
    ) -> List[IssuanceOutcome]:
        """Serve a whole stream with automatic backpressure handling.

        Submits until a shard pushes back, drains, resubmits, and drains
        the tail; returns outcomes in stream order.  Overload never drops
        a request here -- it only forces an early drain -- so the verdict
        stream is identical for every queue capacity.
        """
        outcomes: Dict[int, IssuanceOutcome] = {}
        order: List[int] = []
        for usage in usages:
            while True:
                try:
                    order.append(self.submit(usage))
                    break
                except ServiceOverloadedError:
                    outcomes.update(self._drain_completed())
        outcomes.update(self._drain_completed())
        return [outcomes[seq] for seq in order]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> str:
        """Return a human-readable metrics report for this service."""
        self.metrics.gauge("match_cache_hits").set(self._matcher.hits)
        self.metrics.gauge("match_cache_misses").set(self._matcher.misses)
        self.metrics.gauge("match_cache_evictions").set(self._matcher.evictions)
        return self.metrics.render(
            title=(
                f"validation service: {self.group_count} group(s) on "
                f"{self._shard_count} shard(s), batch={self.config.batch_size}, "
                f"executor={self.config.executor}"
            )
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drain_completed(self) -> List[Tuple[int, IssuanceOutcome]]:
        """Run busy shards, then hand out ``(seq, outcome)`` pairs sorted
        by sequence number, clearing the completion buffer."""
        if self._closed:
            raise ServiceError("service is closed")
        tracer = self.tracer
        busy = [shard for shard in self._shards if shard.depth]
        if busy:
            drain_span = (
                tracer.start_span("drain", shards=len(busy))
                if tracer is not None
                else NULL_SPAN
            )
            outputs = self._executor.drain(busy)
            # Resident backend: per-drain IPC is O(batch) -- record it
            # so the bench can prove state never crosses the boundary.
            shipped = getattr(self._executor, "last_drain_bytes", None)
            if shipped is not None:
                self.metrics.counter("ipc_bytes_shipped_total").inc(
                    amount=shipped
                )
            # The round-trip backend hands back mutated shard copies via
            # the `busy` list; re-adopt so the next drain sees current
            # state (a no-op for the in-process and resident backends).
            for shard in busy:
                self._shards[shard.shard_id] = shard
                self.metrics.gauge("queue_depth").set(
                    shard.depth, (f"shard{shard.shard_id}",)
                )
            now = time.perf_counter()
            completed_results: List[ShardResult] = []
            reval_us: Dict[int, int] = {}
            for _shard_id, (results, stats) in sorted(outputs.items()):
                if self._timings_enabled:
                    # Revalidation runs once per touched group per batch;
                    # its cost is attributed to every request of that
                    # group completed by this drain (amortized view).
                    for timing in stats.batch_timings:
                        for reval in timing.revalidations:
                            reval_us[reval.group_id] = reval_us.get(
                                reval.group_id, 0
                            ) + max(0, int(reval.duration * 1e6))
                self.metrics.counter("batches_total").inc(amount=stats.batches)
                self.metrics.counter("equations_checked_total").inc(
                    amount=stats.equations_checked
                )
                if stats.audit_violations:
                    self.metrics.counter("audit_violations_total").inc(
                        amount=stats.audit_violations
                    )
                # Kernel counters stay silent on pure-tree configs so the
                # metrics surface (and its golden renders) is unchanged
                # unless the dense kernel is actually in play.
                if stats.kernel_fast_path_hits:
                    self.metrics.counter("kernel_fast_path_hits").inc(
                        amount=stats.kernel_fast_path_hits
                    )
                if stats.kernel_fallback:
                    self.metrics.counter("kernel_fallback").inc(
                        amount=stats.kernel_fallback
                    )
                if tracer is not None and drain_span:
                    self._record_batch_spans(drain_span, stats)
                completed_results.extend(results)
            # Complete in global submission order so the service log (and
            # every metric derived from it) is independent of how groups
            # were spread over shards.
            for result in sorted(completed_results, key=lambda r: r.seq):
                self._latency.observe(now - result.submitted_at)
                self._complete(result, reval_us=reval_us)
            drain_span.end()
        if self.monitor is not None:
            self.monitor.tick()
        completed = sorted(self._pending_outcomes.items())
        self._pending_outcomes.clear()
        return completed

    def _replay(self, log: ValidationLog) -> None:
        """Load previously accepted issuances into shard state unchecked
        (they were validated when first accepted)."""
        for record in log:
            members = sorted(record.license_set)
            group_id = self._tables.group_of[members[0]]
            shard = self._shards[group_id % self._shard_count]
            shard.preload(group_id, members, record.count)

    def _build_specs(self) -> List[ShardSpec]:
        """Build one :class:`ShardSpec` per shard for resident workers.

        Specs are O(config + preload log): group structure, aggregates,
        replayed records, and -- for plane-backed dense groups -- the
        shared-memory names to attach to instead of replaying.
        """
        plane_names = (
            self._plane_allocator.names()
            if self._plane_allocator is not None
            else {}
        )
        return [
            ShardSpec(
                shard_id=shard.shard_id,
                group_ids=shard.group_ids,
                batch_size=self.config.batch_size,
                queue_capacity=self.config.queue_capacity,
                kernel=self.config.kernel,
                kernel_cap=self.config.kernel_cap,
                structure=self._tables.structure,
                aggregates=tuple(self._tables.aggregates),
                preloads=shard.preloads,
                plane_names={
                    group_id: names
                    for group_id, names in plane_names.items()
                    if group_id in shard.group_ids
                },
                collect_timings=shard.collect_timings,
            )
            for shard in self._shards
        ]

    def _record_batch_spans(self, drain_span, stats) -> None:
        """Stitch shard-side batch/revalidation timings under the drain
        span (they arrive as plain picklable data -- see
        :class:`repro.service.shard.BatchTiming`)."""
        tracer = self.tracer
        if tracer is None:  # pragma: no cover - callers already check
            return
        for timing in stats.batch_timings:
            batch_record = tracer.record(
                "shard_batch",
                start=timing.started,
                duration=timing.duration,
                parent=drain_span,
                attrs={"shard": timing.shard_id, "batch_size": timing.size},
            )
            if batch_record is None:
                continue
            for reval in timing.revalidations:
                tracer.record(
                    "revalidate",
                    start=reval.started,
                    duration=reval.duration,
                    parent=batch_record,
                    attrs={
                        "group_id": reval.group_id,
                        "equations_checked": reval.equations_checked,
                        "violations": reval.violations,
                    },
                )

    def _complete(
        self,
        result: ShardResult,
        *,
        reval_us: Optional[Dict[int, int]] = None,
    ) -> None:
        if result.accepted:
            detail = None
            self._log.record(result.members, result.count, result.usage_id)
        else:
            detail = (
                f"headroom {result.headroom} < requested {result.count} "
                f"in group {result.group_id + 1}"
            )
        outcome = IssuanceOutcome(
            result.usage_id,
            result.count,
            result.members,
            result.accepted,
            result.reason,
            rejection_detail=detail,
        )
        self._pending_outcomes[result.seq] = outcome
        self._count_outcome(outcome)
        self._emit_outcome_event(result.seq, outcome, group_id=result.group_id)
        if self._timings_enabled:
            self._request_timings[result.seq] = ServerTiming(
                queue_us=max(
                    0, int((result.processed_at - result.submitted_at) * 1e6)
                ),
                match_us=self._match_us.pop(result.seq, 0),
                admission_us=max(0, int(result.service_time * 1e6)),
                revalidate_us=(reval_us or {}).get(result.group_id, 0),
                shard_id=result.group_id % self._shard_count,
                kernel=self._kernel_by_group.get(result.group_id, "tree"),
            )
        span = self._request_spans.pop(result.seq, None)
        tracer = self.tracer
        # A span only exists for this seq if the tracer was live at
        # submit time, but the guard keeps the invariant lexical.
        if span is not None and tracer is not None:
            tracer.record(
                "queue_wait",
                start=result.submitted_at,
                duration=max(0.0, result.processed_at - result.submitted_at),
                parent=span,
            )
            tracer.record(
                "admission",
                start=result.processed_at,
                duration=result.service_time,
                parent=span,
                attrs={
                    "group_id": result.group_id,
                    "headroom": result.headroom,
                    "accepted": result.accepted,
                },
            )
            span.set_attr("outcome", "accepted" if result.accepted else "rejected")
            if result.reason:
                span.set_attr("reason", result.reason)
            span.end()

    def _count_outcome(self, outcome: IssuanceOutcome) -> None:
        if outcome.accepted:
            self.metrics.counter("requests_total").inc(("accepted",))
        else:
            self.metrics.counter("requests_total").inc(
                ("rejected", outcome.rejection_reason or "unknown")
            )

    # ------------------------------------------------------------------
    # Observability plumbing (all strictly out-of-band)
    # ------------------------------------------------------------------
    def _emit_outcome_event(
        self,
        seq: int,
        outcome: IssuanceOutcome,
        group_id: Optional[int] = None,
    ) -> None:
        if self.events is None:
            return
        if outcome.accepted:
            self.events.emit(
                EVENT_ADMISSION,
                seq_no=seq,
                usage_id=outcome.usage_id,
                count=outcome.count,
                group_id=group_id,
            )
        else:
            self.events.emit(
                EVENT_REJECTION,
                seq_no=seq,
                usage_id=outcome.usage_id,
                count=outcome.count,
                group_id=group_id,
                reason=outcome.rejection_reason,
                detail=outcome.rejection_detail,
            )

    def _on_cache_evict(self, key, _value) -> None:
        self.metrics.counter("match_cache_evictions_total").inc()
        events = self.events
        if events is None:  # pragma: no cover - hook registered iff events
            return
        events.emit(
            EVENT_CACHE_EVICTION,
            cache="match",
            content_id=key[0] if key else None,
        )

    def _on_epoch_change(self, old_groups: int, new_groups: int, epoch: int) -> None:
        change = (
            "split" if new_groups > old_groups
            else "merge" if new_groups < old_groups
            else "none"
        )
        events = self.events
        if events is None:  # pragma: no cover - hook registered iff events
            return
        events.emit(
            EVENT_EPOCH_CHANGE,
            epoch=epoch,
            old_groups=old_groups,
            new_groups=new_groups,
            change=change,
        )
