"""Configuration for the validation service.

One frozen dataclass so a service's behaviour is fully determined by
``(pool, initial log, config)`` -- the property the determinism tests
lean on (the same workload must produce byte-identical verdict streams
for every shard count and executor backend).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ServiceError
from repro.core.kernel import KERNEL_NAMES, KERNEL_TREE
from repro.validation.limits import DEFAULT_KERNEL_CAP, DENSE_TABLE_MAX_N

__all__ = ["ServiceConfig", "EXECUTOR_BACKENDS"]

#: Recognized executor backends (see :mod:`repro.service.executor`).
#: ``process`` is a deprecated alias for ``resident``;
#: ``process-roundtrip`` is the pre-resident per-drain pickle backend,
#: kept for one release so the parity suite can pin all four real
#: backends byte-identical.
EXECUTOR_BACKENDS = (
    "serial",
    "thread",
    "process",
    "process-roundtrip",
    "resident",
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of a :class:`repro.service.ValidationService`.

    Attributes
    ----------
    shards:
        Number of worker lanes.  Groups are assigned round-robin
        (``group_id % shards``); a shard count above the group count is
        clamped, since a shard without groups has nothing to do.
    batch_size:
        Maximum requests coalesced into one admission batch.  Each batch
        ends with a single incremental revalidation pass over the groups
        it touched, so larger batches amortize the
        ``Σ_dirty (2^{N_k} - 1)`` equation cost over more requests.
    queue_capacity:
        Bound on each shard's pending queue.  Submitting to a full shard
        raises :class:`repro.errors.ServiceOverloadedError` -- explicit
        backpressure instead of unbounded memory growth.
    executor:
        ``"serial"`` (in-caller, zero overhead), ``"thread"`` (one pool
        thread per shard; concurrency across groups, true parallelism on
        free-threaded builds), ``"resident"`` (long-lived worker
        processes that own their shards' state -- O(batch) IPC per
        drain, shared-memory kernel planes for coordinator reads;
        ``"process"`` is a deprecated alias), or ``"process-roundtrip"``
        (the pre-resident backend: per-drain shard-state pickle
        round-trips -- O(state) IPC; kept one release for parity
        pinning).
    workers:
        Worker-process count for the resident backend; ``0`` (default)
        means one worker per shard.  Ignored by other backends.
    match_cache_size:
        LRU entries for instance-match memoization; 0 disables caching.
    latency_window:
        Sample window of the latency histogram (exact quantiles are
        computed over the most recent this-many requests).
    kernel:
        Per-group equation engine: ``"tree"`` (the validation-tree walk
        of [10], the default) or ``"dense"`` (the resident-table
        :class:`repro.core.kernel.DenseHeadroomKernel` -- O(1) admission
        headroom, delta revalidation).  Verdict streams are
        byte-identical for both; only the cost model differs.
    kernel_cap:
        Largest ``N_k`` served by the dense kernel; groups above it fall
        back to the tree walk (counted by the ``kernel_fallback``
        metric).  Bounded by
        :data:`repro.validation.limits.DENSE_TABLE_MAX_N`, the shared
        ceiling for every dense per-mask table.
    """

    shards: int = 1
    batch_size: int = 32
    queue_capacity: int = 1024
    executor: str = "serial"
    workers: int = 0
    match_cache_size: int = 4096
    latency_window: int = 65536
    kernel: str = KERNEL_TREE
    kernel_cap: int = DEFAULT_KERNEL_CAP

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServiceError(f"shards must be >= 1, got {self.shards}")
        if self.batch_size < 1:
            raise ServiceError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.executor not in EXECUTOR_BACKENDS:
            raise ServiceError(
                f"unknown executor {self.executor!r}; "
                f"choose from {', '.join(EXECUTOR_BACKENDS)}"
            )
        if self.workers < 0:
            raise ServiceError(
                f"workers must be >= 0 (0 = one per shard), got {self.workers}"
            )
        if self.match_cache_size < 0:
            raise ServiceError(
                f"match_cache_size must be >= 0, got {self.match_cache_size}"
            )
        if self.latency_window < 1:
            raise ServiceError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )
        if self.kernel not in KERNEL_NAMES:
            raise ServiceError(
                f"unknown kernel {self.kernel!r}; "
                f"choose from {', '.join(KERNEL_NAMES)}"
            )
        if not 0 <= self.kernel_cap <= DENSE_TABLE_MAX_N:
            raise ServiceError(
                f"kernel_cap must be in [0, {DENSE_TABLE_MAX_N}], "
                f"got {self.kernel_cap}"
            )
