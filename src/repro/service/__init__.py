"""The serving layer: concurrent group-sharded license validation.

Turns Theorem 2's group independence into a serving architecture: each
disconnected overlap group is assigned to a shard with a serialized,
bounded work queue; shards drain concurrently under a configurable
executor; admission is batched so each batch pays one incremental
revalidation pass; match results and group tables are cached; and every
decision is accounted in a metrics registry with latency percentiles and
pluggable event hooks.
"""

from repro.errors import ServiceError, ServiceOverloadedError
from repro.service.cache import GroupTables, LRUCache, MatchCache, request_key
from repro.service.config import ServiceConfig
from repro.service.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.service import ValidationService
from repro.service.shard import GroupShard, ShardRequest, ShardResult, ShardStats

__all__ = [
    "Counter",
    "Gauge",
    "GroupShard",
    "GroupTables",
    "Histogram",
    "LRUCache",
    "MatchCache",
    "MetricsRegistry",
    "ProcessExecutor",
    "SerialExecutor",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "ShardRequest",
    "ShardResult",
    "ShardStats",
    "ThreadExecutor",
    "ValidationService",
    "make_executor",
    "request_key",
]
