"""Selection strategies for *online* (per-issuance) validation.

Section 2.1 of the paper motivates the offline equation approach by showing
that picking a single redistribution license per issuance can strand
capacity: with licenses ``L_D^1 (2000)`` and ``L_D^2 (1000)``, charging
``L_U^1`` (800 counts, matches both) to ``L_D^2`` leaves only 200 counts
for a later ``L_U^2`` (400 counts, matches only ``L_D^2``) -- which then
gets rejected even though charging ``L_U^1`` to ``L_D^1`` would have kept
both valid.

The strategies here are the "pick one license" policies such a naive
validation authority might use.  They exist as baselines for
:class:`repro.online.session.IssuanceSession`, which also offers the
equation-based policy (accept iff the whole log stays feasible) that never
strands capacity.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional, Protocol, Sequence

__all__ = [
    "BestFit",
    "FirstFit",
    "GreedyMaxRemaining",
    "LastFit",
    "RandomPick",
    "SelectionStrategy",
]


class SelectionStrategy(Protocol):
    """Policy choosing which matched license to debit for an issuance."""

    #: Name used in reports and examples.
    name: str

    def select(
        self,
        candidates: Sequence[int],
        remaining: Mapping[int, int],
        count: int,
    ) -> Optional[int]:
        """Return the license index to debit, or ``None`` to reject.

        Parameters
        ----------
        candidates:
            The issued license's match set ``S`` (ascending 1-based
            indexes, never empty).
        remaining:
            Remaining aggregate counts per license index.
        count:
            The permission count of the license being issued.
        """
        ...  # pragma: no cover - protocol


def _eligible(
    candidates: Sequence[int], remaining: Mapping[int, int], count: int
) -> list:
    """Return the candidates that still have capacity for ``count``."""
    return [index for index in candidates if remaining.get(index, 0) >= count]


class FirstFit:
    """Debit the lowest-indexed license with enough remaining capacity."""

    name = "first-fit"

    def select(
        self, candidates: Sequence[int], remaining: Mapping[int, int], count: int
    ) -> Optional[int]:
        eligible = _eligible(candidates, remaining, count)
        return min(eligible) if eligible else None


class LastFit:
    """Debit the highest-indexed license with enough remaining capacity.

    Deterministically reproduces the paper's Example 1 pathology: for
    ``L_U^1`` (matches {1, 2}) it picks ``L_D^2``, stranding the capacity
    that ``L_U^2`` later needs.
    """

    name = "last-fit"

    def select(
        self, candidates: Sequence[int], remaining: Mapping[int, int], count: int
    ) -> Optional[int]:
        eligible = _eligible(candidates, remaining, count)
        return max(eligible) if eligible else None


class RandomPick:
    """Debit a uniformly random eligible license (the paper's "randomly
    picks a license for validation" baseline)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select(
        self, candidates: Sequence[int], remaining: Mapping[int, int], count: int
    ) -> Optional[int]:
        eligible = _eligible(candidates, remaining, count)
        if not eligible:
            return None
        return self._rng.choice(eligible)


class BestFit:
    """Debit the eligible license with the *least* remaining capacity
    (classic best-fit): preserves large licenses for large future
    requests, the mirror-image heuristic of
    :class:`GreedyMaxRemaining`."""

    name = "best-fit"

    def select(
        self, candidates: Sequence[int], remaining: Mapping[int, int], count: int
    ) -> Optional[int]:
        eligible = _eligible(candidates, remaining, count)
        if not eligible:
            return None
        # Tie-break on the lower index for determinism.
        return min(eligible, key=lambda index: (remaining.get(index, 0), index))


class GreedyMaxRemaining:
    """Debit the eligible license with the most remaining capacity.

    A sensible heuristic -- it tends to preserve scarce licenses -- but
    still suboptimal in general (only the equation policy is exact).
    """

    name = "greedy-max-remaining"

    def select(
        self, candidates: Sequence[int], remaining: Mapping[int, int], count: int
    ) -> Optional[int]:
        eligible = _eligible(candidates, remaining, count)
        if not eligible:
            return None
        # Tie-break on the lower index for determinism.
        return max(eligible, key=lambda index: (remaining.get(index, 0), -index))
