"""Issuance sessions: online validation of a stream of usage licenses.

An :class:`IssuanceSession` plays the role of the validation authority at
issue time.  Two modes:

* **strategy mode** -- each accepted license is charged to exactly one
  redistribution license chosen by a
  :class:`~repro.online.strategies.SelectionStrategy`; remaining capacities
  are debited immediately.  Simple, but can strand capacity (Example 1).
* **equation mode** -- no per-license assignment.  A license is accepted
  iff the log *plus this license* still satisfies all validation
  equations, checked via the group-restricted headroom query
  (Theorem 2 guarantees cross-group equations are redundant).  This is the
  exact policy: it accepts a stream iff some assignment exists.

Both modes share instance matching (an empty match set is an instant
reject, like ``L_U^2`` of Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ValidationError
from repro.core.validator import GroupedValidator
from repro.licenses.license import UsageLicense
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.matching.index import IndexedMatcher
from repro.online.strategies import SelectionStrategy
from repro.validation.bitset import mask_from_indexes
from repro.validation.capacity import headroom
from repro.validation.tree import ValidationTree

__all__ = ["IssuanceOutcome", "IssuanceSession"]


@dataclass(frozen=True)
class IssuanceOutcome:
    """The session's verdict on one usage license."""

    usage_id: str
    count: int
    license_set: Tuple[int, ...]
    accepted: bool
    #: "instance" (no containing license) or "aggregate" (capacity) on
    #: rejection; None when accepted.
    rejection_reason: Optional[str] = None
    #: In strategy mode: the license the count was charged to.
    charged_to: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.accepted:
            charge = f" -> LD{self.charged_to}" if self.charged_to else ""
            return f"{self.usage_id} ({self.count}): ACCEPTED{charge}"
        return f"{self.usage_id} ({self.count}): REJECTED ({self.rejection_reason})"


class IssuanceSession:
    """Online validation over a stream of usage licenses.

    Parameters
    ----------
    pool:
        The distributor's redistribution licenses.
    policy:
        Either a :class:`SelectionStrategy` instance or the string
        ``"equation"`` for the exact feasibility-preserving policy.

    Examples
    --------
    >>> from repro.workloads.scenarios import example1
    >>> from repro.online.strategies import LastFit
    >>> scenario = example1()
    >>> naive = IssuanceSession(scenario.pool, LastFit())
    >>> exact = IssuanceSession(scenario.pool, "equation")
    >>> [naive.issue(u).accepted for u in scenario.usages]
    [True, False]
    >>> [exact.issue(u).accepted for u in scenario.usages]
    [True, True]
    """

    def __init__(
        self,
        pool: LicensePool,
        policy: Union[SelectionStrategy, str],
    ):
        if not pool:
            raise ValidationError("session needs a non-empty pool")
        self._pool = pool
        self._matcher = IndexedMatcher(pool)
        self._log = ValidationLog()
        self._outcomes: List[IssuanceOutcome] = []
        if policy == "equation":
            self._strategy: Optional[SelectionStrategy] = None
            self._validator = GroupedValidator.from_pool(pool)
            self._tree = ValidationTree()  # incrementally maintained
            self._remaining: Dict[int, int] = {}
        elif isinstance(policy, str):
            raise ValidationError(
                f"unknown policy {policy!r}; use a SelectionStrategy or 'equation'"
            )
        else:
            self._strategy = policy
            self._validator = None
            self._tree = None
            self._remaining = {
                index: lic.aggregate for index, lic in pool.enumerate()
            }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def policy_name(self) -> str:
        """Return the active policy's name."""
        return self._strategy.name if self._strategy is not None else "equation"

    @property
    def log(self) -> ValidationLog:
        """Return the log of *accepted* issuances."""
        return self._log

    @property
    def outcomes(self) -> Tuple[IssuanceOutcome, ...]:
        """Return every issuance outcome so far, in order."""
        return tuple(self._outcomes)

    @property
    def accepted_counts(self) -> int:
        """Return the total permission counts accepted so far."""
        return self._log.total_count

    @property
    def remaining(self) -> Dict[int, int]:
        """Strategy mode only: remaining capacity per license index."""
        if self._strategy is None:
            raise ValidationError(
                "equation mode keeps no per-license balances; "
                "use headroom queries instead"
            )
        return dict(self._remaining)

    # ------------------------------------------------------------------
    # Issuance
    # ------------------------------------------------------------------
    def issue(self, usage: UsageLicense) -> IssuanceOutcome:
        """Validate one usage license online; record it if accepted."""
        matched = tuple(sorted(self._matcher.match(usage)))
        if not matched:
            outcome = IssuanceOutcome(
                usage.license_id, usage.count, matched, False, "instance"
            )
            self._outcomes.append(outcome)
            return outcome
        if self._strategy is not None:
            outcome = self._issue_with_strategy(usage, matched)
        else:
            outcome = self._issue_with_equations(usage, matched)
        self._outcomes.append(outcome)
        return outcome

    def _issue_with_strategy(
        self, usage: UsageLicense, matched: Tuple[int, ...]
    ) -> IssuanceOutcome:
        assert self._strategy is not None
        choice = self._strategy.select(matched, self._remaining, usage.count)
        if choice is None:
            return IssuanceOutcome(
                usage.license_id, usage.count, matched, False, "aggregate"
            )
        if choice not in matched:
            raise ValidationError(
                f"strategy {self._strategy.name!r} selected license {choice} "
                f"outside the match set {list(matched)}"
            )
        self._remaining[choice] -= usage.count
        if self._remaining[choice] < 0:
            raise ValidationError(
                f"strategy {self._strategy.name!r} overdrew license {choice}"
            )
        self._log.record_issuance(usage, matched)
        return IssuanceOutcome(
            usage.license_id, usage.count, matched, True, charged_to=choice
        )

    def _issue_with_equations(
        self, usage: UsageLicense, matched: Tuple[int, ...]
    ) -> IssuanceOutcome:
        assert self._validator is not None and self._tree is not None
        structure = self._validator.structure
        group_id = structure.group_of(matched[0])
        slack = headroom(
            self._tree,
            self._validator.aggregates,
            mask_from_indexes(matched),
            universe_mask=structure.masks()[group_id],
        )
        if slack < usage.count:
            return IssuanceOutcome(
                usage.license_id, usage.count, matched, False, "aggregate"
            )
        self._tree.insert_set(matched, usage.count)
        self._log.record_issuance(usage, matched)
        return IssuanceOutcome(usage.license_id, usage.count, matched, True)
