"""Issuance sessions: online validation of a stream of usage licenses.

An :class:`IssuanceSession` plays the role of the validation authority at
issue time.  Two modes:

* **strategy mode** -- each accepted license is charged to exactly one
  redistribution license chosen by a
  :class:`~repro.online.strategies.SelectionStrategy`; remaining capacities
  are debited immediately.  Simple, but can strand capacity (Example 1).
* **equation mode** -- no per-license assignment.  A license is accepted
  iff the log *plus this license* still satisfies all validation
  equations, checked via the group-restricted headroom query
  (Theorem 2 guarantees cross-group equations are redundant).  This is the
  exact policy: it accepts a stream iff some assignment exists.

Both modes share instance matching (an empty match set is an instant
reject, like ``L_U^2`` of Figure 2).

:class:`ServiceSession` is a third shape: the same ``issue``/``outcomes``
surface, but delegating every decision to a
:class:`repro.service.ValidationService` -- sessions become one client of
the serving layer, gaining its caching, batching, and metrics for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ValidationError
from repro.core.validator import GroupedValidator
from repro.licenses.license import UsageLicense
from repro.licenses.pool import LicensePool
from repro.logstore.log import ValidationLog
from repro.matching.index import IndexedMatcher
from repro.online.strategies import SelectionStrategy
from repro.validation.bitset import mask_from_indexes
from repro.validation.capacity import headroom
from repro.validation.tree import ValidationTree

__all__ = ["IssuanceOutcome", "IssuanceSession", "ServiceSession"]


@dataclass(frozen=True)
class IssuanceOutcome:
    """The session's verdict on one usage license."""

    usage_id: str
    count: int
    license_set: Tuple[int, ...]
    accepted: bool
    #: Why a request was rejected (None when accepted):
    #:
    #: * ``"instance"`` -- no redistribution license contains the request
    #:   (empty match set, like ``L_U^2`` of Figure 2);
    #: * ``"equation"`` -- accepting would violate a validation equation
    #:   (the exact policy's group-restricted headroom came up short);
    #: * ``"capacity"`` -- strategy mode only: no single matched license
    #:   has enough remaining balance to absorb the whole count;
    #: * ``"overload"`` -- a serving layer shed the request under
    #:   backpressure before any validation ran.
    #:
    #: The serving layer (:mod:`repro.service`) uses these codes verbatim
    #: as metrics labels, so acceptance dashboards can split rejections
    #: by cause.
    rejection_reason: Optional[str] = None
    #: In strategy mode: the license the count was charged to.
    charged_to: Optional[int] = None
    #: Human-readable elaboration of the rejection (binding headroom,
    #: remaining balances, ...); None when accepted.
    rejection_detail: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.accepted:
            charge = f" -> LD{self.charged_to}" if self.charged_to else ""
            return f"{self.usage_id} ({self.count}): ACCEPTED{charge}"
        detail = f": {self.rejection_detail}" if self.rejection_detail else ""
        return (
            f"{self.usage_id} ({self.count}): REJECTED "
            f"({self.rejection_reason}{detail})"
        )


class IssuanceSession:
    """Online validation over a stream of usage licenses.

    Parameters
    ----------
    pool:
        The distributor's redistribution licenses.
    policy:
        Either a :class:`SelectionStrategy` instance or the string
        ``"equation"`` for the exact feasibility-preserving policy.

    Examples
    --------
    >>> from repro.workloads.scenarios import example1
    >>> from repro.online.strategies import LastFit
    >>> scenario = example1()
    >>> naive = IssuanceSession(scenario.pool, LastFit())
    >>> exact = IssuanceSession(scenario.pool, "equation")
    >>> [naive.issue(u).accepted for u in scenario.usages]
    [True, False]
    >>> [exact.issue(u).accepted for u in scenario.usages]
    [True, True]
    """

    def __init__(
        self,
        pool: LicensePool,
        policy: Union[SelectionStrategy, str],
    ):
        if not pool:
            raise ValidationError("session needs a non-empty pool")
        self._pool = pool
        self._matcher = IndexedMatcher(pool)
        self._log = ValidationLog()
        self._outcomes: List[IssuanceOutcome] = []
        if policy == "equation":
            self._strategy: Optional[SelectionStrategy] = None
            self._validator = GroupedValidator.from_pool(pool)
            self._tree = ValidationTree()  # incrementally maintained
            self._remaining: Dict[int, int] = {}
        elif isinstance(policy, str):
            raise ValidationError(
                f"unknown policy {policy!r}; use a SelectionStrategy or 'equation'"
            )
        else:
            self._strategy = policy
            self._validator = None
            self._tree = None
            self._remaining = {
                index: lic.aggregate for index, lic in pool.enumerate()
            }

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def policy_name(self) -> str:
        """Return the active policy's name."""
        return self._strategy.name if self._strategy is not None else "equation"

    @property
    def log(self) -> ValidationLog:
        """Return the log of *accepted* issuances."""
        return self._log

    @property
    def outcomes(self) -> Tuple[IssuanceOutcome, ...]:
        """Return every issuance outcome so far, in order."""
        return tuple(self._outcomes)

    @property
    def accepted_counts(self) -> int:
        """Return the total permission counts accepted so far."""
        return self._log.total_count

    @property
    def remaining(self) -> Dict[int, int]:
        """Strategy mode only: remaining capacity per license index."""
        if self._strategy is None:
            raise ValidationError(
                "equation mode keeps no per-license balances; "
                "use headroom queries instead"
            )
        return dict(self._remaining)

    # ------------------------------------------------------------------
    # Issuance
    # ------------------------------------------------------------------
    def issue(self, usage: UsageLicense) -> IssuanceOutcome:
        """Validate one usage license online; record it if accepted."""
        matched = tuple(sorted(self._matcher.match(usage)))
        if not matched:
            outcome = IssuanceOutcome(
                usage.license_id,
                usage.count,
                matched,
                False,
                "instance",
                rejection_detail="no redistribution license contains the request",
            )
            self._outcomes.append(outcome)
            return outcome
        if self._strategy is not None:
            outcome = self._issue_with_strategy(usage, matched)
        else:
            outcome = self._issue_with_equations(usage, matched)
        self._outcomes.append(outcome)
        return outcome

    def _issue_with_strategy(
        self, usage: UsageLicense, matched: Tuple[int, ...]
    ) -> IssuanceOutcome:
        assert self._strategy is not None
        choice = self._strategy.select(matched, self._remaining, usage.count)
        if choice is None:
            best = max(self._remaining[index] for index in matched)
            return IssuanceOutcome(
                usage.license_id,
                usage.count,
                matched,
                False,
                "capacity",
                rejection_detail=(
                    f"no single matched license can absorb {usage.count} "
                    f"(best remaining balance: {best})"
                ),
            )
        if choice not in matched:
            raise ValidationError(
                f"strategy {self._strategy.name!r} selected license {choice} "
                f"outside the match set {list(matched)}"
            )
        self._remaining[choice] -= usage.count
        if self._remaining[choice] < 0:
            raise ValidationError(
                f"strategy {self._strategy.name!r} overdrew license {choice}"
            )
        self._log.record_issuance(usage, matched)
        return IssuanceOutcome(
            usage.license_id, usage.count, matched, True, charged_to=choice
        )

    def _issue_with_equations(
        self, usage: UsageLicense, matched: Tuple[int, ...]
    ) -> IssuanceOutcome:
        assert self._validator is not None and self._tree is not None
        structure = self._validator.structure
        group_id = structure.group_of(matched[0])
        slack = headroom(
            self._tree,
            self._validator.aggregates,
            mask_from_indexes(matched),
            universe_mask=structure.masks()[group_id],
        )
        if slack < usage.count:
            return IssuanceOutcome(
                usage.license_id,
                usage.count,
                matched,
                False,
                "equation",
                rejection_detail=(
                    f"headroom {slack} < requested {usage.count} in "
                    f"group {group_id + 1}"
                ),
            )
        self._tree.insert_set(matched, usage.count)
        self._log.record_issuance(usage, matched)
        return IssuanceOutcome(usage.license_id, usage.count, matched, True)


class ServiceSession:
    """An issuance session served by a :class:`ValidationService`.

    Implements the same ``issue`` / ``outcomes`` / ``log`` surface as
    :class:`IssuanceSession` in equation mode, but every decision runs
    through the serving layer: cached instance matching, group-sharded
    admission, and metrics.  Verdicts are identical to
    ``IssuanceSession(pool, "equation")`` (property-tested) -- the service
    *is* the equation policy, scaled out.

    Parameters
    ----------
    pool:
        The distributor's redistribution licenses.
    config:
        Optional :class:`repro.service.ServiceConfig`; defaults to a
        single-shard serial service (the latency-optimal shape for
        one-at-a-time issue calls).
    service:
        Alternatively, an existing service to attach to (sharing its
        metrics and shard state with other clients).
    """

    def __init__(self, pool: LicensePool, config=None, *, service=None):
        # Imported here: repro.service imports this module for
        # IssuanceOutcome, so a top-level import would be circular.
        from repro.service.service import ValidationService

        if service is not None and config is not None:
            raise ValidationError("pass either a config or a service, not both")
        self._service = service or ValidationService(pool, config)
        self._outcomes: List[IssuanceOutcome] = []

    @property
    def policy_name(self) -> str:
        """Return the policy label (always the exact equation policy)."""
        return "service"

    @property
    def service(self):
        """Return the backing :class:`ValidationService`."""
        return self._service

    @property
    def log(self) -> ValidationLog:
        """Return the service's log of accepted issuances."""
        return self._service.log

    @property
    def outcomes(self) -> Tuple[IssuanceOutcome, ...]:
        """Return every outcome this session observed, in order."""
        return tuple(self._outcomes)

    @property
    def accepted_counts(self) -> int:
        """Return the total permission counts accepted so far."""
        return self._service.log.total_count

    def issue(self, usage: UsageLicense) -> IssuanceOutcome:
        """Validate one usage license through the service."""
        outcome = self._service.issue(usage)
        self._outcomes.append(outcome)
        return outcome

    def issue_many(self, usages) -> Tuple[IssuanceOutcome, ...]:
        """Batch path: serve a stream with coalesced admission batches."""
        outcomes = tuple(self._service.process(usages))
        self._outcomes.extend(outcomes)
        return outcomes
