"""Online (per-issuance) validation: sessions and selection strategies."""

from repro.online.session import IssuanceOutcome, IssuanceSession, ServiceSession
from repro.online.strategies import (
    BestFit,
    FirstFit,
    GreedyMaxRemaining,
    LastFit,
    RandomPick,
    SelectionStrategy,
)

__all__ = [
    "BestFit",
    "FirstFit",
    "GreedyMaxRemaining",
    "IssuanceOutcome",
    "IssuanceSession",
    "LastFit",
    "RandomPick",
    "SelectionStrategy",
    "ServiceSession",
]
