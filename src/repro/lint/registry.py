"""Rule base class and the global rule registry.

Every rule is a class deriving from :class:`Rule`, decorated with
:func:`register`.  The engine instantiates one rule object per file, so
rules may keep per-file state freely.  Dispatch is type-directed: a rule
declares the AST node types it wants in :attr:`Rule.node_types` and the
engine's single depth-first walk calls :meth:`Rule.visit` for each
matching node, in source order.

Rules carry their *default* applicability (``default_scope`` /
``default_allow`` fnmatch patterns over module paths) so the linter
enforces this repository's invariants even with no configuration; a
``[tool.reprolint]`` table overrides both per rule id.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar, Dict, List, Tuple, Type

from repro.errors import LintError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.analysis.project import Project
    from repro.lint.context import FileContext

__all__ = ["Rule", "register", "all_rules", "get_rule", "rule_ids"]


class Rule:
    """Base class for one lint rule (see module docstring).

    Subclasses set the class attributes and implement :meth:`visit`
    (and optionally :meth:`start` / :meth:`finish` for per-file setup
    and whole-module checks).
    """

    #: Unique id, ``REPnnn``.
    rule_id: ClassVar[str] = ""
    #: One-line summary shown by ``repro lint --list-rules``.
    title: ClassVar[str] = ""
    #: The invariant this rule encodes and where it comes from.
    rationale: ClassVar[str] = ""
    #: AST node types dispatched to :meth:`visit`.
    node_types: ClassVar[Tuple[type, ...]] = ()
    #: fnmatch patterns of module paths the rule applies to (empty = all).
    default_scope: ClassVar[Tuple[str, ...]] = ()
    #: fnmatch patterns of module paths exempt from the rule.
    default_allow: ClassVar[Tuple[str, ...]] = ()
    #: Whole-program rules set this and implement :meth:`check_project`
    #: instead of the per-file hooks; the engine runs them once per lint
    #: run, after every file is parsed, against the shared
    #: :class:`~repro.lint.analysis.project.Project`.  Their findings go
    #: through the same per-file contexts (so sorting and suppression
    #: handling are shared), and suppressing them inline requires a
    #: ``-- reason`` tail (see :mod:`repro.lint.suppress`).
    requires_analysis: ClassVar[bool] = False

    def start(self, ctx: "FileContext") -> None:
        """Called once before the walk of one file."""

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        """Called for every node matching :attr:`node_types`."""

    def finish(self, ctx: "FileContext") -> None:
        """Called once after the walk of one file."""

    def check_project(self, project: "Project") -> None:
        """Called once per run for rules with :attr:`requires_analysis`."""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise LintError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Return every registered rule class, sorted by rule id."""
    # Importing the rules package populates the registry on first use.
    import repro.lint.rules  # noqa: F401  (side-effect import)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> Tuple[str, ...]:
    """Return the sorted ids of all registered rules."""
    return tuple(rule.rule_id for rule in all_rules())


def get_rule(rule_id: str) -> Type[Rule]:
    """Return one rule class by id.

    Raises
    ------
    LintError
        If no rule with that id is registered.
    """
    import repro.lint.rules  # noqa: F401  (side-effect import)

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(
            f"unknown rule id {rule_id!r} (known: {', '.join(sorted(_REGISTRY))})"
        ) from None
