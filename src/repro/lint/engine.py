"""The lint driver: file discovery, the AST walk, rule dispatch.

One depth-first, source-ordered walk per file.  Parent/field links are
recorded in the :class:`~repro.lint.context.FileContext` *before* a node
is dispatched, so rules can inspect full ancestry (guard analysis needs
to know which branch of an ``if`` a call sits in).  After the walk,
findings on suppressed lines are dropped and the remainder sorted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.errors import LintError
from repro.lint.config import LintConfig
from repro.lint.context import FileContext, module_path_of
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import ALL_RULES, suppressed_lines

__all__ = ["LintResult", "iter_python_files", "lint_file", "lint_paths"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Per-file counts of findings suppressed by inline comments.
    suppressed: int = 0
    #: Hard errors (unreadable/unparseable files) -- exit code 2.
    errors: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Return the process exit code: 0 clean, 1 findings, 2 errors."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(
    paths: Sequence[Path], config: LintConfig
) -> List[Tuple[Path, str]]:
    """Expand files/directories into a sorted ``(path, display)`` list.

    Directories are searched recursively for ``*.py``.  Nonexistent
    paths raise :class:`~repro.errors.LintError` (a usage error, exit
    code 2).
    """
    out: List[Tuple[Path, str]] = []
    seen = set()
    for given in paths:
        if given.is_dir():
            candidates = sorted(given.rglob("*.py"))
        elif given.is_file():
            candidates = [given]
        else:
            raise LintError(f"no such file or directory: {given}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            module_path = module_path_of(candidate)
            if config.file_excluded(module_path, candidate.as_posix()):
                continue
            out.append((candidate, candidate.as_posix()))
    out.sort(key=lambda pair: pair[1])
    return out


def _walk_dispatch(
    ctx: FileContext, dispatch: Dict[Type[Rule], Rule]
) -> None:
    """Depth-first walk recording parents and dispatching to rules."""
    by_node_type: List[Tuple[Tuple[type, ...], Rule]] = [
        (type(rule).node_types, rule) for rule in dispatch.values()
    ]

    def visit(node: ast.AST) -> None:
        for types, rule in by_node_type:
            if types and isinstance(node, types):
                rule.visit(node, ctx)
        for field_name, value in ast.iter_fields(node):
            if isinstance(value, ast.AST):
                ctx.set_parent(value, node, field_name)
                visit(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        ctx.set_parent(item, node, field_name)
                        visit(item)

    visit(ctx.tree)


def lint_file(
    path: Path,
    config: LintConfig,
    rules: Optional[Iterable[Type[Rule]]] = None,
    display_path: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint one file; return ``(findings, suppressed_count)``.

    Raises
    ------
    LintError
        If the file cannot be read or parsed (exit code 2 territory;
        :func:`lint_paths` converts this into a result error entry).
    """
    display = display_path or path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintError(f"cannot read {display}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        raise LintError(
            f"cannot parse {display}: {exc.msg} (line {exc.lineno})"
        ) from exc
    ctx = FileContext(path, display, source, tree)
    active: Dict[Type[Rule], Rule] = {}
    for rule_cls in rules if rules is not None else all_rules():
        if config.rule_applies(rule_cls, ctx.module_path, path.as_posix()):
            active[rule_cls] = rule_cls()
    if not active:
        return [], 0
    for rule in active.values():
        rule.start(ctx)
    _walk_dispatch(ctx, active)
    for rule in active.values():
        rule.finish(ctx)
    suppressions = suppressed_lines(source)
    kept: List[Finding] = []
    dropped = 0
    for finding in ctx.findings:
        rules_off = suppressions.get(finding.line, frozenset())
        if ALL_RULES in rules_off or finding.rule_id in rules_off:
            dropped += 1
        else:
            kept.append(finding)
    kept.sort()
    return kept, dropped


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Iterable[Type[Rule]]] = None,
) -> LintResult:
    """Lint files/directories; return the aggregated, sorted result.

    Unreadable or unparseable files become ``errors`` entries (exit
    code 2) rather than aborting the whole run, so one bad file never
    hides the findings of the rest.
    """
    config = config if config is not None else LintConfig()
    result = LintResult()
    rule_list = list(rules) if rules is not None else all_rules()
    try:
        files = iter_python_files(paths, config)
    except LintError as exc:
        result.errors.append(str(exc))
        return result
    for path, display in files:
        try:
            findings, dropped = lint_file(path, config, rule_list, display)
        except LintError as exc:
            result.errors.append(str(exc))
            continue
        result.findings.extend(findings)
        result.suppressed += dropped
        result.files_checked += 1
    result.findings.sort()
    result.errors.sort()
    return result
