"""The lint driver: file discovery, the AST walk, rule dispatch.

Two passes per run:

1. **Syntactic** -- one depth-first, source-ordered walk per file.
   Parent/field links are recorded in the
   :class:`~repro.lint.context.FileContext` *before* a node is
   dispatched, so rules can inspect full ancestry (guard analysis needs
   to know which branch of an ``if`` a call sits in).
2. **Whole-program** -- rules with ``requires_analysis`` run once per
   run against the shared :class:`~repro.lint.analysis.project.Project`
   (symbol table + import-resolved call graph built from the already
   parsed contexts), reporting through the same per-file finding sinks.

After both passes, findings on suppressed lines are dropped and the
remainder sorted.  Suppression semantics differ by rule kind: syntactic
findings honor ``disable=REPnnn`` and ``disable=all``; analysis
findings (REP008+) are only dropped by a suppression that names the
rule *and* carries a ``-- reason`` justification -- a bare suppression
of an analysis rule suppresses nothing and is itself reported (see
:mod:`repro.lint.suppress`).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.errors import LintError
from repro.lint.config import LintConfig
from repro.lint.context import FileContext, module_path_of
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import (
    ALL_RULES,
    REASON_REQUIRED_RULES,
    suppression_details,
)

__all__ = ["LintResult", "iter_python_files", "lint_file", "lint_paths"]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Per-file counts of findings suppressed by inline comments.
    suppressed: int = 0
    #: Hard errors (unreadable/unparseable files) -- exit code 2.
    errors: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Return the process exit code: 0 clean, 1 findings, 2 errors."""
        if self.errors:
            return 2
        return 1 if self.findings else 0


def iter_python_files(
    paths: Sequence[Path], config: LintConfig
) -> List[Tuple[Path, str]]:
    """Expand files/directories into a sorted ``(path, display)`` list.

    Directories are searched recursively for ``*.py``.  Nonexistent
    paths raise :class:`~repro.errors.LintError` (a usage error, exit
    code 2).
    """
    out: List[Tuple[Path, str]] = []
    seen = set()
    for given in paths:
        if given.is_dir():
            candidates = sorted(given.rglob("*.py"))
        elif given.is_file():
            candidates = [given]
        else:
            raise LintError(f"no such file or directory: {given}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            module_path = module_path_of(candidate)
            if config.file_excluded(module_path, candidate.as_posix()):
                continue
            out.append((candidate, candidate.as_posix()))
    out.sort(key=lambda pair: pair[1])
    return out


def _load_context(path: Path, display: str) -> FileContext:
    """Read and parse one file into a context.

    Raises
    ------
    LintError
        If the file cannot be read or parsed (exit code 2 territory).
    """
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintError(f"cannot read {display}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        raise LintError(
            f"cannot parse {display}: {exc.msg} (line {exc.lineno})"
        ) from exc
    return FileContext(path, display, source, tree)


def _walk_dispatch(
    ctx: FileContext, dispatch: Dict[Type[Rule], Rule]
) -> None:
    """Depth-first walk recording parents and dispatching to rules."""
    by_node_type: List[Tuple[Tuple[type, ...], Rule]] = [
        (type(rule).node_types, rule) for rule in dispatch.values()
    ]

    def visit(node: ast.AST) -> None:
        for types, rule in by_node_type:
            if types and isinstance(node, types):
                rule.visit(node, ctx)
        for field_name, value in ast.iter_fields(node):
            if isinstance(value, ast.AST):
                ctx.set_parent(value, node, field_name)
                visit(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        ctx.set_parent(item, node, field_name)
                        visit(item)

    visit(ctx.tree)


def _run_syntactic(
    ctx: FileContext,
    config: LintConfig,
    rule_list: Sequence[Type[Rule]],
) -> None:
    """Run the per-file rules applying to one context."""
    active: Dict[Type[Rule], Rule] = {}
    for rule_cls in rule_list:
        if rule_cls.requires_analysis:
            continue
        if config.rule_applies(rule_cls, ctx.module_path, ctx.path.as_posix()):
            active[rule_cls] = rule_cls()
    if not active:
        return
    for rule in active.values():
        rule.start(ctx)
    _walk_dispatch(ctx, active)
    for rule in active.values():
        rule.finish(ctx)


def _apply_suppressions(
    ctx: FileContext, analysis_ids: Set[str]
) -> Tuple[List[Finding], int]:
    """Filter one context's findings through its inline suppressions.

    Returns ``(kept findings, dropped count)``.  ``analysis_ids`` names
    the analysis rules active this run; a *bare* suppression of one of
    them (no ``-- reason``) suppresses nothing and is itself reported,
    anchored at the comment.
    """
    details = suppression_details(ctx.source)
    kept: List[Finding] = []
    dropped = 0
    for finding in ctx.findings:
        per_line = details.get(finding.line, {})
        entry = per_line.get(finding.rule_id)
        if finding.rule_id in REASON_REQUIRED_RULES:
            if entry is not None and entry.reason:
                dropped += 1
                continue
        elif entry is not None or ALL_RULES in per_line:
            dropped += 1
            continue
        kept.append(finding)
    for line in sorted(details):
        for rule_id in sorted(details[line]):
            entry = details[line][rule_id]
            if (
                rule_id in REASON_REQUIRED_RULES
                and rule_id in analysis_ids
                and not entry.reason
            ):
                kept.append(
                    Finding(
                        path=ctx.display_path,
                        line=entry.comment_line,
                        col=0,
                        rule_id=rule_id,
                        message=(
                            f"bare suppression of {rule_id}: silencing a "
                            f"whole-program finding requires a recorded "
                            f"justification -- append "
                            f"'-- <why this is safe>'"
                        ),
                    )
                )
    kept.sort()
    return kept, dropped


def _active_analysis_rules(
    config: LintConfig, rule_list: Sequence[Type[Rule]]
) -> List[Type[Rule]]:
    return [
        rule_cls
        for rule_cls in rule_list
        if rule_cls.requires_analysis and config.selected(rule_cls)
    ]


def _run_analysis(
    contexts: List[FileContext],
    config: LintConfig,
    analysis_rules: Sequence[Type[Rule]],
    cache_path: Optional[Path],
    call_graph_out: Optional[Path],
) -> None:
    """Build the project and run the whole-program rules over it."""
    # Imported here so the syntactic-only path never pays for the
    # analysis machinery.
    from repro.lint.analysis.project import Project

    project = Project(contexts, config, cache_path=cache_path)
    for rule_cls in analysis_rules:
        rule_cls().check_project(project)
    if call_graph_out is not None:
        payload = project.graph.to_payload()
        call_graph_out.parent.mkdir(parents=True, exist_ok=True)
        call_graph_out.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def lint_file(
    path: Path,
    config: LintConfig,
    rules: Optional[Iterable[Type[Rule]]] = None,
    display_path: Optional[str] = None,
) -> Tuple[List[Finding], int]:
    """Lint one file; return ``(findings, suppressed_count)``.

    Analysis rules see a single-file project: chains crossing into
    other files are invisible here (use :func:`lint_paths` for the
    whole-tree view), which is exactly what the per-fixture golden
    tests want.

    Raises
    ------
    LintError
        If the file cannot be read or parsed (exit code 2 territory;
        :func:`lint_paths` converts this into a result error entry).
    """
    display = display_path or path.as_posix()
    rule_list = list(rules) if rules is not None else all_rules()
    ctx = _load_context(path, display)
    _run_syntactic(ctx, config, rule_list)
    analysis_rules = [
        rule_cls
        for rule_cls in _active_analysis_rules(config, rule_list)
        if config.rule_applies(rule_cls, ctx.module_path, ctx.path.as_posix())
    ]
    if analysis_rules:
        _run_analysis(
            [ctx], config, analysis_rules, cache_path=None, call_graph_out=None
        )
    return _apply_suppressions(
        ctx, {rule_cls.rule_id for rule_cls in analysis_rules}
    )


def lint_paths(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    rules: Optional[Iterable[Type[Rule]]] = None,
    cache_path: Optional[Path] = None,
    call_graph_out: Optional[Path] = None,
) -> LintResult:
    """Lint files/directories; return the aggregated, sorted result.

    Unreadable or unparseable files become ``errors`` entries (exit
    code 2) rather than aborting the whole run, so one bad file never
    hides the findings of the rest.

    ``cache_path`` revives/persists the pickled call graph keyed on a
    content hash of the linted tree; ``call_graph_out`` writes the
    deterministic JSON dump of the graph (both are analysis-pass
    concerns and have no effect when no analysis rule is selected).
    """
    config = config if config is not None else LintConfig()
    result = LintResult()
    rule_list = list(rules) if rules is not None else all_rules()
    try:
        files = iter_python_files(paths, config)
    except LintError as exc:
        result.errors.append(str(exc))
        return result
    contexts: List[FileContext] = []
    for path, display in files:
        try:
            contexts.append(_load_context(path, display))
        except LintError as exc:
            result.errors.append(str(exc))
            continue
    for ctx in contexts:
        _run_syntactic(ctx, config, rule_list)
    analysis_rules = _active_analysis_rules(config, rule_list)
    if analysis_rules or call_graph_out is not None:
        _run_analysis(
            contexts, config, analysis_rules, cache_path, call_graph_out
        )
    analysis_ids = {rule_cls.rule_id for rule_cls in analysis_rules}
    for ctx in contexts:
        kept, dropped = _apply_suppressions(ctx, analysis_ids)
        result.findings.extend(kept)
        result.suppressed += dropped
        result.files_checked += 1
    result.findings.sort()
    result.errors.sort()
    return result
