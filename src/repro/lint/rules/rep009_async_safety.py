"""REP009: no blocking calls reachable from async code.

The wire server (PR 6) runs on one event loop; a single blocking call
inside any coroutine stalls *every* connection.  This rule walks the
call graph from every ``async def`` in scope and flags blocking
operations -- ``time.sleep``, synchronous socket/file I/O, subprocess
spawns, and the repo's own synchronous ``service.drain`` -- whether
they appear in the coroutine body itself or in a plain function reached
through any confidently resolved call chain.

The sanctioned escape hatch is an executor hop: call sites spelled
inside the arguments of ``loop.run_in_executor(...)`` or
``asyncio.to_thread(...)`` are exempt, and chains are not followed
through such sites (the callee runs on a worker thread).  Traversal is
bounded in depth and memoized; unresolved call sites end a chain (the
confident-or-silent stance of :mod:`repro.lint.analysis`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.lint.analysis.callgraph import CallSite
from repro.lint.analysis.symbols import FunctionInfo
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.analysis.project import Project

__all__ = ["AsyncSafetyRule"]

#: Call-chain depth bound from an async entry.
MAX_DEPTH = 8

#: Exact dotted spellings that block the event loop.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "open",
    }
)

#: Dotted suffixes that block: ``self.service.drain`` et al. -- the
#: synchronous drain of the in-process ValidationService joins worker
#: futures and must hop through an executor from async code.
BLOCKING_SUFFIXES = ("service.drain",)


def _is_blocking(name: Optional[str]) -> bool:
    if name is None:
        return False
    if name in BLOCKING_CALLS:
        return True
    return any(
        name == suffix or name.endswith(f".{suffix}")
        for suffix in BLOCKING_SUFFIXES
    )


@register
class AsyncSafetyRule(Rule):
    """Flag blocking calls reachable from coroutines in scope."""

    rule_id = "REP009"
    title = "blocking call reachable from async code"
    rationale = (
        "The admission server multiplexes every connection on one event "
        "loop (PR 6); a blocking call anywhere in a coroutine's call "
        "chain stalls all of them. Blocking work hops through "
        "loop.run_in_executor / asyncio.to_thread."
    )
    default_scope = ("repro/net/*",)
    requires_analysis = True

    def check_project(self, project: "Project") -> None:
        #: site identity -> (entry, chain) of the first reporting chain;
        #: one finding per blocking site keeps repeated helpers readable.
        reported: Set[Tuple[str, int, int]] = set()
        for entry, _ctx in project.functions_in_scope(type(self)):
            if not entry.is_async:
                continue
            self._walk(
                project,
                entry,
                entry,
                [entry.name],
                {entry.qualname},
                0,
                reported,
            )

    def _walk(
        self,
        project: "Project",
        entry: FunctionInfo,
        fn: FunctionInfo,
        chain: List[str],
        visited: Set[str],
        depth: int,
        reported: Set[Tuple[str, int, int]],
    ) -> None:
        if depth > MAX_DEPTH:
            return
        for site in project.graph.callees(fn.qualname):
            if site.in_executor:
                continue  # sanctioned hop: runs on a worker thread
            if _is_blocking(site.name):
                key = (fn.path, site.line, site.col)
                if key not in reported:
                    reported.add(key)
                    self._report(project, fn, site, entry, chain)
                continue
            if site.target is None or site.target in visited:
                continue
            callee = project.table.functions.get(site.target)
            if callee is None:
                continue
            self._walk(
                project,
                entry,
                callee,
                chain + [callee.name],
                visited | {site.target},
                depth + 1,
                reported,
            )

    def _report(
        self,
        project: "Project",
        fn: FunctionInfo,
        site: CallSite,
        entry: FunctionInfo,
        chain: List[str],
    ) -> None:
        ctx = project.contexts.get(fn.path)
        if ctx is None:
            return
        path = " -> ".join(chain + [f"{site.name}()"])
        ctx.findings.append(
            Finding(
                path=ctx.display_path,
                line=site.line,
                col=site.col,
                rule_id=self.rule_id,
                message=(
                    f"blocking call {site.name}() is reachable from "
                    f"async def {entry.name}() ({path}); hop through "
                    f"loop.run_in_executor(None, ...) or asyncio.to_thread"
                ),
            )
        )
