"""REP010: every exception at the wire boundary maps to a wire ERROR.

An exception escaping an asyncio connection handler is swallowed by the
event loop's task machinery: the peer sees a dropped connection instead
of a framed ERROR, and the incident leaves no wire-level trace.  The
admission protocol (PR 6) therefore requires handler code to convert
every reachable exception into an ``error_payload`` response (or handle
it explicitly).

This rule finds connection-handler entry points -- methods passed as
the callback to ``asyncio.start_server(...)`` / ``loop.create_server``
inside scoped files -- and runs the project's escape analysis
(:mod:`repro.lint.analysis.exceptions`) over them: explicit raises plus
everything escaping confidently resolved callees, narrowed by
``try``/``except`` with full class-hierarchy subsumption.  Anything
still escaping is flagged at the handler definition, except the
deliberate pass-throughs of task teardown: ``asyncio.CancelledError``,
``GeneratorExit``, ``KeyboardInterrupt``, ``SystemExit`` (every
``BaseException`` that is not an ``Exception``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Set, Tuple

from repro.lint.analysis.exceptions import is_exception_subtype
from repro.lint.analysis.symbols import FunctionInfo
from repro.lint.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.analysis.project import Project

__all__ = ["ExceptionFlowRule"]

#: Callee-name suffixes whose first callable argument is a per-connection
#: handler owned by the event loop.
_SERVER_FACTORY_SUFFIXES = ("start_server", "create_server")


def _handler_entries(
    project: "Project", fn: FunctionInfo
) -> List[FunctionInfo]:
    """Return connection-handler methods registered inside ``fn``."""
    entries: List[FunctionInfo] = []
    owner = (
        project.table.classes.get(fn.owner) if fn.owner is not None else None
    )
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        callee = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if callee not in _SERVER_FACTORY_SUFFIXES or not node.args:
            continue
        callback = node.args[0]
        if (
            owner is not None
            and isinstance(callback, ast.Attribute)
            and isinstance(callback.value, ast.Name)
            and callback.value.id == "self"
        ):
            target = project.table.resolve_method(owner, callback.attr)
            if target is not None:
                entries.append(target)
        elif isinstance(callback, ast.Name):
            module = project.table.modules.get(fn.module)
            if module is not None:
                local = module.functions.get(callback.id)
                if local is not None:
                    entries.append(local)
    return entries


@register
class ExceptionFlowRule(Rule):
    """Flag exceptions escaping wire connection handlers."""

    rule_id = "REP010"
    title = "exception escapes a wire connection handler"
    rationale = (
        "An exception escaping an asyncio connection handler drops the "
        "connection with no framed ERROR and no wire-level trace; the "
        "admission protocol requires every failure to answer with "
        "error_payload (or be handled explicitly)."
    )
    default_scope = ("repro/net/*",)
    requires_analysis = True

    def check_project(self, project: "Project") -> None:
        seen: Set[str] = set()
        entries: List[Tuple[FunctionInfo, "object"]] = []
        for fn, _ctx in project.functions_in_scope(type(self)):
            for entry in _handler_entries(project, fn):
                if entry.qualname not in seen:
                    seen.add(entry.qualname)
                    entries.append((entry, _ctx))
        for entry, _ctx in sorted(entries, key=lambda e: e[0].qualname):
            self._check_entry(project, entry)

    def _check_entry(self, project: "Project", entry: FunctionInfo) -> None:
        ctx = project.contexts.get(entry.path)
        if ctx is None or not project.in_scope(type(self), ctx):
            return
        escaping = project.escapes.escaping(entry.qualname)
        offenders = sorted(
            exc
            for exc in escaping
            if is_exception_subtype(exc, "Exception", project.table)
        )
        for exc in offenders:
            ctx.report(
                self.rule_id,
                entry.node,
                f"{exc} can escape connection handler {entry.name}() -- "
                f"the peer sees a dropped connection instead of a framed "
                f"ERROR; catch it and answer with error_payload(...)",
            )
