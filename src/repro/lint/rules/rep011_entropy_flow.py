"""REP011: ambient time/entropy must not *flow* into deterministic paths.

REP001 bans the lexical use of wall-clock/ambient-RNG calls outside the
configured seams.  What it cannot see is laundering: a helper in an
unscoped module reads ``time.time()`` and a verdict- or id-producing
function consumes the result through an innocent-looking call chain.
The determinism contract (byte-identical verdict streams, PR 1-3) is
violated all the same.

This rule runs a taint fixpoint over the project call graph:

* *sources* are project functions whose bodies lexically call one of
  REP001's banned entry points (:data:`BANNED_CALLS` /
  :data:`BANNED_MODULES`);
* taint propagates from callee to caller along confidently resolved
  call edges, to a fixpoint;
* files on the rule's *allowlist* (the sanctioned entropy seams) absorb
  taint: functions defined there are neither sources nor carriers --
  their contract is that entropy is seeded/injected and stops there.

Every call site in a scoped file whose callee is tainted is flagged,
with the laundering chain spelled out in the message.  Direct banned
calls are REP001's findings and are deliberately not repeated here.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.lint.analysis.callgraph import CallSite
from repro.lint.context import FileContext, path_matches
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules.rep001_entropy import BANNED_CALLS, BANNED_MODULES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.analysis.project import Project

__all__ = ["EntropyFlowRule"]


def _is_banned(name: Optional[str]) -> bool:
    if name is None:
        return False
    return name in BANNED_CALLS or any(
        name.startswith(f"{module}.") for module in BANNED_MODULES
    )


@register
class EntropyFlowRule(Rule):
    """Interprocedural determinism taint over the project call graph."""

    rule_id = "REP011"
    title = "ambient time/entropy flows in through a call chain"
    rationale = (
        "Verdict streams are byte-identical across shard counts and "
        "executors only if no deterministic path consumes ambient "
        "time/entropy -- not even through helper call chains that "
        "REP001's lexical check cannot see."
    )
    default_scope = (
        "repro/core/*",
        "repro/validation/*",
        "repro/geometry/*",
        "repro/service/*",
        "repro/net/*",
        "repro/obs/*",
    )
    default_allow = (
        "repro/workloads/generator.py",
        "repro/online/strategies.py",
    )
    requires_analysis = True

    def check_project(self, project: "Project") -> None:
        table, graph = project.table, project.graph
        #: tainted function -> chain of names down to the banned call.
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: Deque[str] = deque()
        for qualname in sorted(graph.sites):
            fn = table.functions[qualname]
            ctx = project.contexts.get(fn.path)
            if ctx is None or self._absorbs(project, ctx):
                continue
            for site in graph.callees(qualname):
                if _is_banned(site.name):
                    chains[qualname] = (fn.name, f"{site.name}()")
                    queue.append(qualname)
                    break
        callers: Dict[str, List[str]] = {}
        for qualname in sorted(graph.sites):
            for site in graph.callees(qualname):
                if site.target is not None and site.target != qualname:
                    callers.setdefault(site.target, []).append(qualname)
        while queue:
            callee = queue.popleft()
            for caller in callers.get(callee, ()):
                if caller in chains:
                    continue
                fn = table.functions[caller]
                ctx = project.contexts.get(fn.path)
                if ctx is None or self._absorbs(project, ctx):
                    continue
                chains[caller] = (fn.name,) + chains[callee]
                queue.append(caller)
        self._report_edges(project, chains)

    def _report_edges(
        self, project: "Project", chains: Dict[str, Tuple[str, ...]]
    ) -> None:
        for qualname in sorted(project.graph.sites):
            fn = project.table.functions[qualname]
            ctx = project.contexts.get(fn.path)
            if ctx is None or not project.in_scope(type(self), ctx):
                continue
            for site in project.graph.callees(qualname):
                if site.target is None or site.target == qualname:
                    continue
                chain = chains.get(site.target)
                if chain is None:
                    continue
                self._report(ctx, site, chain)

    def _absorbs(self, project: "Project", ctx: FileContext) -> bool:
        """Seam files (the rule's allowlist) absorb taint entirely."""
        allowed = project.config.allow.get(self.rule_id, self.default_allow)
        return any(
            path_matches(pattern, ctx.module_path, ctx.path.as_posix())
            for pattern in allowed
        )

    def _report(
        self, ctx: FileContext, site: CallSite, chain: Tuple[str, ...]
    ) -> None:
        ctx.findings.append(
            Finding(
                path=ctx.display_path,
                line=site.line,
                col=site.col,
                rule_id=self.rule_id,
                message=(
                    f"call to {site.name}() pulls ambient time/entropy "
                    f"into this path ({' -> '.join(chain)}); inject a "
                    f"clock/seeded RNG at the boundary instead"
                ),
            )
        )
