"""REP006: lock-owning classes write shared attributes under the lock.

Service and observability objects are shared across shard worker
threads (PR 1-2).  The repo's convention: a class that owns a
``self._lock = threading.Lock()`` does *all* writes to its other
instance attributes inside ``with self._lock:`` -- except in
``__init__`` (no concurrent access before construction completes) and
in helper methods named ``*_locked`` (documented as called with the
lock already held, e.g. ``EventLog._rotate_locked``).  This rule makes
the convention mechanical for ``repro/service/*`` and ``repro/obs/*``.

Classes without a ``_lock`` are exempt: shard/slice state is
single-writer by Theorem 2 (disconnected groups share no equations,
hence no state, hence no locks) and the coordinator serializes the
rest.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

__all__ = ["LockDisciplineRule"]


def _lock_attr_assigned(init: ast.FunctionDef) -> Optional[str]:
    """Return the lock attribute name if ``__init__`` creates one."""
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.endswith("_lock")
                and isinstance(node.value, ast.Call)
            ):
                func = node.value.func
                callee = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else ""
                )
                if callee in {"Lock", "RLock"}:
                    return target.attr
    return None


def _is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def _under_lock(node: ast.AST, method: ast.AST, ctx: FileContext, lock: str) -> bool:
    """Is the node inside a ``with self.<lock>:`` block of this method?"""
    for ancestor, _child, _field in ctx.ancestry(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                if _is_self_attr(item.context_expr, lock):
                    return True
        if ancestor is method:
            return False
    return False


@register
class LockDisciplineRule(Rule):
    """Require ``with self._lock`` around shared attribute writes."""

    rule_id = "REP006"
    title = "shared attribute written outside the owning lock"
    rationale = (
        "Objects shared across shard workers serialize attribute writes "
        "through their lock; unlocked writes race under the thread "
        "executor."
    )
    node_types = (ast.ClassDef,)
    default_scope = ("repro/service/*", "repro/obs/*")

    def start(self, ctx: FileContext) -> None:
        self._classes: list = []

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        # Parent links for a node's descendants are recorded as the
        # engine walks *into* them, so the lock analysis (which needs
        # ancestry of the writes inside method bodies) runs in finish().
        self._classes.append(node)

    def finish(self, ctx: FileContext) -> None:
        for node in self._classes:
            self._check_class(node, ctx)

    def _check_class(self, node: ast.ClassDef, ctx: FileContext) -> None:
        init = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return
        lock = _lock_attr_assigned(init)
        if lock is None:
            return
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            for stmt in ast.walk(method):
                targets = []
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if (
                        _is_self_attr(target)
                        and target.attr != lock  # type: ignore[union-attr]
                        and not _under_lock(stmt, method, ctx, lock)
                    ):
                        ctx.report(
                            self.rule_id,
                            stmt,
                            f"write to self.{target.attr} outside "  # type: ignore[union-attr]
                            f"'with self.{lock}:' in {node.name}."
                            f"{method.name}(); this class shares state "
                            f"across threads (suffix the method _locked "
                            f"if the caller already holds the lock)",
                        )
