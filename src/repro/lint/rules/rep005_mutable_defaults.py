"""REP005: no mutable default arguments.

A ``def f(items=[])`` default is evaluated once at import and shared by
every call -- state leaks across requests, which in a validation
authority means verdicts that depend on call history rather than on the
log.  The rule flags list/dict/set displays, comprehensions, and calls
to the mutable constructors (``list``/``dict``/``set``/``bytearray``/
``collections.deque``/``collections.defaultdict``/``Counter``/
``OrderedDict``) used as parameter defaults.
"""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

__all__ = ["MutableDefaultRule"]

#: Constructor calls that produce a fresh mutable object.
MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.deque",
        "collections.defaultdict",
        "collections.Counter",
        "collections.OrderedDict",
    }
)


def _is_mutable_default(node: ast.AST, ctx: FileContext) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = ctx.qualified_name(node.func)
        return name in MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    """Flag mutable objects used as parameter defaults."""

    rule_id = "REP005"
    title = "mutable default argument"
    rationale = (
        "Defaults evaluate once at import; shared mutable defaults leak "
        "state across calls and make verdicts history-dependent."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args  # type: ignore[attr-defined]
        defaults = list(args.defaults) + [
            default for default in args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default, ctx):
                label = getattr(node, "name", "<lambda>")
                ctx.report(
                    self.rule_id,
                    default,
                    f"mutable default argument in {label}(); use None and "
                    f"create the object inside the function",
                )
