"""REP007: no ``2^N``-shaped enumeration outside the sanctioned engines.

The paper's whole contribution (Eq. 3 / Theorem 2) is replacing one
``2^N - 1`` equation sweep with ``Σ_k (2^{N_k} - 1)`` per-group sweeps.
A stray ``for mask in range(1 << n)`` in serving or matching code
silently reintroduces the exponential blow-up the grouping removed --
correctness tests never notice, throughput falls off a cliff at high N.
Exhaustive subset enumeration is therefore confined to the modules
whose *job* is the exponential sweep: the naive baselines
(``validation/naive.py``), the complexity accounting
(``validation/complexity.py``), the shared enumeration/DP primitives
they and the grouped engines delegate to (``bitset``, ``zeta``,
``equations``, ``capacity``, ``flow``), and the dense headroom kernel
(``core/kernel.py``), whose resident per-mask tables and
``check_invariants`` oracle are full-lattice by definition.

Flagged shapes: ``range(...)`` whose bound contains ``1 << x`` /
``2 ** x`` with a non-constant ``x``, and the itertools powerset idiom
``chain.from_iterable(combinations(s, r) for r in ...)``.
"""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

__all__ = ["PowersetRule"]


def _is_exponential_expr(node: ast.AST) -> bool:
    """Match ``1 << x`` / ``2 ** x`` with non-constant ``x``."""
    if not isinstance(node, ast.BinOp):
        return False
    if isinstance(node.op, ast.LShift):
        base_ok = isinstance(node.left, ast.Constant)
    elif isinstance(node.op, ast.Pow):
        base_ok = isinstance(node.left, ast.Constant) and node.left.value == 2
    else:
        return False
    return base_ok and not isinstance(node.right, ast.Constant)


def _contains_exponential(node: ast.AST) -> bool:
    return any(_is_exponential_expr(sub) for sub in ast.walk(node))


@register
class PowersetRule(Rule):
    """Confine exhaustive subset enumeration to the sanctioned modules."""

    rule_id = "REP007"
    title = "2^N subset enumeration outside the sanctioned engines"
    rationale = (
        "Eq. 3's gain exists because only the naive baselines sweep all "
        "2^N - 1 equations; exponential loops anywhere else silently "
        "defeat the grouping."
    )
    node_types = (ast.Call,)
    default_allow = (
        "repro/validation/naive.py",
        "repro/validation/complexity.py",
        "repro/validation/bitset.py",
        "repro/validation/zeta.py",
        "repro/validation/equations.py",
        "repro/validation/capacity.py",
        "repro/validation/flow.py",
        "repro/core/kernel.py",
    )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = ctx.qualified_name(node.func)
        if name == "range":
            if any(_contains_exponential(arg) for arg in node.args):
                ctx.report(
                    self.rule_id,
                    node,
                    "range() over a 2^N-shaped bound enumerates every "
                    "subset; only the naive baselines and shared "
                    "enumeration primitives may do this (Eq. 3)",
                )
        elif name in {"itertools.chain.from_iterable", "chain.from_iterable"}:
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp) and any(
                    isinstance(sub, ast.Call)
                    and ctx.qualified_name(sub.func)
                    in {"itertools.combinations", "combinations"}
                    for sub in ast.walk(arg)
                ):
                    ctx.report(
                        self.rule_id,
                        node,
                        "itertools powerset idiom enumerates every subset; "
                        "only the naive baselines may do this (Eq. 3)",
                    )
