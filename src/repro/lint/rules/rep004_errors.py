"""REP004: the library raises only :mod:`repro.errors` exceptions.

The package contract (see :mod:`repro.errors`) is that every failure a
caller can observe derives from ``ReproError``, so one ``except
ReproError`` catches everything the library does on purpose.  A bare
``raise ValueError`` deep in a helper silently escapes that net the day
a public code path reaches it.  This rule bans raising builtin
exception types anywhere under ``repro/`` (re-raises and exception
*handling* are untouched; ``NotImplementedError`` stays legal for
abstract methods).
"""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

__all__ = ["ErrorDisciplineRule"]

#: Builtin exception types that must not be raised by library code.
BANNED_EXCEPTIONS = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "AttributeError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "AssertionError",
        "StopIteration",
    }
)


@register
class ErrorDisciplineRule(Rule):
    """Ban ``raise <builtin exception>`` in library code."""

    rule_id = "REP004"
    title = "builtin exception raised instead of a repro.errors type"
    rationale = (
        "Public API functions raise only ReproError subclasses so callers "
        "can catch the whole library with one except clause."
    )
    node_types = (ast.Raise,)
    default_scope = ("repro/*",)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Raise)
        exc = node.exc
        if exc is None:  # bare ``raise`` re-raise is fine
            return
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Name) and target.id in BANNED_EXCEPTIONS:
            ctx.report(
                self.rule_id,
                node,
                f"raise of builtin {target.id}; raise a repro.errors type "
                f"so the exception stays inside the ReproError hierarchy",
            )
