"""REP001: wall-clock and ambient randomness stay behind the seams.

Grouped validation (Theorem 2 / Eq. 3) is only auditable because every
run is a deterministic function of its inputs: verdict streams must be
byte-identical across shard counts, executors, and observability
settings (PR 1-3).  Ambient entropy -- wall-clock reads, the global
``random`` module, ``os.urandom`` -- breaks that silently.  Time must
flow through injectable clocks (``time.perf_counter``/``monotonic`` are
fine: they measure, they don't decide) and randomness through seeded
``random.Random`` instances owned by the configured seams
(``repro/workloads/generator.py``, ``repro/online/strategies.py``).
"""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

__all__ = ["EntropyRule"]

#: Fully-qualified callables banned outside the allowlisted seams.
BANNED_CALLS = frozenset(
    {
        # Wall-clock reads (monotonic/perf_counter stay legal everywhere).
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        # Ambient entropy (seeded random.Random instances stay legal).
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
    | {
        f"random.{name}"
        for name in (
            "random", "randint", "randrange", "randbytes", "choice",
            "choices", "shuffle", "sample", "uniform", "seed",
            "getrandbits", "gauss", "normalvariate", "lognormvariate",
            "expovariate", "betavariate", "gammavariate", "triangular",
            "vonmisesvariate", "paretovariate", "weibullvariate",
        )
    }
    | {
        f"numpy.random.{name}"
        for name in (
            "seed", "rand", "randn", "randint", "random", "random_sample",
            "shuffle", "permutation", "choice", "uniform", "normal",
        )
    }
)

#: Any call into these modules is banned (CSPRNG entropy).
BANNED_MODULES = ("secrets",)


@register
class EntropyRule(Rule):
    """Ban wall-clock/ambient-RNG calls outside the configured seams."""

    rule_id = "REP001"
    title = "wall-clock/ambient randomness outside the injectable seams"
    rationale = (
        "Determinism of verdict streams (PR 1-3): time flows through "
        "injectable clocks, randomness through seeded random.Random "
        "instances owned by the workload/strategy seams."
    )
    node_types = (ast.Call,)
    default_allow = (
        "repro/workloads/generator.py",
        "repro/online/strategies.py",
    )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        name = ctx.qualified_name(node.func)
        if name is None:
            return
        banned = name in BANNED_CALLS or any(
            name.startswith(f"{module}.") for module in BANNED_MODULES
        )
        if banned:
            ctx.report(
                self.rule_id,
                node,
                f"call to {name}() injects ambient time/entropy; route it "
                f"through an injectable clock or a seeded random.Random in "
                f"a configured seam",
            )
