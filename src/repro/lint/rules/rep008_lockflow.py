"""REP008: interprocedural lock-state discipline.

REP006 checks the *lexical* convention -- writes to shared attributes
happen under ``with self._lock``.  This rule checks the part REP006
cannot see: the *call-edge* contract of the convention.

For every class that creates a ``self.*_lock`` in ``__init__``, an
abstract lock-state walker interprets each method body with a
held/not-held fact, propagating it through ``self.``/``cls.`` call
chains (resolved over the project class hierarchy, so helpers inherited
from a base class in another module participate):

* a ``*_locked`` helper -- documented as "caller already holds the
  lock" -- reached on any chain *without* the lock held is flagged at
  the call site that breaks the contract;
* a ``with self._lock`` acquire reached on any chain with the lock
  *already* held is flagged as a self-deadlock when the lock is a
  non-reentrant ``threading.Lock`` (a double ``with`` on ``RLock`` is
  legal and stays silent).

Entry assumptions mirror the documented convention: public methods are
entered unheld, ``*_locked`` methods are entered held.  Analysis is
memoized per ``(method, entry state)`` and bounded in depth, so cyclic
helper chains terminate.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.lint.analysis.symbols import ClassInfo, FunctionInfo
from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.analysis.project import Project

__all__ = ["LockFlowRule"]

#: Call-chain depth bound (matches the other analysis rules).
MAX_DEPTH = 8


def _lock_attr(init: ast.AST, ctx: FileContext) -> Optional[Tuple[str, bool]]:
    """Return ``(lock attribute, is_reentrant)`` created in ``__init__``."""
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        callee = ctx.qualified_name(node.value.func)
        if callee not in ("threading.Lock", "threading.RLock"):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.endswith("_lock")
            ):
                return target.attr, callee == "threading.RLock"
    return None


def _self_method_call(node: ast.Call) -> Optional[str]:
    """Return the method name of a ``self.m(...)``/``cls.m(...)`` call."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("self", "cls")
    ):
        return func.attr
    return None


@register
class LockFlowRule(Rule):
    """Propagate lock held/not-held facts across self-call chains."""

    rule_id = "REP008"
    title = "lock-state contract broken across a call chain"
    rationale = (
        "The *_locked naming convention (REP006) is a call-edge "
        "contract: helpers named *_locked must only be reached with the "
        "lock held, and lock-acquiring methods must never be re-entered "
        "while it is held (self-deadlock on threading.Lock)."
    )
    default_scope = ("repro/service/*", "repro/obs/*")
    requires_analysis = True

    def check_project(self, project: "Project") -> None:
        for qualname in sorted(project.table.classes):
            cls_info = project.table.classes[qualname]
            module = project.table.modules[cls_info.module]
            ctx = project.contexts.get(module.path)
            if ctx is None or not project.in_scope(type(self), ctx):
                continue
            lock = self._find_lock(project, cls_info)
            if lock is None:
                continue
            _ClassLockWalk(self.rule_id, project, cls_info, lock).run()

    @staticmethod
    def _find_lock(
        project: "Project", cls_info: ClassInfo
    ) -> Optional[Tuple[str, bool]]:
        """Locate the lock attribute this class owns, walking inherited
        ``__init__`` definitions (the lock-owning base may live in
        another module -- the attribute spelling must be resolved with
        the *defining* file's import aliases)."""
        for ancestor in project.table.class_chain(cls_info):
            init = ancestor.methods.get("__init__")
            if init is None:
                continue
            init_ctx = project.contexts.get(init.path)
            if init_ctx is None:
                continue
            lock = _lock_attr(init.node, init_ctx)
            if lock is not None:
                return lock
        return None


class _ClassLockWalk:
    """Abstract lock-state interpretation of one lock-owning class."""

    def __init__(
        self,
        rule_id: str,
        project: "Project",
        cls_info: ClassInfo,
        lock: Tuple[str, bool],
    ):
        self._rule_id = rule_id
        self._project = project
        self._cls = cls_info
        self._lock_attr, self._reentrant = lock
        #: ``(method qualname, entry_held)`` states already interpreted.
        self._seen: Set[Tuple[str, bool]] = set()

    def run(self) -> None:
        for name in sorted(self._cls.methods):
            if name == "__init__":
                continue
            method = self._cls.methods[name]
            self._analyze(method, held=name.endswith("_locked"), depth=0)

    # ------------------------------------------------------------------
    def _analyze(self, fn: FunctionInfo, held: bool, depth: int) -> None:
        key = (fn.qualname, held)
        if key in self._seen or depth > MAX_DEPTH:
            return
        self._seen.add(key)
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in fn.node.body:
            self._visit(fn, stmt, held, depth)

    def _visit(
        self, fn: FunctionInfo, node: ast.AST, held: bool, depth: int
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquires = any(
                self._is_lock(item.context_expr) for item in node.items
            )
            for item in node.items:
                self._visit(fn, item.context_expr, held, depth)
            if acquires:
                if held and not self._reentrant:
                    self._report(
                        fn,
                        node,
                        f"'with self.{self._lock_attr}:' in "
                        f"{self._cls.name}.{fn.name}() is reachable with "
                        f"the lock already held -- self-deadlock on a "
                        f"non-reentrant threading.Lock",
                    )
                held = True
            for stmt in node.body:
                self._visit(fn, stmt, held, depth)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested definitions run at their own call sites
        if isinstance(node, ast.Call):
            self._call(fn, node, held, depth)
        for child in ast.iter_child_nodes(node):
            self._visit(fn, child, held, depth)

    def _call(
        self, fn: FunctionInfo, node: ast.Call, held: bool, depth: int
    ) -> None:
        method_name = _self_method_call(node)
        if method_name is None:
            return
        target = self._project.table.resolve_method(self._cls, method_name)
        if target is None:
            return
        if target.name.endswith("_locked") and not held:
            self._report(
                fn,
                node,
                f"{self._cls.name}.{target.name}() requires the caller to "
                f"hold self.{self._lock_attr}, but this chain (entered via "
                f"{fn.name}()) reaches it without acquiring the lock",
            )
        self._analyze(target, held, depth + 1)

    # ------------------------------------------------------------------
    def _is_lock(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr == self._lock_attr
        )

    def _report(self, fn: FunctionInfo, node: ast.AST, message: str) -> None:
        ctx = self._project.contexts.get(fn.path)
        if ctx is not None:
            ctx.report(self._rule_id, node, message)
