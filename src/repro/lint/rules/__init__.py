"""The built-in rule set: importing this package registers every rule.

Each module encodes one repository invariant (its docstring cites the
paper section or PR that introduced it); see ``repro lint --list-rules``
or the "Static analysis & typing" section of DESIGN.md for the catalog.
"""

from repro.lint.rules.rep001_entropy import EntropyRule
from repro.lint.rules.rep002_telemetry import GuardedTelemetryRule
from repro.lint.rules.rep003_float_eq import ExactGeometryRule
from repro.lint.rules.rep004_errors import ErrorDisciplineRule
from repro.lint.rules.rep005_mutable_defaults import MutableDefaultRule
from repro.lint.rules.rep006_locks import LockDisciplineRule
from repro.lint.rules.rep007_powerset import PowersetRule
from repro.lint.rules.rep008_lockflow import LockFlowRule
from repro.lint.rules.rep009_async_safety import AsyncSafetyRule
from repro.lint.rules.rep010_exception_flow import ExceptionFlowRule
from repro.lint.rules.rep011_entropy_flow import EntropyFlowRule

__all__ = [
    "EntropyRule",
    "GuardedTelemetryRule",
    "ExactGeometryRule",
    "ErrorDisciplineRule",
    "MutableDefaultRule",
    "LockDisciplineRule",
    "PowersetRule",
    "LockFlowRule",
    "AsyncSafetyRule",
    "ExceptionFlowRule",
    "EntropyFlowRule",
]
