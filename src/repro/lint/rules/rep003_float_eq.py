"""REP003: geometry compares exactly -- no float equality, no tolerances.

The paper's geometric model (Section 3.1) builds licenses from
*discrete* instance dimensions: interval endpoints, region atoms, date
ordinals, counts.  Overlap detection (Section 3.2) and grouping
(Theorem 1) are therefore exact set computations; a tolerance-based
comparison (``math.isclose``) or an equality test against a float
literal would make "overlaps" answers depend on epsilon choices and
could split or merge groups nondeterministically -- corrupting the very
partition Eq. 3's gain is computed from.  Inside ``repro/geometry/*``
this rule bans ``==``/``!=`` against float literals and every
approximate-comparison helper.
"""

from __future__ import annotations

import ast

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

__all__ = ["ExactGeometryRule"]

#: Approximate-comparison callables banned in geometry modules.
APPROX_CALLS = frozenset(
    {
        "math.isclose",
        "numpy.isclose",
        "numpy.allclose",
        "pytest.approx",
    }
)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Unary minus on a float literal: ``x == -1.5``.
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


@register
class ExactGeometryRule(Rule):
    """Ban float equality and tolerance comparisons in geometry."""

    rule_id = "REP003"
    title = "inexact comparison in geometry (endpoints are exact)"
    rationale = (
        "Overlap/grouping (Sections 3.1-3.2, Theorem 1) are exact set "
        "computations over discrete endpoints; epsilon comparisons would "
        "make the group partition nondeterministic."
    )
    node_types = (ast.Compare, ast.Call)
    default_scope = ("repro/geometry/*",)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
            if has_eq and any(_is_float_literal(arm) for arm in operands):
                ctx.report(
                    self.rule_id,
                    node,
                    "equality comparison against a float literal; interval "
                    "endpoints are exact -- compare discrete values",
                )
        elif isinstance(node, ast.Call):
            name = ctx.qualified_name(node.func)
            if name in APPROX_CALLS:
                ctx.report(
                    self.rule_id,
                    node,
                    f"{name}() introduces an epsilon tolerance; geometry "
                    f"comparisons must be exact (Theorem 1's grouping "
                    f"depends on it)",
                )
