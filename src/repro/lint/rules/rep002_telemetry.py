"""REP002: hot paths guard every telemetry call behind a ``None`` check.

The observability layer (PR 2) promises the disabled path is free:
with ``instrumentation=None`` / ``tracer=None`` the validation hot loops
(``core.incremental``, ``core.grouped_zeta``, ``validation.
tree_validator``, ``service.shard``, ``service.service``) execute no
telemetry code and allocate no spans or attribute dicts -- the <5%
overhead bound ``bench_obs_overhead.py`` enforces.  This rule makes the
convention mechanical: any call on a telemetry receiver (a name ending
in ``tracer``/``instrumentation``/``instr``/``events``/``monitor``/
``telemetry``) must sit lexically inside a branch that established the
receiver family is live -- ``if x is not None:``, the ``else`` of
``if x is None:``, a ``... if x is not None else ...`` conditional, or
after an early ``if x is None: return``.

The falsy ``NULL_SPAN`` no-op object is the *other* sanctioned pattern:
calls on ``span``-named values are exempt because unsampled spans
no-op by construction (see :mod:`repro.obs.trace`).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.context import FileContext
from repro.lint.registry import Rule, register

__all__ = ["GuardedTelemetryRule"]

#: Terminal receiver names treated as telemetry objects.
TELEMETRY_NAMES = frozenset(
    {"tracer", "instrumentation", "instr", "events", "monitor", "telemetry"}
)


def _terminal_name(expr: ast.AST) -> Optional[str]:
    """Return the last name segment of a name/attribute chain."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _mentions_telemetry(expr: ast.AST) -> bool:
    name = _terminal_name(expr)
    return name is not None and name.lower() in TELEMETRY_NAMES


def _is_positive_guard(test: ast.AST) -> bool:
    """Does this test being true establish a telemetry receiver is live?"""
    if _mentions_telemetry(test):  # plain truthiness: ``if tracer:``
        return True
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, (op,), (right,) = test.left, test.ops, test.comparators
        if isinstance(op, (ast.IsNot, ast.NotEq)):
            if isinstance(right, ast.Constant) and right.value is None:
                return _mentions_telemetry(left)
            if isinstance(left, ast.Constant) and left.value is None:
                return _mentions_telemetry(right)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return any(_is_positive_guard(value) for value in test.values)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _is_negative_guard(test.operand)
    return False


def _is_negative_guard(test: ast.AST) -> bool:
    """Does this test being *false* establish the receiver is live?"""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, (op,), (right,) = test.left, test.ops, test.comparators
        if isinstance(op, (ast.Is, ast.Eq)):
            if isinstance(right, ast.Constant) and right.value is None:
                return _mentions_telemetry(left)
            if isinstance(left, ast.Constant) and left.value is None:
                return _mentions_telemetry(right)
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        return any(_is_negative_guard(value) for value in test.values)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _is_positive_guard(test.operand)
    return False


def _bails_out(body: list) -> bool:
    """Does a block unconditionally leave the enclosing flow?"""
    return bool(body) and all(
        isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))
        for stmt in body
    )


@register
class GuardedTelemetryRule(Rule):
    """Require a live-receiver guard around hot-path telemetry calls."""

    rule_id = "REP002"
    title = "unguarded instrumentation/tracer call on a hot path"
    rationale = (
        "Disabled telemetry must cost nothing on validation hot paths "
        "(bench_obs_overhead.py's <5% bound): every call on a telemetry "
        "receiver needs a lexical None/no-op guard."
    )
    node_types = (ast.Call,)
    default_scope = (
        "repro/core/incremental.py",
        "repro/core/grouped_zeta.py",
        "repro/validation/tree_validator.py",
        "repro/service/shard.py",
        "repro/service/service.py",
        "repro/service/resident.py",
        "repro/net/server.py",
        "repro/net/client.py",
        "repro/obs/runs/*",
    )

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if not _mentions_telemetry(receiver):
            return
        if self._guarded(node, ctx):
            return
        ctx.report(
            self.rule_id,
            node,
            f"call on telemetry receiver "
            f"'{_terminal_name(receiver)}' has no enclosing "
            f"None-check; disabled telemetry must cost nothing on this "
            f"hot path (guard with 'if {_terminal_name(receiver)} is "
            f"not None:' or bail out early)",
        )

    # ------------------------------------------------------------------
    # Guard search
    # ------------------------------------------------------------------
    def _guarded(self, node: ast.Call, ctx: FileContext) -> bool:
        for ancestor, child, field in ctx.ancestry(node):
            if isinstance(ancestor, (ast.If, ast.IfExp)):
                if field == "body" and _is_positive_guard(ancestor.test):
                    return True
                if field == "orelse" and _is_negative_guard(ancestor.test):
                    return True
            # Early bail-out: a preceding sibling in any enclosing block
            # of the form ``if x is None: return``.
            for field_name, value in ast.iter_fields(ancestor):
                if not isinstance(value, list) or child not in value:
                    continue
                for sibling in value[: value.index(child)]:
                    if (
                        isinstance(sibling, ast.If)
                        and _is_negative_guard(sibling.test)
                        and _bails_out(sibling.body)
                    ):
                        return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Guards established outside the defining function do not
                # travel into it; stop at the function boundary.
                return False
        return False
