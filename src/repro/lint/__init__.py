"""repro.lint -- the repository's own static-analysis layer.

An AST-based invariant checker for the validation stack: a rule
registry (:mod:`repro.lint.registry`), a per-file visitor dispatcher
(:mod:`repro.lint.engine`), ``[tool.reprolint]`` configuration with
per-path allowlists (:mod:`repro.lint.config`), inline
``# reprolint: disable=RULE`` suppressions, and stable text/JSON
reporters.  The built-in rules (REP001-REP007,
:mod:`repro.lint.rules`) encode invariants the codebase previously
guaranteed only by convention: deterministic time/randomness seams,
zero-cost disabled telemetry on hot paths, exact geometry, the
``ReproError`` exception contract, no mutable defaults, lock
discipline, and Eq. 3's confinement of ``2^N`` subset enumeration.

Run it as ``repro lint [paths...]`` or ``python scripts/run_lint.py``;
exit codes: 0 clean, 1 findings, 2 usage/parse errors.  Formal-methods
treatments of DRM licensing (Halpern & Weissman's XrML semantics; the
algebraic OMA DRM specifications) motivate machine-checking exactly
this kind of license-validation logic.
"""

from repro.lint.config import LintConfig, find_pyproject
from repro.lint.engine import LintResult, lint_file, lint_paths
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rule, register, rule_ids
from repro.lint.report import render_json, render_text

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "find_pyproject",
    "get_rule",
    "lint_file",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
    "rule_ids",
]
