"""Lint configuration: the ``[tool.reprolint]`` table of pyproject.toml.

Three knobs, all optional (rules ship usable defaults):

``select``
    List of rule ids to run; omitted/empty means every registered rule.
``scopes``
    ``{rule_id: [fnmatch pattern, ...]}`` -- the rule applies *only* to
    files matching a pattern.  Overrides the rule's ``default_scope``.
``allow``
    ``{rule_id: [fnmatch pattern, ...]}`` -- files exempt from the rule
    (the per-path allowlist for sanctioned seams, e.g. the seeded-RNG
    modules for REP001).  Overrides the rule's ``default_allow``.
``exclude``
    File patterns skipped entirely (virtualenvs, build output).

Patterns match module paths (``repro/core/incremental.py``) and POSIX
path suffixes -- see :func:`repro.lint.context.path_matches`.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple, Type

from repro.errors import LintError
from repro.lint.context import path_matches
from repro.lint.registry import Rule

__all__ = ["LintConfig", "find_pyproject"]


def _pattern_tuple(value: object, where: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintError(f"{where} must be a list of strings, got {value!r}")
    return tuple(value)


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (see module docstring)."""

    select: Tuple[str, ...] = ()
    scopes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    allow: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    exclude: Tuple[str, ...] = ()

    @classmethod
    def from_mapping(cls, table: Mapping[str, object]) -> "LintConfig":
        """Build from a ``[tool.reprolint]``-shaped mapping."""
        known = {"select", "scopes", "allow", "exclude"}
        unknown = sorted(set(table) - known)
        if unknown:
            raise LintError(
                f"unknown [tool.reprolint] keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        select = _pattern_tuple(table.get("select", ()), "[tool.reprolint] select")
        exclude = _pattern_tuple(table.get("exclude", ()), "[tool.reprolint] exclude")
        scopes = {}
        allow = {}
        for key, sink in (("scopes", scopes), ("allow", allow)):
            raw = table.get(key, {})
            if not isinstance(raw, Mapping):
                raise LintError(f"[tool.reprolint.{key}] must be a table")
            for rule_id, patterns in raw.items():
                sink[str(rule_id)] = _pattern_tuple(
                    patterns, f"[tool.reprolint.{key}] {rule_id}"
                )
        return cls(select=select, scopes=scopes, allow=allow, exclude=exclude)

    @classmethod
    def from_pyproject(cls, path: Path) -> "LintConfig":
        """Load from one pyproject.toml (missing table -> defaults)."""
        try:
            with open(path, "rb") as stream:
                payload = tomllib.load(stream)
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        except tomllib.TOMLDecodeError as exc:
            raise LintError(f"malformed TOML in {path}: {exc}") from exc
        tool = payload.get("tool", {})
        table = tool.get("reprolint", {}) if isinstance(tool, Mapping) else {}
        if not isinstance(table, Mapping):
            raise LintError(f"[tool.reprolint] in {path} must be a table")
        return cls.from_mapping(table)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def selected(self, rule: Type[Rule]) -> bool:
        """Return whether the rule is enabled at all."""
        return not self.select or rule.rule_id in self.select

    def file_excluded(self, module_path: str, posix_path: str) -> bool:
        """Return whether a file is skipped entirely."""
        return any(
            path_matches(pattern, module_path, posix_path)
            for pattern in self.exclude
        )

    def rule_applies(
        self, rule: Type[Rule], module_path: str, posix_path: str
    ) -> bool:
        """Return whether one rule runs on one file.

        The config's ``scopes``/``allow`` entries override the rule's
        built-in defaults when present (even with an empty list, which
        re-opens a scoped rule to every file).
        """
        if not self.selected(rule):
            return False
        scope: Sequence[str] = self.scopes.get(rule.rule_id, rule.default_scope)
        if scope and not any(
            path_matches(pattern, module_path, posix_path) for pattern in scope
        ):
            return False
        allowed: Sequence[str] = self.allow.get(rule.rule_id, rule.default_allow)
        return not any(
            path_matches(pattern, module_path, posix_path) for pattern in allowed
        )


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the first directory with a pyproject.toml."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
