"""Lint reporters: stable text, JSON, and SARIF renderings of a result.

All formats are deterministic functions of the finding *set*: findings
are sorted by ``(path, line, col, rule, message)``, JSON keys are
sorted, and no timestamps or absolute paths leak in -- two runs over the
same tree produce byte-identical reports (tested).

The SARIF output targets the SARIF 2.1.0 schema consumed by GitHub code
scanning (CI uploads it from the lint job), with the full rule catalog
embedded as ``tool.driver.rules`` so findings link to their rationale.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import LintResult
from repro.lint.registry import all_rules

__all__ = ["render_json", "render_sarif", "render_text"]

#: Version stamp of the JSON report schema.
JSON_SCHEMA_VERSION = 1

#: SARIF spec targeted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """Render ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = [finding.render() for finding in sorted(result.findings)]
    for error in result.errors:
        lines.append(f"error: {error}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files_checked} file(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    if result.errors:
        summary += f", {len(result.errors)} error(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Render the machine-readable report (sorted, newline-terminated)."""
    counts: Dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "errors": sorted(result.errors),
        "counts": counts,
        "findings": [finding.to_dict() for finding in sorted(result.findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(result: LintResult) -> str:
    """Render a SARIF 2.1.0 log (sorted, newline-terminated).

    Findings become ``results`` with 1-based line/column regions (SARIF
    columns are 1-based; internal columns are 0-based AST offsets).
    Hard errors (unreadable/unparseable files) become tool-level
    ``notifications`` so an exit-code-2 run still uploads something
    inspectable.
    """
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.__name__,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "ruleIndex": next(
                index
                for index, rule in enumerate(rules)
                if rule["id"] == finding.rule_id
            ),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in sorted(result.findings)
        if any(rule["id"] == finding.rule_id for rule in rules)
    ]
    notifications = [
        {"level": "error", "message": {"text": error}}
        for error in sorted(result.errors)
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not result.errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
