"""Lint reporters: stable text and JSON renderings of a result.

Both formats are deterministic functions of the finding *set*: findings
are sorted by ``(path, line, col, rule, message)``, JSON keys are
sorted, and no timestamps or absolute paths leak in -- two runs over the
same tree produce byte-identical reports (tested).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import LintResult

__all__ = ["render_json", "render_text"]

#: Version stamp of the JSON report schema.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Render ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = [finding.render() for finding in sorted(result.findings)]
    for error in result.errors:
        lines.append(f"error: {error}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files_checked} file(s)"
    )
    if result.suppressed:
        summary += f", {result.suppressed} suppressed"
    if result.errors:
        summary += f", {len(result.errors)} error(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Render the machine-readable report (sorted, newline-terminated)."""
    counts: Dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "errors": sorted(result.errors),
        "counts": counts,
        "findings": [finding.to_dict() for finding in sorted(result.findings)],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
