"""Finding records produced by lint rules.

A :class:`Finding` is one rule hit at one source location.  Findings
order lexicographically by ``(path, line, col, rule_id, message)`` so
every reporter emits them in a stable, input-order-independent sequence
-- the property the reporter-stability tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Display path of the offending file (as given on the command line).
    path: str
    #: 1-based source line.
    line: int
    #: 0-based source column.
    col: int
    #: The rule that fired (``REP001`` ...).
    rule_id: str
    #: Human-readable explanation of the violation.
    message: str

    def render(self) -> str:
        """Return the one-line text form ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """Return the JSON payload of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
